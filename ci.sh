#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order fastest-feedback
# first. Run from the repo root. The chaos soak at the end runs the full
# ODA runtime under fault injection with a small tick budget and fails on
# any panic, NaN-carrying alert, or nondeterministic replay.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
# Also the deprecation gate: the pre-0.2 QueryEngine methods and
# TelemetryBus::subscribe are #[deprecated], so any in-workspace use fails
# the build here.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos soak (short budget)"
cargo run --release -p oda-bench --bin chaos -- 4000 21

echo "==> ingest soak (observability baseline)"
cargo run --release -p oda-bench --bin ingest -- 200 48 > BENCH_ingest.json
# Schema check: the baseline must be one JSON object with the keys the
# regression tooling reads, and a positive throughput.
for key in bench readings_total throughput_rps throughput_rps_noop \
           metrics_overhead_pct query_p50_ns query_p99_ns instruments \
           longwin_queries_run longwin_tiered_p50_ns longwin_tiered_p99_ns \
           longwin_raw_p50_ns longwin_raw_p99_ns longwin_tier_hits \
           longwin_readings_avoided longwin_tiered_readings_scanned \
           longwin_raw_readings_scanned longwin_scan_reduction_x; do
  grep -q "\"$key\"" BENCH_ingest.json \
    || { echo "BENCH_ingest.json missing key: $key" >&2; exit 1; }
done
python3 - <<'EOF'
import json
report = json.load(open("BENCH_ingest.json"))
assert report["bench"] == "ingest", report["bench"]
assert report["throughput_rps"] > 0, "ingest throughput must be positive"
assert report["readings_total"] > 0
# Rollup-tier planner gate: the long-window fleet aggregate must be served
# from summary tiers, rescanning >=5x fewer raw readings, and the tiered
# query tail must not be slower than the raw rescan it replaces.
assert report["longwin_tier_hits"] > 0, "planner never tier-hit"
assert report["longwin_scan_reduction_x"] >= 5.0, report["longwin_scan_reduction_x"]
assert report["longwin_tiered_p99_ns"] <= report["longwin_raw_p99_ns"], (
    report["longwin_tiered_p99_ns"], report["longwin_raw_p99_ns"])
print(f"ingest baseline OK: {report['throughput_rps']:.0f} readings/s, "
      f"metrics overhead {report['metrics_overhead_pct']:.1f}%, "
      f"long-window scan reduction {report['longwin_scan_reduction_x']:.0f}x "
      f"(tiered p99 {report['longwin_tiered_p99_ns']}ns vs "
      f"raw p99 {report['longwin_raw_p99_ns']}ns)")
EOF

echo "CI OK"
