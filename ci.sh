#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order fastest-feedback
# first. Run from the repo root. Mirrors .github/workflows/ci.yml — keep
# the two in sync. The soaks at the end run the full ODA runtime under
# fault injection (replay must be bit-identical at workers=1 and
# workers=4) and regenerate the BENCH_*.json reports, which are gated
# against the committed baselines by ci/check_bench.py.
#
# `./ci.sh --full` additionally runs the nightly sanitizer lanes (Miri on
# the oda-telemetry lib tests, ThreadSanitizer on the concurrency-heavy
# telemetry/serve suites). Each lane is gated on its toolchain component
# being present and skips loudly when it isn't, so `--full` degrades
# gracefully on machines without the nightly extras; the hosted
# `sanitizers` job in ci.yml installs the components and never skips.
set -euo pipefail
cd "$(dirname "$0")"

FULL=0
for arg in "$@"; do
  case "$arg" in
    --full) FULL=1 ;;
    *) echo "unknown argument: $arg (supported: --full)" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> odalint (static determinism / panic-safety / unsafe-audit gate)"
# Deny-by-default source lint; exits nonzero on any unallowed violation
# and writes LINT_report.json, whose schema check_lint.py then verifies.
cargo run -q -p lint --bin odalint
python3 ci/check_lint.py LINT_report.json

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
# The pre-0.2 QueryEngine methods and TelemetryBus::subscribe are gone;
# odalint's deprecated-api rule keeps them from coming back.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -- -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> chaos soak (short budget; replay at workers=1 and workers=4)"
cargo run --release -p oda-bench --bin chaos -- 4000 21 4

echo "==> ingest soak (observability baseline)"
cargo run --release -p oda-bench --bin ingest -- 200 48 > BENCH_ingest.json
python3 ci/check_bench.py BENCH_ingest.json ci/baselines/BENCH_ingest.json

echo "==> scale bench (worker sweep 1/2/4/8)"
cargo run --release -p oda-bench --bin scale > BENCH_scale.json
python3 ci/check_bench.py BENCH_scale.json ci/baselines/BENCH_scale.json

echo "==> storage bench (backend sweep: ingest / long-window query / recovery)"
cargo run --release -p oda-bench --bin storage > BENCH_storage.json
python3 ci/check_bench.py BENCH_storage.json ci/baselines/BENCH_storage.json

echo "==> serving bench (multi-tenant query traffic + subscription fan-out)"
cargo run --release -p oda-bench --bin serving > BENCH_serving.json
python3 ci/check_bench.py BENCH_serving.json ci/baselines/BENCH_serving.json

if [ "$FULL" = 1 ]; then
  echo "==> miri (undefined-behaviour interpreter; oda-telemetry lib tests)"
  # Thread-stress and real-fs tests carry #[cfg_attr(miri, ignore)]; what
  # remains is the curated fast subset (ring buffer, rollup, placement,
  # codec, WAL-over-SimFs) where Miri can actually find UB.
  if cargo +nightly miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-strict-provenance" cargo +nightly miri test -q -p oda-telemetry --lib
  else
    echo "SKIP: miri lane — 'cargo +nightly miri' unavailable" >&2
    echo "      (rustup +nightly component add miri; the hosted sanitizers job always runs it)" >&2
  fi

  echo "==> thread sanitizer (cluster + serving concurrency tests)"
  # TSan needs the standard library rebuilt with -Zsanitizer=thread, which
  # requires the nightly rust-src component (-Zbuild-std).
  if rustup component list --toolchain nightly 2>/dev/null | grep -q '^rust-src.*(installed)'; then
    TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
    # oda-telemetry carries the thread-stress tests (concurrent store
    # writers, concurrent metric recording); oda-serve's server tests
    # stand up a real coordinator with live shard threads.
    RUSTFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -q -Zbuild-std --target "$TSAN_TARGET" \
      -p oda-telemetry --lib
    RUSTFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -q -Zbuild-std --target "$TSAN_TARGET" \
      -p oda-serve --lib
  else
    echo "SKIP: thread-sanitizer lane — nightly rust-src component unavailable" >&2
    echo "      (rustup +nightly component add rust-src; the hosted sanitizers job always runs it)" >&2
  fi
fi

echo "CI OK"
