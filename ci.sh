#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order fastest-feedback
# first. Run from the repo root. Mirrors .github/workflows/ci.yml — keep
# the two in sync. The soaks at the end run the full ODA runtime under
# fault injection (replay must be bit-identical at workers=1 and
# workers=4) and regenerate the BENCH_*.json reports, which are gated
# against the committed baselines by ci/check_bench.py.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> odalint (static determinism / panic-safety / unsafe-audit gate)"
# Deny-by-default source lint; exits nonzero on any unallowed violation
# and writes LINT_report.json, whose schema check_lint.py then verifies.
cargo run -q -p lint --bin odalint
python3 ci/check_lint.py LINT_report.json

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
# The pre-0.2 QueryEngine methods and TelemetryBus::subscribe are gone;
# odalint's deprecated-api rule keeps them from coming back.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -- -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> chaos soak (short budget; replay at workers=1 and workers=4)"
cargo run --release -p oda-bench --bin chaos -- 4000 21 4

echo "==> ingest soak (observability baseline)"
cargo run --release -p oda-bench --bin ingest -- 200 48 > BENCH_ingest.json
python3 ci/check_bench.py BENCH_ingest.json ci/baselines/BENCH_ingest.json

echo "==> scale bench (worker sweep 1/2/4/8)"
cargo run --release -p oda-bench --bin scale > BENCH_scale.json
python3 ci/check_bench.py BENCH_scale.json ci/baselines/BENCH_scale.json

echo "==> storage bench (backend sweep: ingest / long-window query / recovery)"
cargo run --release -p oda-bench --bin storage > BENCH_storage.json
python3 ci/check_bench.py BENCH_storage.json ci/baselines/BENCH_storage.json

echo "==> serving bench (multi-tenant query traffic + subscription fan-out)"
cargo run --release -p oda-bench --bin serving > BENCH_serving.json
python3 ci/check_bench.py BENCH_serving.json ci/baselines/BENCH_serving.json

echo "CI OK"
