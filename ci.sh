#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order fastest-feedback
# first. Run from the repo root. The chaos soak at the end runs the full
# ODA runtime under fault injection with a small tick budget and fails on
# any panic, NaN-carrying alert, or nondeterministic replay.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos soak (short budget)"
cargo run --release -p oda-bench --bin chaos -- 4000 21

echo "CI OK"
