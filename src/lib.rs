#![warn(missing_docs)]

//! # hpc-oda — facade crate
//!
//! Re-exports the whole workspace behind a single dependency so examples and
//! downstream users can write `use hpc_oda::...`. See the individual crates:
//!
//! * [`core`] ([`oda_core`]) — the 4×4 ODA framework (pillars × analytics
//!   types), capability registry, staged pipelines, and the Table I survey.
//! * [`telemetry`] ([`oda_telemetry`]) — monitoring substrate.
//! * [`sim`] ([`oda_sim`]) — simulated HPC data center.
//! * [`analytics`] ([`oda_analytics`]) — descriptive / diagnostic /
//!   predictive / prescriptive algorithm library.
//! * [`serve`] ([`oda_serve`]) — multi-tenant query serving frontend
//!   (HTTP endpoints, quotas, result cache, subscription fan-out).

#![forbid(unsafe_code)]

pub use oda_analytics as analytics;
pub use oda_core as core;
pub use oda_serve as serve;
pub use oda_sim as sim;
pub use oda_telemetry as telemetry;
