//! Timestamps and sensor readings.
//!
//! All timestamps in the workspace are *simulation* timestamps: milliseconds
//! since the start of the monitored epoch. Using a dedicated newtype rather
//! than raw integers keeps the millisecond convention from leaking and makes
//! unit mistakes a type error.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in time, measured in milliseconds since the epoch of the monitored
/// system (for simulated data centers: the start of the simulation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (start of the epoch).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The greatest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Builds a timestamp from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Builds a timestamp from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000)
    }

    /// Builds a timestamp from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        Timestamp(m * 60_000)
    }

    /// Builds a timestamp from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        Timestamp(h * 3_600_000)
    }

    /// Milliseconds since the epoch.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, truncated.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float (for arithmetic in models).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Hours since the epoch as a float.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Saturating difference in milliseconds (`self - earlier`).
    #[inline]
    pub fn millis_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The timestamp truncated down to a multiple of `bucket_ms`.
    ///
    /// Used by downsampling and windowed aggregation; `bucket_ms` must be
    /// non-zero.
    #[inline]
    pub fn bucket(self, bucket_ms: u64) -> Timestamp {
        Timestamp(self.0 - self.0 % bucket_ms)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(ms))
    }
}

impl Sub<u64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(ms))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_s = self.0 / 1_000;
        let (h, m, s, ms) = (
            total_s / 3_600,
            (total_s / 60) % 60,
            total_s % 60,
            self.0 % 1_000,
        );
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

/// A single timestamped sensor value.
///
/// Values are `f64` throughout: all the quantities the framework monitors
/// (power, temperature, utilization, counters converted to rates) fit a
/// double without precision concerns, and a uniform value type keeps the
/// analytics layer free of generic plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// When the value was observed.
    pub ts: Timestamp,
    /// The observed value, in the sensor's registered [`crate::sensor::Unit`].
    pub value: f64,
}

impl Reading {
    /// Creates a reading.
    #[inline]
    pub const fn new(ts: Timestamp, value: f64) -> Self {
        Reading { ts, value }
    }

    /// `true` if the value is a usable number (not NaN or infinite).
    ///
    /// Real monitoring pipelines regularly see garbage samples from flaky
    /// collectors; the store rejects non-finite values at the door so the
    /// analytics layer can assume clean data.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.value.is_finite()
    }
}

/// A batch of readings for one sensor, as published on the bus.
///
/// Batching amortises channel overhead when a collector flushes a sampling
/// interval's worth of values at once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadingBatch {
    /// The sensor all readings in `readings` belong to.
    pub sensor: crate::sensor::SensorId,
    /// The readings, in non-decreasing timestamp order.
    pub readings: Vec<Reading>,
}

impl ReadingBatch {
    /// Creates a batch holding a single reading.
    pub fn single(sensor: crate::sensor::SensorId, reading: Reading) -> Self {
        ReadingBatch {
            sensor,
            readings: vec![reading],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_conversions_round_trip() {
        assert_eq!(Timestamp::from_secs(5).as_millis(), 5_000);
        assert_eq!(Timestamp::from_mins(2).as_secs(), 120);
        assert_eq!(Timestamp::from_hours(1).as_millis(), 3_600_000);
        assert!((Timestamp::from_millis(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timestamp_bucketing_truncates_down() {
        let t = Timestamp::from_millis(12_345);
        assert_eq!(t.bucket(1_000), Timestamp::from_millis(12_000));
        assert_eq!(t.bucket(5_000), Timestamp::from_millis(10_000));
        // Already aligned timestamps are unchanged.
        assert_eq!(
            Timestamp::from_millis(10_000).bucket(5_000).as_millis(),
            10_000
        );
    }

    #[test]
    fn timestamp_arithmetic_saturates() {
        assert_eq!((Timestamp::ZERO - 100).as_millis(), 0);
        assert_eq!((Timestamp::MAX + 100), Timestamp::MAX);
        assert_eq!(
            Timestamp::from_secs(1).millis_since(Timestamp::from_secs(2)),
            0
        );
        assert_eq!(
            Timestamp::from_secs(2).millis_since(Timestamp::from_secs(1)),
            1_000
        );
    }

    #[test]
    fn timestamp_display_is_wall_clock_style() {
        let t = Timestamp::from_millis(3_600_000 + 61_500);
        assert_eq!(t.to_string(), "01:01:01.500");
    }

    #[test]
    fn reading_finiteness() {
        assert!(Reading::new(Timestamp::ZERO, 1.0).is_finite());
        assert!(!Reading::new(Timestamp::ZERO, f64::NAN).is_finite());
        assert!(!Reading::new(Timestamp::ZERO, f64::INFINITY).is_finite());
    }

    #[test]
    fn timestamp_ordering_matches_millis() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
