#![warn(missing_docs)]

//! # oda-telemetry — monitoring substrate for HPC Operational Data Analytics
//!
//! This crate provides the data-collection layer that every ODA capability in
//! the framework consumes: the paper (Netti et al., CLUSTER 2021) defines ODA
//! as *"continuous monitoring, archiving, and analysis of near real-time
//! performance data"*, and this crate is the monitoring-and-archiving half of
//! that definition. It plays the role that production stacks such as DCDB,
//! LDMS or Examon play at real HPC sites.
//!
//! The crate is organised as a pipeline:
//!
//! 1. [`sensor`] — sensors are registered under hierarchical slash-separated
//!    names (e.g. `/facility/chiller0/power`) and referred to everywhere else
//!    by a cheap interned [`sensor::SensorId`].
//! 2. [`bus`] — producers publish [`reading::Reading`]s onto the
//!    [`bus::TelemetryBus`]; consumers subscribe by name pattern.
//! 3. [`store`] — the [`store::TimeSeriesStore`] archives readings in
//!    per-sensor ring buffers behind sharded locks, each maintaining
//!    multi-resolution [`store::RollupConfig`] summary tiers online.
//! 4. [`query`] — the [`query::QueryEngine`] evaluates range queries,
//!    aggregations, downsampling and series alignment over the store,
//!    optionally fanning out across sensors in parallel and serving
//!    decomposable aggregations from rollup tiers instead of raw scans.
//! 5. [`alert`] — threshold alert rules provide the "automated alerts upon
//!    exceeding human-defined thresholds" that the paper lists as part of
//!    descriptive ODA.
//! 6. [`storage`] — the durable tier: a [`storage::StorageBackend`] trait
//!    over the in-memory store, a WAL + compressed-segment persistent
//!    engine, and a hybrid of the two, so the archive can survive process
//!    restarts with bit-identical recovery.
//! 7. [`cluster`] — the distribution layer: N collector shards each own a
//!    consistent-hash slice of the sensor space behind a message-passing
//!    boundary, with a [`cluster::ClusterCoordinator`] doing placement-
//!    routed ingest, deterministic scatter-gather queries (bit-identical
//!    digests at any shard count) and failure-driven rebalance that
//!    replays the durable tier so no accepted reading is lost.
//! 8. [`metrics`] — the stack's *self*-telemetry: every bus publish, store
//!    write, and query scan records into a [`metrics::MetricsRegistry`]
//!    (counters, gauges, deterministic log-linear latency histograms) with
//!    Prometheus-text and JSON exposition, so the ODA system can describe
//!    and diagnose itself the way it describes the machine it watches.
//!
//! ## Quick example
//!
//! ```
//! use oda_telemetry::prelude::*;
//!
//! let registry = SensorRegistry::new();
//! let temp = registry.register("/hw/node0/cpu_temp", SensorKind::Temperature, Unit::Celsius);
//! let store = TimeSeriesStore::with_capacity(1024);
//! for t in 0..10 {
//!     store.insert(temp, Reading::new(Timestamp::from_secs(t), 40.0 + t as f64));
//! }
//! let engine = QueryEngine::new(&store);
//! let avg = Query::sensors(temp)
//!     .range(TimeRange::all())
//!     .aggregate(Aggregation::Mean)
//!     .run(&engine)
//!     .scalar()
//!     .unwrap();
//! assert!((avg - 44.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod alert;
pub mod bus;
pub mod cluster;
pub mod export;
pub mod health;
pub mod metrics;
pub mod pattern;
pub mod query;
pub mod reading;
pub mod sensor;
pub mod storage;
pub mod store;

/// Convenient re-exports of the types used by nearly every consumer.
pub mod prelude {
    pub use crate::alert::{AlertEngine, AlertEvent, AlertRule, AlertSeverity, Condition};
    pub use crate::bus::{Subscription, SubscriptionBuilder, TelemetryBus};
    pub use crate::cluster::{
        ClusterConfig, ClusterCoordinator, EdgeTask, EdgeView, PlacementMap, ShardHealth, ShardId,
        ShardOccupancy,
    };
    pub use crate::health::{HealthReport, SensorHealth, TierOccupancy};
    pub use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Timer};
    pub use crate::pattern::SensorPattern;
    pub use crate::query::{
        Aggregation, Query, QueryEngine, QueryParseError, QueryResult, SensorSelector, TimeRange,
    };
    pub use crate::reading::{Reading, Timestamp};
    pub use crate::sensor::{SensorId, SensorKind, SensorMeta, SensorRegistry, Unit};
    pub use crate::storage::{
        open_backend, BackendKind, DurableBackend, EngineConfig, FsError, InMemoryBackend,
        PersistentEngine, RealFs, RecoveryReport, SimFs, StorageBackend, StorageConfig, StorageFs,
    };
    pub use crate::store::{RollupConfig, RollupTierSpec, TimeSeriesStore};
}
