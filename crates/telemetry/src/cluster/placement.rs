//! Consistent-hash sensor placement for the collector hierarchy.
//!
//! Every shard owns `vnodes_per_shard` pseudo-random points on a `u64`
//! hash ring; a sensor is owned by the shard whose virtual node is the
//! first at or clockwise-after the sensor's own hash point. Both point
//! sets come from the same seeded FNV-1a construction, so placement is a
//! pure function of `(shard count, vnode count, sensor id)` — two
//! coordinators built from the same [`super::ClusterConfig`] agree on
//! every owner without exchanging any state.
//!
//! Failing a shard removes only that shard's virtual nodes: sensors it
//! owned remap to the next surviving point clockwise, while every other
//! sensor keeps its owner — the minimal-movement property that keeps a
//! rebalance proportional to the failed shard's slice instead of the
//! whole sensor space.

use crate::sensor::SensorId;

/// Identifier of one collector shard: its index in the coordinator's
/// shard table, stable across failures (a failed shard's id is never
/// reused for a different shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard's table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// FNV-1a over little-endian `u64`s, then a murmur-style avalanche
/// finalizer. Deterministic across platforms and independent of any
/// process-global hasher state.
///
/// The finalizer matters: plain FNV-1a is *affine* over small inputs
/// (the trailing zero bytes of a small `u64` only multiply by a
/// constant), so without it every ring point for sequential shard,
/// vnode and sensor indices lands on the same arithmetic lattice and
/// nearly all sensors resolve to one owner. The xor-shift/multiply
/// rounds break that linearity and restore the uniform slice sizes
/// consistent hashing is supposed to give.
fn fnv64(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Ring point for `(shard, vnode)`. Both inputs pass through `u32` —
/// the wire width of [`ShardId`] — and widen losslessly with
/// `u64::from`, so `usize` never reaches the hash and the digest is
/// bit-identical on 32-bit edge collectors and 64-bit CI. (The `+ 1`
/// happens *after* widening: `u32::MAX + 1` must not wrap.)
fn ring_point(shard: u32, vnode: u32) -> u64 {
    fnv64(&[u64::from(shard) + 1, u64::from(vnode) + 1])
}

/// The ownership map: which shard owns which slice of the sensor space.
///
/// `epoch` increments on every membership change (failure or
/// restart-in-place), so consumers can detect that cached owner lookups
/// are stale.
#[derive(Debug, Clone)]
pub struct PlacementMap {
    /// Ring points, sorted ascending by hash point. Rebuilt on failure.
    ring: Vec<(u64, ShardId)>,
    /// Liveness per shard id.
    alive: Vec<bool>,
    vnodes_per_shard: usize,
    epoch: u64,
}

impl PlacementMap {
    /// Builds the ring for `shards` shards with `vnodes_per_shard` virtual
    /// nodes each.
    ///
    /// # Panics
    /// Panics if `shards == 0`, `vnodes_per_shard == 0`, or either
    /// exceeds `u32::MAX` (shard ids and vnode indexes are `u32` on the
    /// ring so placement digests are identical across `usize` widths).
    pub fn new(shards: usize, vnodes_per_shard: usize) -> Self {
        assert!(shards > 0, "placement needs at least one shard");
        assert!(vnodes_per_shard > 0, "placement needs at least one vnode");
        assert!(shards <= u32::MAX as usize, "shard count exceeds u32");
        assert!(
            vnodes_per_shard <= u32::MAX as usize,
            "vnode count exceeds u32"
        );
        let mut map = PlacementMap {
            ring: Vec::new(),
            alive: vec![true; shards],
            vnodes_per_shard,
            epoch: 0,
        };
        map.rebuild_ring();
        map
    }

    fn rebuild_ring(&mut self) {
        self.ring.clear();
        for (s, alive) in self.alive.iter().enumerate() {
            if !alive {
                continue;
            }
            // `as u32` is lossless here: `new()` rejects counts above
            // `u32::MAX`, and `s`/`v` index those counts.
            for v in 0..self.vnodes_per_shard {
                self.ring
                    .push((ring_point(s as u32, v as u32), ShardId(s as u32)));
            }
        }
        self.ring.sort_unstable();
    }

    /// The shard currently owning `sensor`.
    ///
    /// # Panics
    /// Panics if every shard has failed (an empty ring has no owners; the
    /// coordinator restarts the last shard in place instead of removing it).
    pub fn owner(&self, sensor: SensorId) -> ShardId {
        let point = fnv64(&[u64::from(sensor.0)]);
        let idx = self.ring.partition_point(|&(p, _)| p < point);
        self.ring
            .get(idx)
            .or_else(|| self.ring.first())
            .map(|&(_, s)| s)
            // odalint: allow(panic-unwrap) -- fail() refuses to remove the last alive shard, so the ring is never empty
            .expect("placement ring is empty: every shard has failed")
    }

    /// Marks `shard` failed and removes its virtual nodes, remapping only
    /// the sensors it owned. Returns `false` (and changes nothing) if the
    /// shard is unknown, already failed, or the last one alive.
    pub fn fail(&mut self, shard: ShardId) -> bool {
        let alive_count = self.alive.iter().filter(|a| **a).count();
        let Some(alive) = self.alive.get_mut(shard.index()) else {
            return false;
        };
        if !*alive || alive_count <= 1 {
            return false;
        }
        *alive = false;
        self.epoch += 1;
        self.rebuild_ring();
        true
    }

    /// Records a restart-in-place (same shard id, recovered from its own
    /// durable tier): ownership is unchanged but the epoch advances so
    /// observers see a membership event.
    pub fn note_restart(&mut self) {
        self.epoch += 1;
    }

    /// Whether `shard` is alive.
    pub fn is_alive(&self, shard: ShardId) -> bool {
        self.alive.get(shard.index()).copied().unwrap_or(false)
    }

    /// Alive shard ids, ascending.
    pub fn alive(&self) -> Vec<ShardId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(s, _)| ShardId(s as u32))
            .collect()
    }

    /// Configured shard count (alive or not).
    pub fn shard_count(&self) -> usize {
        self.alive.len()
    }

    /// Membership epoch: bumps on every failure or restart.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = PlacementMap::new(4, 64);
        let b = PlacementMap::new(4, 64);
        for i in 0..500u32 {
            let s = SensorId(i);
            assert_eq!(a.owner(s), b.owner(s));
            assert!(a.owner(s).index() < 4);
        }
    }

    #[test]
    fn every_shard_owns_a_slice() {
        let map = PlacementMap::new(8, 64);
        let mut counts = [0usize; 8];
        for i in 0..2_000u32 {
            counts[map.owner(SensorId(i)).index()] += 1;
        }
        // Fair share is 250; require at least a quarter of it so the
        // affine-hash clustering regression (one shard owning nearly
        // everything) can never come back.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 62, "shard {s} owns only {c} of 2000 sensors");
        }
    }

    #[test]
    fn failure_moves_only_the_failed_slice() {
        let mut map = PlacementMap::new(4, 64);
        let before: Vec<ShardId> = (0..1_000u32).map(|i| map.owner(SensorId(i))).collect();
        assert!(map.fail(ShardId(2)));
        assert_eq!(map.epoch(), 1);
        for (i, &old) in before.iter().enumerate() {
            let new = map.owner(SensorId(i as u32));
            if old == ShardId(2) {
                assert_ne!(new, ShardId(2), "sensor {i} still on the failed shard");
            } else {
                assert_eq!(new, old, "sensor {i} moved although its owner survived");
            }
        }
    }

    /// 32-bit portability pin: every value feeding the ring hash is a
    /// `u32` widened losslessly, so these digests must be identical on
    /// every platform — a 32-bit edge collector has to agree with 64-bit
    /// CI on every owner. The constants were computed once on x86-64;
    /// the `u32::MAX` inputs sit exactly on the boundary where a stray
    /// `usize`-width cast or a pre-widening `+ 1` would wrap on 32-bit
    /// and change the digest.
    #[test]
    fn hash_points_are_width_independent_at_u32_boundaries() {
        assert_eq!(ring_point(0, 0), 0xd6fb_bdd4_a170_35e7);
        assert_eq!(ring_point(1, 1), 0xb0cf_5f45_7c66_a13e);
        assert_eq!(ring_point(u32::MAX, 1), 0x0f28_93c9_d666_2b8b);
        assert_eq!(ring_point(1, u32::MAX), 0xb8ad_325a_c8e1_0b8b);
        assert_eq!(ring_point(u32::MAX, u32::MAX), 0x61e2_a99f_4f2a_6395);
        assert_eq!(fnv64(&[u64::from(u32::MAX)]), 0x1073_d272_73ad_8deb);
        // And a derived whole-map digest: the owner sequence of a real
        // placement, folded through the same hash.
        let map = PlacementMap::new(3, 8);
        let owners: Vec<u64> = (0..100u32)
            .map(|i| u64::from(map.owner(SensorId(i)).0))
            .collect();
        assert_eq!(fnv64(&owners), 0x645a_3b84_caac_196e);
    }

    #[test]
    fn last_shard_cannot_be_failed() {
        let mut map = PlacementMap::new(2, 16);
        assert!(map.fail(ShardId(0)));
        assert!(!map.fail(ShardId(1)), "last alive shard must stay");
        assert!(!map.fail(ShardId(0)), "double-failure is a no-op");
        assert_eq!(map.alive(), vec![ShardId(1)]);
    }
}
