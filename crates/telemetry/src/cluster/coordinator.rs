//! The coordinator: ingest routing, scatter-gather queries, and
//! failure-driven rebalance over a set of collector shards.
//!
//! # Determinism argument
//!
//! Unsharded query execution is per-sensor for everything except the
//! final alignment step: [`crate::query`] fetches, buckets and
//! aggregates each resolved sensor independently, then (for aligned
//! queries only) merges the per-sensor bucket lists onto a union grid.
//! The coordinator exploits exactly that structure:
//!
//! 1. the selector is resolved once, centrally, into the same ordered
//!    sensor list the unsharded engine would produce;
//! 2. each shard executes a sub-query over only the sensors it owns —
//!    per-sensor work identical to the unsharded scan, including the
//!    rollup-tier planner (aligned queries are rewritten to per-shard
//!    mean-bucket queries, the exact per-sensor computation the
//!    unsharded aligned path runs);
//! 3. partial results are gathered in ascending-shard-id order and each
//!    per-sensor partial is slotted back into the sensor's position in
//!    the resolved order — a deterministic fold whose result does not
//!    depend on shard count or reply timing;
//! 4. for aligned queries the coordinator runs the same
//!    [`align_buckets`] merge the unsharded engine runs, over per-sensor
//!    inputs that are bit-identical to the unsharded ones.
//!
//! Every step is either per-sensor-identical or a deterministic
//! reassembly, so [`QueryResult::digest`] is bit-identical at any shard
//! count, including `shards = 1` — the property `tests/cluster.rs` and
//! the scale bench's exit gate assert.
//!
//! # Rebalance protocol
//!
//! A node-failure fault against a shard runs fail-stop handoff:
//! drain-stop the shard (its queue empties and its WAL syncs), remove
//! its virtual nodes from the placement ring (only its sensors remap),
//! reopen its durable tier ([`PersistentEngine::open`]) from the
//! surviving filesystem, and replay each moved sensor's readings into
//! its new owner in acceptance order. Because shards acknowledge an
//! ingest only after the WAL sync (see [`super::shard`]), no accepted
//! reading is lost. The last alive shard cannot be removed; failing it
//! restarts it in place from its own durable tier instead.

use crate::cluster::placement::{PlacementMap, ShardId};
use crate::cluster::shard::{EdgeTask, ShardCmd, ShardHandle, ShardHealth};
use crate::cluster::ClusterConfig;
use crate::metrics::MetricsRegistry;
use crate::query::{align_buckets, Bucket, Query, QueryResult, ResultData, SensorSelector, Shape};
use crate::reading::{Reading, ReadingBatch, Timestamp};
use crate::sensor::{SensorId, SensorRegistry};
use crate::storage::engine::PersistentEngine;
use crate::storage::{FsError, SimFs, StorageFs};
use crossbeam_channel::bounded;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-shard occupancy snapshot surfaced through `/api/v1/stats`.
#[derive(Debug, Clone)]
pub struct ShardOccupancy {
    /// Which shard.
    pub shard: ShardId,
    /// Whether the shard is alive (failed shards report zeros).
    pub alive: bool,
    /// Sensors the placement ring currently assigns to this shard.
    pub sensors_owned: u64,
    /// Readings resident in the shard's hot store.
    pub readings: u64,
    /// Readings evicted from the shard's ring buffers.
    pub evicted: u64,
    /// Readings durably stored by the shard's archive tier.
    pub durable_len: u64,
    /// Batches the shard has published since spawn.
    pub published: u64,
}

struct State {
    placement: PlacementMap,
    /// Indexed by shard id; `None` marks a failed (removed) shard.
    shards: Vec<Option<ShardHandle>>,
    rebalances: u64,
}

/// Routes ingest by sensor placement and executes queries via
/// scatter-gather over the shard set (see the module docs for the
/// determinism and rebalance contracts).
///
/// The lock guards *membership only* (the shard table and placement
/// ring); the data plane is entirely message-passing — readers of the
/// lock send commands into shard queues and shards never take the lock,
/// so there are no shared locks across shards and no lock-ordering
/// hazards between ingest, query and rebalance.
pub struct ClusterCoordinator {
    cfg: ClusterConfig,
    registry: SensorRegistry,
    state: RwLock<State>,
}

impl ClusterCoordinator {
    /// Spawns `cfg.shards` collector shards, each over its own private
    /// simulated filesystem, and builds the placement ring.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0` (a cluster needs at least one shard).
    pub fn new(cfg: ClusterConfig, registry: SensorRegistry) -> Result<Self, FsError> {
        let placement = PlacementMap::new(cfg.shards, cfg.vnodes_per_shard);
        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let fs: Arc<dyn StorageFs> = Arc::new(SimFs::new());
            shards.push(Some(ShardHandle::spawn(
                ShardId(s as u32),
                &cfg,
                registry.clone(),
                fs,
            )?));
        }
        Ok(ClusterCoordinator {
            cfg,
            registry,
            state: RwLock::new(State {
                placement,
                shards,
                rebalances: 0,
            }),
        })
    }

    /// Configured shard count (alive or not).
    pub fn shard_count(&self) -> usize {
        self.state.read().placement.shard_count()
    }

    /// Alive shard ids, ascending.
    pub fn alive_shards(&self) -> Vec<ShardId> {
        self.state.read().placement.alive()
    }

    /// Membership epoch (bumps on every failure or restart).
    pub fn epoch(&self) -> u64 {
        self.state.read().placement.epoch()
    }

    /// Rebalances (slice handoffs to surviving shards) performed so far.
    /// A last-shard restart-in-place moves no data and is *not* counted
    /// here; it is visible as an [`Self::epoch`] bump instead.
    pub fn rebalances(&self) -> u64 {
        self.state.read().rebalances
    }

    /// The registry shared by every shard's query engine.
    pub fn registry(&self) -> &SensorRegistry {
        &self.registry
    }

    /// The shard currently owning `sensor`.
    pub fn owner(&self, sensor: SensorId) -> ShardId {
        self.state.read().placement.owner(sensor)
    }

    /// Routes one batch to the shard owning its sensor. Returns `false`
    /// if the owner's queue is disconnected (only possible mid-shutdown).
    pub fn ingest(&self, batch: ReadingBatch) -> bool {
        let state = self.state.read();
        let owner = state.placement.owner(batch.sensor);
        match state.shards.get(owner.index()) {
            Some(Some(h)) => h.tx.send(ShardCmd::Ingest(batch)).is_ok(),
            _ => false,
        }
    }

    /// Barrier: returns once every alive shard has drained all commands
    /// enqueued before the call (each queue is FIFO, so a fence reply
    /// proves every earlier ingest on that shard is applied and durable).
    pub fn fence(&self) {
        let state = self.state.read();
        // The guard *must* span the barrier: a concurrent `fail_shard`
        // between scatter and gather could stop a fenced shard and leave
        // its reply forever pending. Shards never take this lock, so the
        // wait cannot deadlock (see the struct docs).
        // odalint: allow(guard-across-blocking) -- fence is a barrier by design; shards never take state, so no deadlock
        fence_alive(&state);
    }

    /// Resolves `query`'s selector to the concrete ordered sensor list —
    /// the same list the unsharded engine would scan (explicit ids as
    /// given; patterns matched against the registry in ascending id
    /// order).
    pub fn resolve(&self, query: &Query) -> Vec<SensorId> {
        self.resolve_selector(&query.selector)
    }

    fn resolve_selector(&self, selector: &SensorSelector) -> Vec<SensorId> {
        match selector {
            SensorSelector::Ids(ids) => ids.clone(),
            SensorSelector::Pattern(pattern) => {
                let mut ids = self.registry.matching(pattern);
                ids.sort_unstable_by_key(|s| s.index());
                ids
            }
        }
    }

    /// Snapshots per-sensor store versions from the owning shards, in
    /// the given sensor order — the cluster analogue of
    /// [`crate::store::TimeSeriesStore::sensor_version`], used by the
    /// serving layer's result cache.
    pub fn sensor_versions(&self, sensors: &[SensorId]) -> Vec<u64> {
        let state = self.state.read();
        let mut parts: BTreeMap<ShardId, Vec<(usize, SensorId)>> = BTreeMap::new();
        for (pos, &s) in sensors.iter().enumerate() {
            parts
                .entry(state.placement.owner(s))
                .or_default()
                .push((pos, s));
        }
        let mut out = vec![0u64; sensors.len()];
        let mut pending = Vec::new();
        for (shard, slice) in &parts {
            let Some(Some(h)) = state.shards.get(shard.index()) else {
                continue;
            };
            let (reply, rx) = bounded(1);
            let sensors: Vec<SensorId> = slice.iter().map(|&(_, s)| s).collect();
            if h.tx.send(ShardCmd::Versions { sensors, reply }).is_ok() {
                pending.push((slice, rx));
            }
        }
        // Gather outside the lock: a slow shard must not stall placement
        // writers. Replies are routed by `reply` channel, not identity,
        // so a concurrent failover cannot misdirect them.
        drop(state);
        for (slice, rx) in pending {
            if let Ok(versions) = rx.recv() {
                for (&(pos, _), v) in slice.iter().zip(versions) {
                    if let Some(slot) = out.get_mut(pos) {
                        *slot = v;
                    }
                }
            }
        }
        out
    }

    /// Executes `query` by scatter-gather: resolve centrally, send each
    /// shard a sub-query over the sensors it owns, gather partials in
    /// ascending-shard-id order, and slot each per-sensor partial back
    /// into the sensor's resolved position. Bit-identical to unsharded
    /// execution at any shard count (see the module docs).
    pub fn query(&self, query: Query) -> QueryResult {
        let sensors = self.resolve_selector(&query.selector);
        let state = self.state.read();
        let mut parts: BTreeMap<ShardId, Vec<(usize, SensorId)>> = BTreeMap::new();
        for (pos, &s) in sensors.iter().enumerate() {
            parts
                .entry(state.placement.owner(s))
                .or_default()
                .push((pos, s));
        }
        // Aligned queries cannot be executed per-shard directly (the
        // union grid spans all sensors), but their per-sensor core —
        // mean-bucketing at the requested width — is exactly a bucket
        // query, so scatter that and run the final alignment centrally.
        let sub_shape = match query.shape {
            Shape::Aligned { bucket_ms } => Shape::Buckets {
                bucket_ms,
                agg: crate::query::Aggregation::Mean,
            },
            other => other,
        };
        // Scatter in ascending shard-id order (BTreeMap iteration)...
        let mut pending = Vec::new();
        for (shard, slice) in &parts {
            let Some(Some(h)) = state.shards.get(shard.index()) else {
                continue;
            };
            let sub = Query {
                selector: SensorSelector::Ids(slice.iter().map(|&(_, s)| s).collect()),
                range: query.range,
                rate: query.rate,
                raw_only: query.raw_only,
                shape: sub_shape,
            };
            let (reply, rx) = bounded(1);
            if h.tx.send(ShardCmd::Query { query: sub, reply }).is_ok() {
                pending.push((slice, rx));
            }
        }
        // ...and gather in the same order: a shard-id-sorted fold into
        // position-addressed slots, independent of reply timing. The
        // guard drops first — shard-local query execution must not block
        // placement writers.
        drop(state);
        match query.shape {
            Shape::Readings => {
                let mut slots: Vec<Vec<Reading>> = vec![Vec::new(); sensors.len()];
                for (slice, rx) in pending {
                    if let Ok(partial) = rx.recv() {
                        if let ResultData::Series(series) = partial.shape {
                            slot_back(&mut slots, slice, series);
                        }
                    }
                }
                QueryResult {
                    sensors,
                    shape: ResultData::Series(slots),
                }
            }
            Shape::Buckets { .. } => {
                let mut slots: Vec<Vec<Bucket>> = vec![Vec::new(); sensors.len()];
                for (slice, rx) in pending {
                    if let Ok(partial) = rx.recv() {
                        if let ResultData::Buckets(series) = partial.shape {
                            slot_back(&mut slots, slice, series);
                        }
                    }
                }
                QueryResult {
                    sensors,
                    shape: ResultData::Buckets(slots),
                }
            }
            Shape::Scalars(_) => {
                let mut slots: Vec<Option<f64>> = vec![None; sensors.len()];
                for (slice, rx) in pending {
                    if let Ok(partial) = rx.recv() {
                        if let ResultData::Scalars(values) = partial.shape {
                            slot_back(&mut slots, slice, values);
                        }
                    }
                }
                QueryResult {
                    sensors,
                    shape: ResultData::Scalars(slots),
                }
            }
            Shape::Aligned { .. } => {
                let mut slots: Vec<Vec<Bucket>> = vec![Vec::new(); sensors.len()];
                for (slice, rx) in pending {
                    if let Ok(partial) = rx.recv() {
                        if let ResultData::Buckets(series) = partial.shape {
                            slot_back(&mut slots, slice, series);
                        }
                    }
                }
                let (grid, matrix) = align_buckets(&slots);
                QueryResult {
                    sensors,
                    shape: ResultData::Aligned { grid, matrix },
                }
            }
        }
    }

    /// Health reports from every alive shard, in ascending shard order.
    pub fn health(&self) -> Vec<ShardHealth> {
        let state = self.state.read();
        let mut pending = Vec::new();
        for id in state.placement.alive() {
            let Some(Some(h)) = state.shards.get(id.index()) else {
                continue;
            };
            let (reply, rx) = bounded(1);
            if h.tx.send(ShardCmd::Health { reply }).is_ok() {
                pending.push(rx);
            }
        }
        // Gather with the lock released; see `query`.
        drop(state);
        pending
            .into_iter()
            .filter_map(|rx| rx.recv().ok())
            .collect()
    }

    /// Per-shard occupancy for `/api/v1/stats`: one entry per configured
    /// shard (failed shards report `alive: false` and zeros).
    pub fn occupancy(&self) -> Vec<ShardOccupancy> {
        let health = self.health();
        let state = self.state.read();
        let mut owned = vec![0u64; state.placement.shard_count()];
        for meta in self.registry.all() {
            let owner = state.placement.owner(meta.id);
            if let Some(slot) = owned.get_mut(owner.index()) {
                *slot += 1;
            }
        }
        (0..state.placement.shard_count())
            .map(|i| {
                let shard = ShardId(i as u32);
                let alive = state.placement.is_alive(shard);
                let h = health.iter().find(|h| h.shard == shard);
                ShardOccupancy {
                    shard,
                    alive,
                    sensors_owned: if alive {
                        owned.get(i).copied().unwrap_or(0)
                    } else {
                        0
                    },
                    readings: h.map(|h| h.report.total_len() as u64).unwrap_or(0),
                    evicted: h.map(|h| h.report.total_evicted()).unwrap_or(0),
                    durable_len: h.map(|h| h.durable_len).unwrap_or(0),
                    published: h.map(|h| h.published).unwrap_or(0),
                }
            })
            .collect()
    }

    /// Runs `task` on every alive shard's own thread against its local
    /// store (edge placement), gathering `(shard, samples)` in ascending
    /// shard order.
    pub fn run_edge(&self, task: EdgeTask) -> Vec<(ShardId, Vec<(String, f64)>)> {
        let state = self.state.read();
        let mut pending = Vec::new();
        for id in state.placement.alive() {
            let Some(Some(h)) = state.shards.get(id.index()) else {
                continue;
            };
            let (reply, rx) = bounded(1);
            let cmd = ShardCmd::Edge {
                task: Arc::clone(&task),
                reply,
            };
            if h.tx.send(cmd).is_ok() {
                pending.push((id, rx));
            }
        }
        // Gather with the lock released; see `query`.
        drop(state);
        pending
            .into_iter()
            .filter_map(|(id, rx)| rx.recv().ok().map(|samples| (id, samples)))
            .collect()
    }

    /// Fails `shard` and rebalances its slice: drain-stop the shard,
    /// remove its ring points, reopen its durable tier from the
    /// surviving filesystem and replay every moved sensor into its new
    /// owner in acceptance order (no accepted reading is lost — see the
    /// module docs). Failing the last alive shard restarts it in place
    /// from its own durable tier instead of removing it.
    ///
    /// Returns `false` if `shard` is unknown or already failed.
    pub fn fail_shard(&self, shard: ShardId) -> bool {
        let mut state = self.state.write();
        if !state.placement.is_alive(shard) {
            return false;
        }
        let Some(handle) = state.shards.get_mut(shard.index()).and_then(Option::take) else {
            return false;
        };
        // Drain-stop: the queue empties and the WAL syncs, so the
        // filesystem below holds every reading the shard ever accepted.
        // The write guard intentionally spans the whole failover — no
        // ingest/query may observe a half-failed cluster. The stopped
        // shard drains independently of this lock (shards never take it).
        // odalint: allow(guard-across-blocking) -- failover is exclusive by design; the drained shard never takes state
        let fs = handle.stop();
        if !state.placement.fail(shard) {
            // Last alive shard: restart in place. The backend replays the
            // durable tier into a fresh hot store on open, recovering ring
            // and rollup state bit-identically.
            match ShardHandle::spawn(shard, &self.cfg, self.registry.clone(), fs) {
                Ok(h) => {
                    if let Some(slot) = state.shards.get_mut(shard.index()) {
                        *slot = Some(h);
                    }
                    // No data moved owners: an epoch bump records the
                    // membership event, the rebalance counter does not.
                    state.placement.note_restart();
                    return true;
                }
                Err(_) => return false,
            }
        }
        // Handoff: moved sensors are exactly the failed shard's slice
        // (consistent hashing moves nothing else). Placement was captured
        // per-sensor *before* the ring rebuild via ownership of the old
        // map — recompute from the new map's perspective instead: a
        // sensor moved iff its new owner differs from `shard`, and the
        // failed shard's durable tier holds only its own sensors, so
        // replaying every sensor it stored is precisely the moved set.
        let report = MetricsRegistry::new();
        if let Ok((engine, _recovery)) =
            PersistentEngine::open(Arc::clone(&fs), self.cfg.storage.engine.clone(), &report)
        {
            let mut buf: Vec<Reading> = Vec::new();
            for meta in self.registry.all() {
                buf.clear();
                if engine
                    .range_into(meta.id, Timestamp::ZERO, Timestamp(u64::MAX), &mut buf)
                    .is_err()
                    || buf.is_empty()
                {
                    continue;
                }
                let owner = state.placement.owner(meta.id);
                if let Some(Some(h)) = state.shards.get(owner.index()) {
                    let batch = ReadingBatch {
                        sensor: meta.id,
                        readings: buf.clone(),
                    };
                    let _ = h.tx.send(ShardCmd::Ingest(batch));
                }
            }
        }
        // Fence the survivors so the handoff is fully applied (and
        // durable on the new owners) before the failure "completes".
        // odalint: allow(guard-across-blocking) -- failover barrier by design; survivors never take state, so no deadlock
        fence_alive(&state);
        state.rebalances += 1;
        true
    }

    /// Maps a chaos-harness node failure onto the shard hierarchy: node
    /// `node_index` is served by collector shard `node_index % shards`;
    /// if that shard already failed, the fault cascades to the next
    /// alive shard clockwise. Returns the shard actually failed (or
    /// restarted in place), or `None` if the cluster has no alive shard
    /// to fail.
    pub fn apply_node_failure(&self, node_index: usize) -> Option<ShardId> {
        let (count, alive) = {
            let state = self.state.read();
            (state.placement.shard_count(), state.placement.alive())
        };
        if count == 0 || alive.is_empty() {
            return None;
        }
        let start = node_index % count;
        for off in 0..count {
            let id = ShardId(((start + off) % count) as u32);
            if alive.contains(&id) && self.fail_shard(id) {
                return Some(id);
            }
        }
        None
    }
}

impl Drop for ClusterCoordinator {
    fn drop(&mut self) {
        let state = self.state.get_mut();
        for slot in state.shards.iter_mut() {
            if let Some(h) = slot.take() {
                let _ = h.stop();
            }
        }
    }
}

/// Sends a fence to every alive shard and waits for all replies.
fn fence_alive(state: &State) {
    let mut pending = Vec::new();
    for id in state.placement.alive() {
        let Some(Some(h)) = state.shards.get(id.index()) else {
            continue;
        };
        let (reply, rx) = bounded(1);
        if h.tx.send(ShardCmd::Fence { reply }).is_ok() {
            pending.push(rx);
        }
    }
    for rx in pending {
        let _ = rx.recv();
    }
}

/// Writes each per-sensor partial into its sensor's position in the
/// resolved order. `slice` pairs positions with sensors in the exact
/// order the sub-query listed them, so `partials[k]` is the result for
/// `slice[k]`'s sensor.
fn slot_back<T>(slots: &mut [T], slice: &[(usize, SensorId)], partials: Vec<T>) {
    for (&(pos, _), partial) in slice.iter().zip(partials) {
        if let Some(slot) = slots.get_mut(pos) {
            *slot = partial;
        }
    }
}
