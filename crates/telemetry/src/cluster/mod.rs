//! Sharded collector hierarchy: distributed ingest and scatter-gather
//! queries over N collector shards.
//!
//! Production ODA stacks (DCDB, LDMS, Examon) scale by pushing collection
//! into a hierarchy of per-node collectors feeding aggregation layers;
//! this module reproduces that shape inside one process while preserving
//! the framework's bit-identical determinism contract:
//!
//! * [`PlacementMap`] — a consistent-hash ring assigns every sensor to
//!   exactly one shard; failing a shard remaps only its slice.
//! * `shard` (internal) — each shard owns a private `TelemetryBus` +
//!   `TimeSeriesStore` + rollup tiers + durable archive behind a command
//!   channel; no shared locks across shards.
//! * [`ClusterCoordinator`] — routes ingest by placement, executes
//!   queries via scatter-gather with a shard-id-sorted deterministic
//!   merge (digests bit-identical at any shard count, including
//!   `shards = 1`), and rebalances ownership on node failure by
//!   replaying the failed shard's durable tier into the new owners.
//!
//! Operator placement follows the edge/global split: shard-local "edge"
//! tasks ([`EdgeTask`]) run on each shard's own thread against its local
//! store, while global consumers read gathered aggregates through
//! [`ClusterCoordinator::query`].

mod coordinator;
pub mod placement;
mod shard;

pub use coordinator::{ClusterCoordinator, ShardOccupancy};
pub use placement::{PlacementMap, ShardId};
pub use shard::{EdgeTask, EdgeView, ShardHealth};

use crate::storage::StorageConfig;
use crate::store::RollupConfig;

/// Configuration of a collector-shard cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of collector shards (must be ≥ 1).
    pub shards: usize,
    /// Virtual nodes per shard on the placement ring; more vnodes give a
    /// more even sensor spread at slightly higher ring-rebuild cost.
    pub vnodes_per_shard: usize,
    /// Ring-buffer capacity per sensor in each shard's hot store.
    pub per_sensor_capacity: usize,
    /// Rollup tiers each shard maintains online.
    pub rollups: RollupConfig,
    /// Storage backend per shard. Rebalance-on-failure replays the failed
    /// shard's durable tier, so recovery without data loss requires a
    /// durable backend ([`crate::storage::BackendKind::Hybrid`] or
    /// [`crate::storage::BackendKind::Persistent`]); with an in-memory
    /// backend a failed shard's slice restarts empty.
    pub storage: StorageConfig,
    /// Command-queue depth per shard (ingest backpressure threshold).
    pub queue_depth: usize,
    /// Simulated per-batch collector I/O wait in microseconds (network
    /// round-trip + media sync). Zero in production configs; the scale
    /// bench sets it to model the per-collector latency that sharding
    /// overlaps across shard threads.
    pub io_wait_us: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            vnodes_per_shard: 64,
            per_sensor_capacity: 1024,
            rollups: RollupConfig::default(),
            storage: StorageConfig::hybrid(),
            queue_depth: 1024,
            io_wait_us: 0,
        }
    }
}

impl ClusterConfig {
    /// A config with `shards` shards and defaults for everything else.
    pub fn with_shards(shards: usize) -> Self {
        ClusterConfig {
            shards,
            ..Self::default()
        }
    }
}
