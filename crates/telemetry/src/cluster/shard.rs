//! One collector shard: a bus + store + durable tier owned by a single
//! worker thread, reachable only through a command channel.
//!
//! The channel is the shard's entire public surface — no other thread
//! ever touches the shard's store or archive, so there are no shared
//! locks across shards and every command (ingest, query, health, edge
//! task) executes in exactly the order it arrived. That FIFO is what
//! makes scatter-gather deterministic without global fences: a query
//! sent after an ingest on the same shard necessarily observes it.
//!
//! Durability contract: each ingest command is archived through the
//! shard's [`StorageBackend`] and the WAL is flushed before the shard
//! moves to the next command. "Accepted" therefore implies "durable",
//! which is what lets [`super::ClusterCoordinator::fail_shard`] rebuild
//! a failed shard's slice from its surviving filesystem without losing
//! a single accepted reading.

use crate::bus::TelemetryBus;
use crate::cluster::placement::ShardId;
use crate::cluster::ClusterConfig;
use crate::health::HealthReport;
use crate::metrics::MetricsRegistry;
use crate::query::{Query, QueryEngine, QueryResult};
use crate::reading::ReadingBatch;
use crate::sensor::{SensorId, SensorRegistry};
use crate::storage::{open_backend, FsError, StorageBackend, StorageFs};
use crate::store::TimeSeriesStore;
use crossbeam_channel::{bounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a shard-local (edge-placed) task sees: the shard's own store and
/// the cluster-wide registry. Edge tasks run *inside* the shard's worker
/// thread, so they observe a quiesced, ordered view of exactly this
/// shard's slice — the "edge operator" placement of the DCDB-style
/// collector hierarchy.
pub struct EdgeView<'a> {
    /// The shard executing the task.
    pub shard: ShardId,
    /// The shard's hot store (its slice of the sensor space only).
    pub store: &'a TimeSeriesStore,
    /// The cluster-wide sensor registry.
    pub registry: &'a SensorRegistry,
}

/// A shard-local task: runs on each shard's own thread against its local
/// store and returns named KPI samples, gathered by the coordinator in
/// shard-id order.
pub type EdgeTask = Arc<dyn Fn(&EdgeView<'_>) -> Vec<(String, f64)> + Send + Sync>;

/// Point-in-time health of one shard, as reported by its worker thread.
#[derive(Debug, Clone)]
pub struct ShardHealth {
    /// Which shard.
    pub shard: ShardId,
    /// The shard store's health report (its slice only).
    pub report: HealthReport,
    /// Readings durably stored by the shard's archive tier.
    pub durable_len: u64,
    /// Batches published through the shard's bus since spawn.
    pub published: u64,
}

/// Commands a shard worker processes in arrival order.
pub(crate) enum ShardCmd {
    /// Archive a batch (fire-and-forget; ack == durable before the next
    /// command runs).
    Ingest(ReadingBatch),
    /// Execute a sub-query against the shard's local store.
    Query {
        query: Query,
        reply: Sender<QueryResult>,
    },
    /// Snapshot per-sensor store versions (result-cache validation).
    Versions {
        sensors: Vec<SensorId>,
        reply: Sender<Vec<u64>>,
    },
    /// Report shard health.
    Health { reply: Sender<ShardHealth> },
    /// Run a shard-local edge task.
    Edge {
        task: EdgeTask,
        reply: Sender<Vec<(String, f64)>>,
    },
    /// Barrier: reply once every earlier command has been processed.
    Fence { reply: Sender<()> },
    /// Flush and exit the worker loop (graceful fail-stop: the queue
    /// drains first, modelling delivered-but-unprocessed ingest as
    /// processed; in-flight *network* loss is out of scope here).
    Stop { reply: Sender<()> },
}

/// Handle to a spawned shard: the command sender, the join handle, and
/// the shard's filesystem (the "disk" that survives a node failure).
pub(crate) struct ShardHandle {
    pub(crate) tx: Sender<ShardCmd>,
    pub(crate) join: Option<JoinHandle<()>>,
    pub(crate) fs: Arc<dyn StorageFs>,
}

impl ShardHandle {
    /// Spawns a shard worker over `fs`. If `fs` already holds durable
    /// state (a restart-in-place after a failure), the backend replays it
    /// into the fresh hot store before the first command runs — ring and
    /// rollup state come back bit-identical to the pre-failure shard.
    pub(crate) fn spawn(
        id: ShardId,
        cfg: &ClusterConfig,
        registry: SensorRegistry,
        fs: Arc<dyn StorageFs>,
    ) -> Result<ShardHandle, FsError> {
        // Each shard gets its own metrics registry: shard stores reuse the
        // store's internal lock-shard labels, which would collide across
        // collector shards on a shared registry.
        let metrics = MetricsRegistry::new();
        let store = Arc::new(TimeSeriesStore::with_rollups(
            cfg.per_sensor_capacity,
            TimeSeriesStore::DEFAULT_SHARDS,
            metrics.clone(),
            cfg.rollups.clone(),
        ));
        let archive = open_backend(&cfg.storage, Arc::clone(&fs), store)?;
        let bus = TelemetryBus::with_archive(registry.clone(), Arc::clone(&archive), metrics);
        let (tx, rx) = bounded::<ShardCmd>(cfg.queue_depth.max(1));
        let io_wait = Duration::from_micros(cfg.io_wait_us);
        let join = std::thread::Builder::new()
            .name(format!("oda-{id}"))
            .spawn(move || run(id, &rx, &bus, &archive, &registry, io_wait))
            .map_err(|e| FsError::Io(format!("spawn {id}: {e}")))?;
        Ok(ShardHandle {
            tx,
            join: Some(join),
            fs,
        })
    }

    /// Drains the queue, flushes the archive and joins the worker thread.
    /// Returns the shard's filesystem for recovery/handoff.
    pub(crate) fn stop(mut self) -> Arc<dyn StorageFs> {
        let (reply, done) = bounded(1);
        if self.tx.send(ShardCmd::Stop { reply }).is_ok() {
            let _ = done.recv();
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        Arc::clone(&self.fs)
    }
}

/// The worker loop: one command at a time, in arrival order, until Stop
/// or every sender is gone.
fn run(
    id: ShardId,
    rx: &Receiver<ShardCmd>,
    bus: &TelemetryBus,
    archive: &Arc<dyn StorageBackend>,
    registry: &SensorRegistry,
    io_wait: Duration,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::Ingest(batch) => {
                if !io_wait.is_zero() {
                    // Simulated collector round-trip (network + media sync)
                    // for the scale bench; zero in production configs.
                    std::thread::sleep(io_wait);
                }
                bus.publish(batch);
                // Ack == durable: WAL-sync what this command accepted
                // before the next command can observe or extend it.
                let _ = archive.flush();
            }
            ShardCmd::Query { query, reply } => {
                let engine = QueryEngine::new(archive.store()).with_registry(registry.clone());
                let _ = reply.send(query.run(&engine));
            }
            ShardCmd::Versions { sensors, reply } => {
                let store = archive.store();
                let versions = sensors.iter().map(|&s| store.sensor_version(s)).collect();
                let _ = reply.send(versions);
            }
            ShardCmd::Health { reply } => {
                let _ = reply.send(ShardHealth {
                    shard: id,
                    report: archive.health_report(),
                    durable_len: archive.durable_len(),
                    published: bus.published(),
                });
            }
            ShardCmd::Edge { task, reply } => {
                let view = EdgeView {
                    shard: id,
                    store: archive.store().as_ref(),
                    registry,
                };
                let _ = reply.send(task(&view));
            }
            ShardCmd::Fence { reply } => {
                let _ = reply.send(());
            }
            ShardCmd::Stop { reply } => {
                let _ = archive.flush();
                let _ = reply.send(());
                return;
            }
        }
    }
}
