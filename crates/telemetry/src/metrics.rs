//! Self-telemetry: runtime metrics for the ODA stack itself.
//!
//! The paper's position (and the DCDB Wintermute / LRZ production
//! experience it draws on) is that an ODA system must be able to describe
//! and diagnose *itself* — per-plugin overhead and ingest-latency
//! accounting were prerequisites for running ODA on a live machine. This
//! module is that layer: lock-free counters, gauges and log-linear latency
//! histograms behind a process-wide [`MetricsRegistry`], exposed both as
//! Prometheus-style text and as a JSON-able snapshot.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost** — recording is a relaxed atomic add (plus one
//!    branch for the bucket index). Instrument *handles* are cheap clones
//!    of `Arc`s created once at component construction; no string hashing
//!    happens on the data path.
//! 2. **No-op mode** — a registry built with [`MetricsRegistry::disabled`]
//!    hands out instruments whose recording methods are a single `None`
//!    check. The `bench --bin ingest` soak reports the instrumented vs.
//!    no-op throughput delta so instrumentation cost stays visible.
//! 3. **Determinism** — histogram bucket boundaries are a fixed log-linear
//!    layout (4 linear sub-buckets per power of two), so two runs that
//!    record the same values produce bit-identical snapshots, and
//!    count-valued metrics of a seeded simulation replay exactly.
//!
//! Naming follows the Prometheus convention: `snake_case` with a
//! `_total` suffix for counters and a `_ns` suffix for nanosecond
//! histograms; labels distinguish instances (`{subscriber="alerts"}`,
//! `{shard="3"}`).

use parking_lot::RwLock;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of linear sub-buckets per power of two (must be a power of two).
const SUB: u64 = 4;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 2;
/// Total number of histogram buckets in the fixed layout.
pub const HISTOGRAM_BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Bucket index of a value in the fixed log-linear layout.
///
/// Values `0..4` get exact buckets; beyond that each power-of-two octave is
/// split into 4 linear sub-buckets, giving a worst-case relative width of
/// 25% across the full `u64` range.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) & (SUB - 1);
    SUB as usize + ((exp - SUB_BITS) as usize) * SUB as usize + sub as usize
}

/// Inclusive lower bound of bucket `idx`.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let block = (idx - SUB as usize) / SUB as usize;
    let sub = ((idx - SUB as usize) % SUB as usize) as u64;
    let exp = block as u32 + SUB_BITS;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// Exclusive upper bound of bucket `idx` (`u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1)
    }
}

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; a counter from a disabled registry
/// ignores all increments.
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter that records nothing (for disabled registries).
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op counters).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A gauge that records nothing.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for no-op gauges).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// An in-flight latency measurement started by [`Histogram::start_timer`].
///
/// Carries `None` when the histogram is a no-op, so disabled registries
/// skip the clock read entirely.
#[must_use = "pass the timer back to Histogram::observe_timer"]
pub struct Timer(Option<Instant>);

/// A fixed-layout log-linear histogram of `u64` values (by convention,
/// nanoseconds for instruments named `*_ns`).
#[derive(Clone)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A histogram that records nothing.
    pub fn noop() -> Self {
        Histogram { cell: None }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Starts a wall-clock timer; a disabled histogram skips the clock read.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        // odalint: allow(wall-clock) -- self-observability timer; excluded from output digests
        Timer(self.cell.as_ref().map(|_| Instant::now()))
    }

    /// Records the elapsed nanoseconds of `timer`.
    #[inline]
    pub fn observe_timer(&self, timer: Timer) {
        if let (Some(cell), Some(start)) = (&self.cell, timer.0) {
            cell.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Deterministic percentile estimate for `q` in `0..=1`.
    ///
    /// Returns the midpoint of the bucket holding the `q`-th value, capped
    /// at the exact recorded maximum — a relative error of at most 12.5%
    /// for values ≥ 4, and exact below that. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let cell = self.cell.as_ref()?;
        let total = cell.count.load(Ordering::Relaxed);
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).max(1);
        let max = cell.max.load(Ordering::Relaxed);
        let mut cum = 0u64;
        for (idx, b) in cell.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                let lo = bucket_lower(idx);
                let hi = bucket_upper(idx);
                let mid = lo + (hi.saturating_sub(lo)) / 2;
                return Some(mid.min(max));
            }
        }
        Some(max)
    }

    /// Maximum recorded value (exact).
    pub fn max(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// Sum of recorded values (exact).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CounterSnapshot {
    /// Full instrument identity, `name` or `name{label="v",...}`.
    pub id: String,
    /// Counter value.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    /// Full instrument identity.
    pub id: String,
    /// Gauge value.
    pub value: f64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Full instrument identity.
    pub id: String,
    /// Values recorded.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Median estimate (fixed-bucket deterministic).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A consistent-enough point-in-time view of every instrument in a
/// registry, ordered by instrument identity (deterministic).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by id.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by id.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by id.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Every *count-valued* metric: counters plus histogram counts.
    ///
    /// These are exactly the values that must replay identically for two
    /// seeded runs (histogram timings are wall-clock and excluded).
    pub fn count_values(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .iter()
            .map(|c| (c.id.clone(), c.value))
            .collect();
        out.extend(
            self.histograms
                .iter()
                .map(|h| (format!("{}_count", h.id), h.count)),
        );
        out
    }

    /// Value of the counter with the exact id, if present.
    pub fn counter(&self, id: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.id == id).map(|c| c.value)
    }

    /// Histogram snapshot with the exact id, if present.
    pub fn histogram(&self, id: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.id == id)
    }
}

type InstrumentKey = (String, String); // (name, rendered label list)

struct RegistryInner {
    counters: RwLock<BTreeMap<InstrumentKey, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<InstrumentKey, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<InstrumentKey, Arc<HistogramCell>>>,
}

/// Registry of named, labeled instruments.
///
/// Cheap to clone (clones share state). Instrument creation is idempotent:
/// asking twice for the same `(name, labels)` returns handles onto the same
/// cell. A disabled registry ([`MetricsRegistry::disabled`]) interns
/// nothing and hands out no-op instruments.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Escapes one label *value* per the Prometheus text exposition format:
/// backslash first (so later escapes aren't double-escaped), then
/// double-quote, then newline — the three characters the spec requires
/// escaping inside a quoted label value. Adversarial sensor names (a
/// subscriber named `a"b\n{}`) would otherwise break line-oriented
/// scrapers or inject fake series.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    pairs.sort();
    pairs.join(",")
}

fn instrument_id(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{labels}}}")
    }
}

fn check_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "metric names must be non-empty [a-zA-Z0-9_:]+, got {name:?}"
    );
}

impl MetricsRegistry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner {
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
            })),
        }
    }

    /// Creates a registry whose instruments are all no-ops — the "no-op
    /// recorder" the ingest bench compares against.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// The process-wide default registry. Components that are not handed an
    /// explicit registry record here.
    pub fn global() -> MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new).clone()
    }

    /// `false` for no-op registries.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Counter handle for `(name, labels)` (created on first use).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        check_name(name);
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let key = (name.to_owned(), render_labels(labels));
        let cell = Arc::clone(
            inner
                .counters
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        );
        Counter { cell: Some(cell) }
    }

    /// Gauge handle for `(name, labels)` (created on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        check_name(name);
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let key = (name.to_owned(), render_labels(labels));
        let cell = Arc::clone(
            inner
                .gauges
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        );
        Gauge { cell: Some(cell) }
    }

    /// Histogram handle for `(name, labels)` (created on first use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        check_name(name);
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let key = (name.to_owned(), render_labels(labels));
        let cell = Arc::clone(
            inner
                .histograms
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(HistogramCell::new())),
        );
        Histogram { cell: Some(cell) }
    }

    /// Number of registered instruments.
    pub fn instrument_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| {
            i.counters.read().len() + i.gauges.read().len() + i.histograms.read().len()
        })
    }

    /// Point-in-time snapshot of every instrument, deterministically
    /// ordered by instrument identity.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .read()
            .iter()
            .map(|((name, labels), cell)| CounterSnapshot {
                id: instrument_id(name, labels),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = inner
            .gauges
            .read()
            .iter()
            .map(|((name, labels), cell)| GaugeSnapshot {
                id: instrument_id(name, labels),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect();
        let histograms = inner
            .histograms
            .read()
            .iter()
            .map(|((name, labels), cell)| {
                let h = Histogram {
                    cell: Some(Arc::clone(cell)),
                };
                HistogramSnapshot {
                    id: instrument_id(name, labels),
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                    p50: h.percentile(0.50).unwrap_or(0),
                    p95: h.percentile(0.95).unwrap_or(0),
                    p99: h.percentile(0.99).unwrap_or(0),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Prometheus-style text exposition of every instrument.
    ///
    /// Counters and gauges render as single samples; histograms render as
    /// `_count`/`_sum`/`_max` samples plus `quantile`-labeled summary rows.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let snap = self.snapshot();
        let mut out = String::new();
        for c in &snap.counters {
            let _ = writeln!(out, "{} {}", c.id, c.value);
        }
        for g in &snap.gauges {
            let _ = writeln!(out, "{} {}", g.id, g.value);
        }
        let requantile = |id: &str, q: &str| -> String {
            match id.split_once('{') {
                Some((name, rest)) => format!("{name}{{quantile=\"{q}\",{rest}"),
                None => format!("{id}{{quantile=\"{q}\"}}"),
            }
        };
        let resuffix = |id: &str, suffix: &str| -> String {
            match id.split_once('{') {
                Some((name, rest)) => format!("{name}{suffix}{{{rest}"),
                None => format!("{id}{suffix}"),
            }
        };
        for h in &snap.histograms {
            let _ = writeln!(out, "{} {}", resuffix(&h.id, "_count"), h.count);
            let _ = writeln!(out, "{} {}", resuffix(&h.id, "_sum"), h.sum);
            let _ = writeln!(out, "{} {}", resuffix(&h.id, "_max"), h.max);
            let _ = writeln!(out, "{} {}", requantile(&h.id, "0.5"), h.p50);
            let _ = writeln!(out, "{} {}", requantile(&h.id, "0.95"), h.p95);
            let _ = writeln!(out, "{} {}", requantile(&h.id, "0.99"), h.p99);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's upper bound is the next bucket's lower bound, and
        // every value maps into the bucket that brackets it.
        for idx in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_upper(idx), bucket_lower(idx + 1), "idx {idx}");
        }
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            9,
            15,
            16,
            100,
            1_000,
            1_000_000,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v, "v={v} idx={idx}");
            assert!(
                v <= bucket_upper(idx).saturating_sub(1).max(bucket_lower(idx))
                    || bucket_upper(idx) == u64::MAX,
                "v={v} idx={idx}"
            );
        }
        // Small values are exact buckets.
        for v in 0..4u64 {
            assert_eq!(bucket_lower(bucket_index(v)), v);
        }
        // Sub-bucket relative width ≤ 25%.
        for v in [64u64, 1_000, 123_456, 1 << 40] {
            let idx = bucket_index(v);
            let width = bucket_upper(idx) - bucket_lower(idx);
            assert!(
                (width as f64) <= bucket_lower(idx) as f64 / 4.0 + 1.0,
                "v={v}"
            );
        }
    }

    #[test]
    fn histogram_percentiles_are_bucket_accurate() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_ns", &[]);
        for v in 1..=100u64 {
            h.record(v * 10); // 10, 20, ..., 1000
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 1_000);
        assert_eq!(h.sum(), (1..=100u64).map(|v| v * 10).sum::<u64>());
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        // True p50 = 500, p99 = 990; buckets guarantee ≤ 12.5% error.
        assert!((p50 as f64 - 500.0).abs() / 500.0 <= 0.125, "p50={p50}");
        assert!((p99 as f64 - 990.0).abs() / 990.0 <= 0.125, "p99={p99}");
        // Percentiles never exceed the exact max.
        assert!(h.percentile(1.0).unwrap() <= 1_000);
        // Single-value histograms report that value exactly at small sizes.
        let h2 = reg.histogram("one_ns", &[]);
        h2.record(3);
        assert_eq!(h2.percentile(0.5), Some(3));
    }

    #[test]
    fn percentiles_are_deterministic_across_identical_runs() {
        let record = || {
            let reg = MetricsRegistry::new();
            let h = reg.histogram("x_ns", &[]);
            for v in [9u64, 100, 17, 40_000, 3, 900, 900, 123_456_789] {
                h.record(v);
            }
            let s = reg.snapshot();
            s.histogram("x_ns").unwrap().clone()
        };
        assert_eq!(record(), record());
    }

    #[test]
    fn labels_distinguish_instruments_and_are_order_insensitive() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("delivered_total", &[("subscriber", "alerts")]);
        let b = reg.counter("delivered_total", &[("subscriber", "dash")]);
        let a2 = reg.counter("delivered_total", &[("subscriber", "alerts")]);
        a.inc();
        a.inc();
        b.inc();
        a2.inc();
        assert_eq!(a.get(), 3, "same (name, labels) shares one cell");
        assert_eq!(b.get(), 1);
        // Label order does not create a new instrument.
        let c1 = reg.counter("x_total", &[("a", "1"), ("b", "2")]);
        let c2 = reg.counter("x_total", &[("b", "2"), ("a", "1")]);
        c1.inc();
        assert_eq!(c2.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("delivered_total{subscriber=\"alerts\"}"),
            Some(3)
        );
        assert_eq!(
            snap.counter("delivered_total{subscriber=\"dash\"}"),
            Some(1)
        );
        assert_eq!(snap.counter("x_total{a=\"1\",b=\"2\"}"), Some(1));
    }

    #[test]
    #[should_panic(expected = "metric names")]
    fn bad_metric_names_are_rejected() {
        MetricsRegistry::new().counter("bad name", &[]);
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("c_total", &[]);
        let g = reg.gauge("g", &[]);
        let h = reg.histogram("h_ns", &[]);
        c.add(5);
        g.set(1.5);
        h.record(100);
        let t = h.start_timer();
        h.observe_timer(t);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(reg.instrument_count(), 0);
        assert!(reg.snapshot().counters.is_empty());
        assert!(reg.render_prometheus().is_empty());
    }

    #[test]
    fn gauge_holds_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("water_temp_c", &[("loop", "primary")]);
        g.set(17.25);
        g.set(18.5);
        assert_eq!(g.get(), 18.5);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.gauges[0].value, 18.5);
    }

    #[test]
    fn timer_records_elapsed_time() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("sleep_ns", &[]);
        let t = h.start_timer();
        std::thread::sleep(std::time::Duration::from_millis(2));
        h.observe_timer(t);
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000_000, "slept ≥ 1ms, got {} ns", h.max());
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let reg = MetricsRegistry::new();
        reg.counter("pub_total", &[]).add(7);
        reg.counter("shed_total", &[("subscriber", "x")]).add(2);
        reg.histogram("lat_ns", &[("shard", "0")]).record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("pub_total 7\n"), "{text}");
        assert!(text.contains("shed_total{subscriber=\"x\"} 2\n"), "{text}");
        assert!(text.contains("lat_ns_count{shard=\"0\"} 1\n"), "{text}");
        assert!(
            text.contains("lat_ns{quantile=\"0.5\",shard=\"0\"}"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_label_values_escape_adversarial_sensor_names() {
        // Exposition-format spec: label values must escape backslash,
        // double-quote and newline. An adversarial sensor/subscriber name
        // containing all three must render as one parseable line.
        let reg = MetricsRegistry::new();
        let hostile = "a\"b\\c\nd";
        reg.counter("bus_shed_total", &[("subscriber", hostile)])
            .add(1);
        let text = reg.render_prometheus();
        assert!(
            text.contains("bus_shed_total{subscriber=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{text}"
        );
        // No raw newline may survive inside any rendered line: every line
        // must be `name{labels} value` with exactly two unescaped quotes.
        for line in text.lines() {
            let unescaped = line.matches('"').count() - line.matches("\\\"").count();
            assert_eq!(unescaped, 2, "unbalanced quotes in {line:?}");
        }
    }

    #[test]
    fn snapshot_count_values_cover_counters_and_histogram_counts() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[]).add(3);
        reg.histogram("b_ns", &[]).record(10);
        let cv = reg.snapshot().count_values();
        assert!(cv.contains(&("a_total".to_owned(), 3)));
        assert!(cv.contains(&("b_ns_count".to_owned(), 1)));
    }

    #[test]
    fn global_registry_is_shared() {
        let a = MetricsRegistry::global();
        let b = MetricsRegistry::global();
        let c = a.counter("global_smoke_total", &[]);
        let before = c.get();
        b.counter("global_smoke_total", &[]).inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    // Thread-stress (8 x 1000 increments): prohibitively slow under Miri's
    // interpreter; the nightly TSan lane exercises these interleavings.
    #[cfg_attr(miri, ignore)]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("threads_total", &[]);
                let h = reg.histogram("work_ns", &[]);
                for i in 0..1_000u64 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("threads_total", &[]).get(), 8_000);
        assert_eq!(reg.histogram("work_ns", &[]).count(), 8_000);
    }
}
