//! The telemetry ingest bus.
//!
//! Producers (the simulator's telemetry taps, or any collector) publish
//! [`ReadingBatch`]es; consumers subscribe with a [`SensorPattern`] plus a
//! resolved list of sensor ids and receive matching batches over a bounded
//! crossbeam channel. The bus also (optionally) writes every published batch
//! straight into a [`TimeSeriesStore`], which is how the archive stays
//! current without every consumer re-implementing persistence.
//!
//! Delivery semantics are *at-most-once per subscriber with back-pressure
//! shedding*: if a subscriber's channel is full the batch is dropped for that
//! subscriber and a drop counter is incremented. Monitoring pipelines prefer
//! losing samples over stalling the collection path — a slow analysis job
//! must never be able to freeze ingest.

use crate::pattern::SensorPattern;
use crate::reading::ReadingBatch;
use crate::sensor::{SensorId, SensorRegistry};
use crate::store::TimeSeriesStore;
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Subscriber {
    id: u64,
    sensors: HashSet<SensorId>,
    pattern: SensorPattern,
    tx: Sender<ReadingBatch>,
    dropped: Arc<AtomicU64>,
}

/// Receiving side of a bus subscription.
pub struct Subscription {
    id: u64,
    /// Channel on which matching batches arrive.
    pub rx: Receiver<ReadingBatch>,
    dropped: Arc<AtomicU64>,
}

impl Subscription {
    /// Number of batches dropped for this subscriber because its channel was
    /// full when the bus tried to deliver.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Opaque subscription id, used to unsubscribe.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Fan-out pub/sub bus for telemetry, optionally archiving into a store.
pub struct TelemetryBus {
    registry: SensorRegistry,
    store: Option<Arc<TimeSeriesStore>>,
    subscribers: RwLock<Vec<Subscriber>>,
    next_id: Mutex<u64>,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

impl TelemetryBus {
    /// Creates a bus that only fans out to subscribers (no archiving).
    pub fn new(registry: SensorRegistry) -> Self {
        TelemetryBus {
            registry,
            store: None,
            subscribers: RwLock::new(Vec::new()),
            next_id: Mutex::new(0),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates a bus that also archives every published batch into `store`.
    pub fn with_store(registry: SensorRegistry, store: Arc<TimeSeriesStore>) -> Self {
        TelemetryBus {
            store: Some(store),
            ..Self::new(registry)
        }
    }

    /// The registry this bus resolves patterns against.
    pub fn registry(&self) -> &SensorRegistry {
        &self.registry
    }

    /// The attached archive store, if any.
    pub fn store(&self) -> Option<&Arc<TimeSeriesStore>> {
        self.store.as_ref()
    }

    /// Total batches published since creation.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Total successful subscriber deliveries since creation.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Total deliveries shed across all subscribers (full or disconnected
    /// channels) since creation. Monotonically non-decreasing.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Subscribes to all sensors matching `pattern`, with a bounded buffer of
    /// `buffer` batches.
    ///
    /// The pattern is resolved against the registry *at subscription time and
    /// on every publish of a not-yet-seen sensor*: sensors registered after
    /// the subscription that match the pattern are picked up automatically.
    pub fn subscribe(&self, pattern: SensorPattern, buffer: usize) -> Subscription {
        let (tx, rx) = bounded(buffer.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        let id = {
            let mut next = self.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        let sensors = self.registry.matching(&pattern).into_iter().collect();
        self.subscribers.write().push(Subscriber {
            id,
            sensors,
            pattern,
            tx,
            dropped: Arc::clone(&dropped),
        });
        Subscription { id, rx, dropped }
    }

    /// Removes a subscription. Idempotent.
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers.write().retain(|s| s.id != id);
    }

    /// Publishes a batch: archives it (if a store is attached) and delivers
    /// it to every matching subscriber. Returns the number of subscribers it
    /// was delivered to.
    pub fn publish(&self, batch: ReadingBatch) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            store.insert_batch(batch.sensor, &batch.readings);
        }
        // Fast path: read lock, check membership; lazily re-resolve the
        // pattern for sensors the subscriber has not seen yet.
        let mut delivered = 0;
        let mut need_resolve = false;
        {
            let subs = self.subscribers.read();
            for sub in subs.iter() {
                if sub.sensors.contains(&batch.sensor) {
                    delivered += self.deliver(sub, &batch);
                } else {
                    need_resolve = true;
                }
            }
        }
        if need_resolve {
            if let Some(name) = self.registry.name(batch.sensor) {
                let mut subs = self.subscribers.write();
                for sub in subs.iter_mut() {
                    if !sub.sensors.contains(&batch.sensor) && sub.pattern.matches(&name) {
                        sub.sensors.insert(batch.sensor);
                        delivered += self.deliver(sub, &batch);
                    }
                }
            }
        }
        delivered
    }

    fn deliver(&self, sub: &Subscriber, batch: &ReadingBatch) -> usize {
        match sub.tx.try_send(batch.clone()) {
            Ok(()) => {
                self.delivered.fetch_add(1, Ordering::Relaxed);
                1
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                sub.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::{Reading, Timestamp};
    use crate::sensor::{SensorKind, Unit};

    fn setup() -> (SensorRegistry, TelemetryBus, SensorId, SensorId) {
        let reg = SensorRegistry::new();
        let a = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let b = reg.register("/facility/pdu0/power", SensorKind::Power, Unit::Kilowatts);
        let bus = TelemetryBus::new(reg.clone());
        (reg, bus, a, b)
    }

    fn batch(s: SensorId, v: f64) -> ReadingBatch {
        ReadingBatch::single(s, Reading::new(Timestamp::ZERO, v))
    }

    #[test]
    fn subscribers_receive_matching_batches_only() {
        let (_reg, bus, a, b) = setup();
        let sub = bus.subscribe(SensorPattern::new("/hw/**"), 8);
        assert_eq!(bus.publish(batch(a, 1.0)), 1);
        assert_eq!(bus.publish(batch(b, 2.0)), 0);
        let got = sub.rx.try_recv().unwrap();
        assert_eq!(got.sensor, a);
        assert!(sub.rx.try_recv().is_err());
    }

    #[test]
    fn late_registered_sensors_are_picked_up() {
        let (reg, bus, _a, _b) = setup();
        let sub = bus.subscribe(SensorPattern::new("/hw/**"), 8);
        let c = reg.register("/hw/node1/temp", SensorKind::Temperature, Unit::Celsius);
        assert_eq!(bus.publish(batch(c, 55.0)), 1);
        assert_eq!(sub.rx.try_recv().unwrap().sensor, c);
    }

    #[test]
    fn full_subscriber_sheds_and_counts_drops() {
        let (_reg, bus, a, _b) = setup();
        let sub = bus.subscribe(SensorPattern::new("/hw/**"), 2);
        for _ in 0..5 {
            bus.publish(batch(a, 1.0));
        }
        assert_eq!(sub.dropped(), 3);
        assert_eq!(sub.rx.len(), 2);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let (_reg, bus, a, _b) = setup();
        let sub = bus.subscribe(SensorPattern::new("/**"), 8);
        bus.publish(batch(a, 1.0));
        bus.unsubscribe(sub.id());
        bus.publish(batch(a, 2.0));
        assert_eq!(sub.rx.len(), 1);
    }

    #[test]
    fn store_attached_bus_archives_everything() {
        let reg = SensorRegistry::new();
        let a = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let store = Arc::new(TimeSeriesStore::with_capacity(16));
        let bus = TelemetryBus::with_store(reg, Arc::clone(&store));
        bus.publish(ReadingBatch {
            sensor: a,
            readings: vec![
                Reading::new(Timestamp::from_millis(0), 100.0),
                Reading::new(Timestamp::from_millis(10), 110.0),
            ],
        });
        assert_eq!(store.series_len(a), 2);
        assert_eq!(bus.published(), 1);
    }

    #[test]
    fn bus_totals_track_delivery_and_shedding() {
        let (_reg, bus, a, _b) = setup();
        let sub = bus.subscribe(SensorPattern::new("/hw/**"), 2);
        for _ in 0..5 {
            bus.publish(batch(a, 1.0));
        }
        assert_eq!(bus.published(), 5);
        assert_eq!(bus.delivered_total(), 2);
        assert_eq!(bus.dropped_total(), 3);
        assert_eq!(sub.dropped(), 3);
        // Draining and publishing again resumes delivery; totals only grow.
        while sub.rx.try_recv().is_ok() {}
        bus.publish(batch(a, 2.0));
        assert_eq!(bus.delivered_total(), 3);
        assert_eq!(bus.dropped_total(), 3);
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let (_reg, bus, a, _b) = setup();
        let s1 = bus.subscribe(SensorPattern::new("/hw/**"), 4);
        let s2 = bus.subscribe(SensorPattern::new("/hw/node0/*"), 4);
        let s3 = bus.subscribe(SensorPattern::new("/facility/**"), 4);
        assert_eq!(bus.publish(batch(a, 1.0)), 2);
        assert_eq!(s1.rx.len(), 1);
        assert_eq!(s2.rx.len(), 1);
        assert_eq!(s3.rx.len(), 0);
    }
}
