//! The telemetry ingest bus.
//!
//! Producers (the simulator's telemetry taps, or any collector) publish
//! [`ReadingBatch`]es; consumers subscribe with a [`SensorPattern`] plus a
//! resolved list of sensor ids and receive matching batches over a bounded
//! crossbeam channel. The bus also (optionally) writes every published batch
//! straight into a [`TimeSeriesStore`], which is how the archive stays
//! current without every consumer re-implementing persistence.
//!
//! Delivery semantics are *at-most-once per subscriber with back-pressure
//! shedding*: if a subscriber's channel is full the batch is dropped for that
//! subscriber and a drop counter is incremented. Monitoring pipelines prefer
//! losing samples over stalling the collection path — a slow analysis job
//! must never be able to freeze ingest.
//!
//! Subscriptions are created with the fluent [`SubscriptionBuilder`]:
//!
//! ```
//! use oda_telemetry::prelude::*;
//! let registry = SensorRegistry::new();
//! let bus = TelemetryBus::new(registry);
//! let sub = bus.subscription("/hw/**").capacity(256).named("alert-engine").subscribe();
//! assert_eq!(sub.name(), "alert-engine");
//! ```
//!
//! The name doubles as the `subscriber` label on the bus's per-subscriber
//! `bus_delivered_total` / `bus_shed_total` metrics, so a dashboard can tell
//! *which* consumer is shedding. Dropping a [`Subscription`] unsubscribes it
//! from the bus automatically; as a second line of defense, `publish` reaps
//! any subscriber whose receiver is gone (disconnected channels are removed
//! and counted as `bus_reaped_total`, never as sheds).

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::pattern::SensorPattern;
use crate::reading::ReadingBatch;
use crate::sensor::{SensorId, SensorRegistry};
use crate::storage::{InMemoryBackend, StorageBackend};
use crate::store::TimeSeriesStore;
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

struct Subscriber {
    id: u64,
    sensors: BTreeSet<SensorId>,
    pattern: SensorPattern,
    tx: Sender<ReadingBatch>,
    dropped: Arc<AtomicU64>,
    m_delivered: Counter,
    m_shed: Counter,
}

/// Removes the subscriber entry when the owning [`Subscription`] is dropped.
struct UnsubscribeGuard {
    id: u64,
    subscribers: Weak<RwLock<Vec<Subscriber>>>,
}

impl Drop for UnsubscribeGuard {
    fn drop(&mut self) {
        if let Some(subs) = self.subscribers.upgrade() {
            subs.write().retain(|s| s.id != self.id);
        }
    }
}

/// Receiving side of a bus subscription.
///
/// Dropping the subscription removes its entry from the bus, so a departed
/// consumer stops inflating shed counts immediately.
pub struct Subscription {
    id: u64,
    name: String,
    /// Channel on which matching batches arrive.
    pub rx: Receiver<ReadingBatch>,
    dropped: Arc<AtomicU64>,
    #[allow(dead_code)] // held only for its Drop impl
    guard: UnsubscribeGuard,
}

impl Subscription {
    /// Number of batches dropped for this subscriber because its channel was
    /// full when the bus tried to deliver.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Opaque subscription id, used to unsubscribe.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The subscriber name used as the `subscriber` metric label
    /// (defaults to `sub-<id>` unless set via [`SubscriptionBuilder::named`]).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Fluent builder returned by [`TelemetryBus::subscription`].
#[must_use = "call .subscribe() to register the subscription"]
pub struct SubscriptionBuilder<'a> {
    bus: &'a TelemetryBus,
    pattern: SensorPattern,
    capacity: usize,
    name: Option<String>,
}

impl SubscriptionBuilder<'_> {
    /// Default channel capacity when [`Self::capacity`] is not called.
    pub const DEFAULT_CAPACITY: usize = 1_024;

    /// Sets the bounded channel capacity in batches (default
    /// [`Self::DEFAULT_CAPACITY`]; clamped to at least 1). When the channel
    /// is full, further deliveries to this subscriber are shed.
    pub fn capacity(mut self, batches: usize) -> Self {
        self.capacity = batches.max(1);
        self
    }

    /// Names the subscriber; the name becomes the `subscriber` label on its
    /// `bus_delivered_total` / `bus_shed_total` counters.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Registers the subscription on the bus.
    ///
    /// The pattern is resolved against the registry *at subscription time and
    /// on every publish of a not-yet-seen sensor*: sensors registered after
    /// the subscription that match the pattern are picked up automatically.
    pub fn subscribe(self) -> Subscription {
        let (tx, rx) = bounded(self.capacity);
        let dropped = Arc::new(AtomicU64::new(0));
        let id = {
            let mut next = self.bus.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        let name = self.name.unwrap_or_else(|| format!("sub-{id}"));
        let sensors = self
            .bus
            .registry
            .matching(&self.pattern)
            .into_iter()
            .collect();
        let labels: &[(&str, &str)] = &[("subscriber", name.as_str())];
        self.bus.subscribers.write().push(Subscriber {
            id,
            sensors,
            pattern: self.pattern,
            tx,
            dropped: Arc::clone(&dropped),
            m_delivered: self.bus.metrics.counter("bus_delivered_total", labels),
            m_shed: self.bus.metrics.counter("bus_shed_total", labels),
        });
        Subscription {
            id,
            name,
            rx,
            dropped,
            guard: UnsubscribeGuard {
                id,
                subscribers: Arc::downgrade(&self.bus.subscribers),
            },
        }
    }
}

// Compile-time audit: the bus is published to from the simulator and read
// by runtime workers concurrently; it must stay fully thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TelemetryBus>();
    assert_send_sync::<crate::sensor::SensorRegistry>();
    assert_send_sync::<crate::metrics::MetricsRegistry>();
};

/// Fan-out pub/sub bus for telemetry, optionally archiving into a store.
pub struct TelemetryBus {
    registry: SensorRegistry,
    archive: Option<Arc<dyn StorageBackend>>,
    subscribers: Arc<RwLock<Vec<Subscriber>>>,
    next_id: Mutex<u64>,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    reaped: AtomicU64,
    metrics: MetricsRegistry,
    m_publish_total: Counter,
    m_readings_total: Counter,
    m_reaped_total: Counter,
    m_publish_ns: Histogram,
    /// Publishes that found the subscriber table lock already held
    /// (concurrent publishers, or a publish racing a subscribe). Varies
    /// run to run — scheduling telemetry, not part of replay determinism.
    m_contention: Counter,
}

impl TelemetryBus {
    /// Creates a bus that only fans out to subscribers (no archiving).
    /// Records into the process-wide [`MetricsRegistry::global`].
    pub fn new(registry: SensorRegistry) -> Self {
        Self::with_parts(registry, None, MetricsRegistry::global())
    }

    /// Creates a bus that also archives every published batch into `store`.
    pub fn with_store(registry: SensorRegistry, store: Arc<TimeSeriesStore>) -> Self {
        Self::with_parts(registry, Some(store), MetricsRegistry::global())
    }

    /// Creates a bus that archives through an explicit [`StorageBackend`]
    /// (in-memory, persistent, or hybrid).
    pub fn with_archive(
        registry: SensorRegistry,
        archive: Arc<dyn StorageBackend>,
        metrics: MetricsRegistry,
    ) -> Self {
        Self::build(registry, Some(archive), metrics)
    }

    /// Creates a bus with an explicit store (optional) and metrics registry —
    /// pass [`MetricsRegistry::disabled`] for a zero-overhead bus. The store
    /// is wrapped in an [`InMemoryBackend`]; use
    /// [`with_archive`](Self::with_archive) for durable backends.
    pub fn with_parts(
        registry: SensorRegistry,
        store: Option<Arc<TimeSeriesStore>>,
        metrics: MetricsRegistry,
    ) -> Self {
        let archive = store.map(|s| Arc::new(InMemoryBackend::new(s)) as Arc<dyn StorageBackend>);
        Self::build(registry, archive, metrics)
    }

    fn build(
        registry: SensorRegistry,
        archive: Option<Arc<dyn StorageBackend>>,
        metrics: MetricsRegistry,
    ) -> Self {
        TelemetryBus {
            registry,
            archive,
            subscribers: Arc::new(RwLock::new(Vec::new())),
            next_id: Mutex::new(0),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            m_publish_total: metrics.counter("bus_publish_total", &[]),
            m_readings_total: metrics.counter("bus_readings_total", &[]),
            m_reaped_total: metrics.counter("bus_reaped_total", &[]),
            m_publish_ns: metrics.histogram("bus_publish_ns", &[]),
            m_contention: metrics.counter("bus_publish_contention_total", &[]),
            metrics,
        }
    }

    /// The registry this bus resolves patterns against.
    pub fn registry(&self) -> &SensorRegistry {
        &self.registry
    }

    /// The hot store of the attached archive, if any.
    pub fn store(&self) -> Option<&Arc<TimeSeriesStore>> {
        self.archive.as_ref().map(|a| a.store())
    }

    /// The attached archive backend, if any.
    pub fn archive(&self) -> Option<&Arc<dyn StorageBackend>> {
        self.archive.as_ref()
    }

    /// The metrics registry this bus's instruments record into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Total batches published since creation.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Total successful subscriber deliveries since creation.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Total deliveries shed across all subscribers because their channel
    /// was full. Monotonically non-decreasing. Disconnected receivers are
    /// *reaped*, not shed — see [`Self::reaped_total`].
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total subscribers removed because their receiver was found
    /// disconnected during a publish.
    pub fn reaped_total(&self) -> u64 {
        self.reaped.load(Ordering::Relaxed)
    }

    /// Number of currently registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().len()
    }

    /// Starts building a subscription to all sensors matching `pattern`
    /// (a [`SensorPattern`] or a pattern string like `"/hw/**"`).
    ///
    /// Defaults: capacity [`SubscriptionBuilder::DEFAULT_CAPACITY`] batches,
    /// name `sub-<id>`. Finish with [`SubscriptionBuilder::subscribe`].
    pub fn subscription(&self, pattern: impl Into<SensorPattern>) -> SubscriptionBuilder<'_> {
        SubscriptionBuilder {
            bus: self,
            pattern: pattern.into(),
            capacity: SubscriptionBuilder::DEFAULT_CAPACITY,
            name: None,
        }
    }

    /// Removes a subscription by id. Idempotent. (Dropping the
    /// [`Subscription`] does this automatically.)
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers.write().retain(|s| s.id != id);
    }

    /// Publishes a batch: archives it (if a store is attached) and delivers
    /// it to every matching subscriber. Returns the number of subscribers it
    /// was delivered to.
    ///
    /// Subscribers whose receiving side has been dropped are removed during
    /// the publish (reaped) rather than counted as sheds.
    pub fn publish(&self, batch: ReadingBatch) -> usize {
        let timer = self.m_publish_ns.start_timer();
        self.published.fetch_add(1, Ordering::Relaxed);
        self.m_publish_total.inc();
        self.m_readings_total.add(batch.readings.len() as u64);
        if let Some(archive) = &self.archive {
            archive.insert_batch(batch.sensor, &batch.readings);
        }
        // Fast path: read lock, check membership; lazily re-resolve the
        // pattern for sensors the subscriber has not seen yet.
        let mut delivered = 0;
        let mut need_resolve = false;
        let mut dead: Vec<u64> = Vec::new();
        {
            let subs = match self.subscribers.try_read() {
                Some(guard) => guard,
                None => {
                    self.m_contention.inc();
                    self.subscribers.read()
                }
            };
            for sub in subs.iter() {
                if sub.sensors.contains(&batch.sensor) {
                    delivered += self.deliver(sub, &batch, &mut dead);
                } else {
                    need_resolve = true;
                }
            }
        }
        if need_resolve {
            if let Some(name) = self.registry.name(batch.sensor) {
                let mut subs = self.subscribers.write();
                for sub in subs.iter_mut() {
                    if !sub.sensors.contains(&batch.sensor) && sub.pattern.matches(&name) {
                        sub.sensors.insert(batch.sensor);
                        delivered += self.deliver(sub, &batch, &mut dead);
                    }
                }
            }
        }
        if !dead.is_empty() {
            let mut subs = self.subscribers.write();
            let before = subs.len();
            subs.retain(|s| !dead.contains(&s.id));
            let reaped = (before - subs.len()) as u64;
            self.reaped.fetch_add(reaped, Ordering::Relaxed);
            self.m_reaped_total.add(reaped);
        }
        self.m_publish_ns.observe_timer(timer);
        delivered
    }

    fn deliver(&self, sub: &Subscriber, batch: &ReadingBatch, dead: &mut Vec<u64>) -> usize {
        match sub.tx.try_send(batch.clone()) {
            Ok(()) => {
                self.delivered.fetch_add(1, Ordering::Relaxed);
                sub.m_delivered.inc();
                1
            }
            Err(TrySendError::Full(_)) => {
                sub.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                sub.m_shed.inc();
                0
            }
            Err(TrySendError::Disconnected(_)) => {
                // Receiver is gone: schedule the subscriber for reaping and
                // do not count this as a shed — nobody wanted the batch.
                dead.push(sub.id);
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::{Reading, Timestamp};
    use crate::sensor::{SensorKind, Unit};

    fn setup() -> (SensorRegistry, TelemetryBus, SensorId, SensorId) {
        let reg = SensorRegistry::new();
        let a = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let b = reg.register("/facility/pdu0/power", SensorKind::Power, Unit::Kilowatts);
        let bus = TelemetryBus::new(reg.clone());
        (reg, bus, a, b)
    }

    fn metered_setup() -> (MetricsRegistry, TelemetryBus, SensorId) {
        let reg = SensorRegistry::new();
        let a = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let metrics = MetricsRegistry::new();
        let bus = TelemetryBus::with_parts(reg, None, metrics.clone());
        (metrics, bus, a)
    }

    fn batch(s: SensorId, v: f64) -> ReadingBatch {
        ReadingBatch::single(s, Reading::new(Timestamp::ZERO, v))
    }

    #[test]
    fn subscribers_receive_matching_batches_only() {
        let (_reg, bus, a, b) = setup();
        let sub = bus.subscription("/hw/**").capacity(8).subscribe();
        assert_eq!(bus.publish(batch(a, 1.0)), 1);
        assert_eq!(bus.publish(batch(b, 2.0)), 0);
        let got = sub.rx.try_recv().unwrap();
        assert_eq!(got.sensor, a);
        assert!(sub.rx.try_recv().is_err());
    }

    #[test]
    fn late_registered_sensors_are_picked_up() {
        let (reg, bus, _a, _b) = setup();
        let sub = bus.subscription("/hw/**").capacity(8).subscribe();
        let c = reg.register("/hw/node1/temp", SensorKind::Temperature, Unit::Celsius);
        assert_eq!(bus.publish(batch(c, 55.0)), 1);
        assert_eq!(sub.rx.try_recv().unwrap().sensor, c);
    }

    #[test]
    fn full_subscriber_sheds_and_counts_drops() {
        let (_reg, bus, a, _b) = setup();
        let sub = bus.subscription("/hw/**").capacity(2).subscribe();
        for _ in 0..5 {
            bus.publish(batch(a, 1.0));
        }
        assert_eq!(sub.dropped(), 3);
        assert_eq!(sub.rx.len(), 2);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let (_reg, bus, a, _b) = setup();
        let sub = bus.subscription("/**").capacity(8).subscribe();
        bus.publish(batch(a, 1.0));
        bus.unsubscribe(sub.id());
        bus.publish(batch(a, 2.0));
        assert_eq!(sub.rx.len(), 1);
    }

    #[test]
    fn store_attached_bus_archives_everything() {
        let reg = SensorRegistry::new();
        let a = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let store = Arc::new(TimeSeriesStore::with_capacity(16));
        let bus = TelemetryBus::with_store(reg, Arc::clone(&store));
        bus.publish(ReadingBatch {
            sensor: a,
            readings: vec![
                Reading::new(Timestamp::from_millis(0), 100.0),
                Reading::new(Timestamp::from_millis(10), 110.0),
            ],
        });
        assert_eq!(store.series_len(a), 2);
        assert_eq!(bus.published(), 1);
    }

    #[test]
    fn bus_totals_track_delivery_and_shedding() {
        let (_reg, bus, a, _b) = setup();
        let sub = bus.subscription("/hw/**").capacity(2).subscribe();
        for _ in 0..5 {
            bus.publish(batch(a, 1.0));
        }
        assert_eq!(bus.published(), 5);
        assert_eq!(bus.delivered_total(), 2);
        assert_eq!(bus.dropped_total(), 3);
        assert_eq!(sub.dropped(), 3);
        // Draining and publishing again resumes delivery; totals only grow.
        while sub.rx.try_recv().is_ok() {}
        bus.publish(batch(a, 2.0));
        assert_eq!(bus.delivered_total(), 3);
        assert_eq!(bus.dropped_total(), 3);
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let (_reg, bus, a, _b) = setup();
        let s1 = bus.subscription("/hw/**").capacity(4).subscribe();
        let s2 = bus.subscription("/hw/node0/*").capacity(4).subscribe();
        let s3 = bus.subscription("/facility/**").capacity(4).subscribe();
        assert_eq!(bus.publish(batch(a, 1.0)), 2);
        assert_eq!(s1.rx.len(), 1);
        assert_eq!(s2.rx.len(), 1);
        assert_eq!(s3.rx.len(), 0);
    }

    #[test]
    fn dropping_subscription_auto_unsubscribes() {
        // Regression: a dropped Subscription used to leave its Subscriber
        // entry behind, so every later publish shed into the dead channel
        // and drop counts grew forever.
        let (_reg, bus, a, _b) = setup();
        {
            let _sub = bus.subscription("/hw/**").capacity(1).subscribe();
            assert_eq!(bus.subscriber_count(), 1);
            bus.publish(batch(a, 1.0));
        } // _sub dropped here
        assert_eq!(bus.subscriber_count(), 0);
        bus.publish(batch(a, 2.0));
        bus.publish(batch(a, 3.0));
        assert_eq!(bus.publish(batch(a, 4.0)), 0);
        assert_eq!(bus.dropped_total(), 0, "no sheds into dead channels");
    }

    #[test]
    fn publish_reaps_disconnected_receivers_without_counting_sheds() {
        let (metrics, bus, a) = metered_setup();
        let sub = bus
            .subscription("/hw/**")
            .capacity(4)
            .named("doomed")
            .subscribe();
        // Simulate a consumer that dropped its receiver while the bus entry
        // survived (e.g. the Subscription was leaked): take the struct apart,
        // drop the receiver, and suppress the Drop-based unsubscribe.
        let Subscription { rx, guard, .. } = sub;
        drop(rx);
        std::mem::forget(guard);
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(bus.publish(batch(a, 1.0)), 0);
        assert_eq!(
            bus.subscriber_count(),
            0,
            "dead subscriber reaped on publish"
        );
        assert_eq!(bus.reaped_total(), 1);
        assert_eq!(bus.dropped_total(), 0, "disconnected is reaped, not shed");
        assert_eq!(metrics.snapshot().counter("bus_reaped_total"), Some(1));
        // Later publishes see no subscribers at all.
        assert_eq!(bus.publish(batch(a, 2.0)), 0);
        assert_eq!(bus.reaped_total(), 1);
    }

    #[test]
    fn named_subscribers_get_labeled_metrics() {
        let (metrics, bus, a) = metered_setup();
        let alerts = bus
            .subscription("/hw/**")
            .capacity(1)
            .named("alerts")
            .subscribe();
        let _dash = bus
            .subscription("/hw/**")
            .capacity(8)
            .named("dash")
            .subscribe();
        for _ in 0..3 {
            bus.publish(batch(a, 1.0));
        }
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("bus_delivered_total{subscriber=\"alerts\"}"),
            Some(1)
        );
        assert_eq!(
            snap.counter("bus_shed_total{subscriber=\"alerts\"}"),
            Some(2)
        );
        assert_eq!(
            snap.counter("bus_delivered_total{subscriber=\"dash\"}"),
            Some(3)
        );
        assert_eq!(snap.counter("bus_publish_total"), Some(3));
        assert_eq!(snap.counter("bus_readings_total"), Some(3));
        assert_eq!(snap.histogram("bus_publish_ns").unwrap().count, 3);
        assert_eq!(alerts.name(), "alerts");
    }

    #[test]
    fn default_subscriber_names_are_unique() {
        let (_reg, bus, _a, _b) = setup();
        let s1 = bus.subscription("/hw/**").subscribe();
        let s2 = bus.subscription("/hw/**").subscribe();
        assert_ne!(s1.name(), s2.name());
        assert!(s1.name().starts_with("sub-"));
    }
}
