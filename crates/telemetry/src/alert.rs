//! Threshold alerting.
//!
//! The paper places "automated alerts upon exceeding human-defined thresholds
//! of monitored sensors" inside *descriptive* analytics: no knowledge
//! extraction, just visibility. The alert engine evaluates level conditions
//! against incoming readings with hysteresis (an alert fires once when a
//! sensor enters the bad region and clears once when it leaves), so flapping
//! sensors do not spam operators.

use crate::reading::Reading;
use crate::sensor::SensorId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Operator severity of an alert rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Informational — shown on dashboards.
    Info,
    /// Needs operator attention soon.
    Warning,
    /// Needs immediate operator attention.
    Critical,
}

/// Level condition on a sensor value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Fires while `value > threshold`.
    Above(f64),
    /// Fires while `value < threshold`.
    Below(f64),
    /// Fires while `value` is outside `[lo, hi]`.
    Outside {
        /// Lower acceptable bound.
        lo: f64,
        /// Upper acceptable bound.
        hi: f64,
    },
}

impl Condition {
    /// Whether `value` violates the condition.
    pub fn violated_by(&self, value: f64) -> bool {
        match *self {
            Condition::Above(t) => value > t,
            Condition::Below(t) => value < t,
            Condition::Outside { lo, hi } => value < lo || value > hi,
        }
    }
}

/// A configured alert rule on one sensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlertRule {
    /// Sensor the rule watches.
    pub sensor: SensorId,
    /// The level condition.
    pub condition: Condition,
    /// Severity attached to fired events.
    pub severity: AlertSeverity,
    /// Human-readable rule name shown in events.
    pub name: String,
    /// Number of consecutive violating readings required before firing
    /// (debounce). `1` fires immediately.
    pub debounce: u32,
    /// Number of consecutive *non-violating* readings required before an
    /// active alert clears (clear-side hysteresis). `1` clears immediately.
    /// Raising this stops a sensor flapping around the threshold from
    /// emitting a raise/clear pair per oscillation.
    pub clear_debounce: u32,
    /// Minimum time after a clear before the rule may fire again,
    /// milliseconds. `0` disables the cooldown.
    pub cooldown_ms: u64,
}

impl AlertRule {
    /// Convenience constructor with `debounce = 1`.
    pub fn new(
        name: impl Into<String>,
        sensor: SensorId,
        condition: Condition,
        severity: AlertSeverity,
    ) -> Self {
        AlertRule {
            sensor,
            condition,
            severity,
            name: name.into(),
            debounce: 1,
            clear_debounce: 1,
            cooldown_ms: 0,
        }
    }

    /// Builder-style debounce setter.
    pub fn with_debounce(mut self, n: u32) -> Self {
        self.debounce = n.max(1);
        self
    }

    /// Builder-style clear-debounce setter.
    pub fn with_clear_debounce(mut self, n: u32) -> Self {
        self.clear_debounce = n.max(1);
        self
    }

    /// Builder-style re-fire cooldown setter.
    pub fn with_cooldown_ms(mut self, ms: u64) -> Self {
        self.cooldown_ms = ms;
        self
    }
}

/// Raised/cleared alert notification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Name of the rule that produced the event.
    pub rule: String,
    /// Sensor the event concerns.
    pub sensor: SensorId,
    /// Severity copied from the rule.
    pub severity: AlertSeverity,
    /// The reading that triggered the transition.
    pub reading: Reading,
    /// `true` when the alert fires, `false` when it clears.
    pub active: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct RuleState {
    active: bool,
    consecutive_violations: u32,
    consecutive_good: u32,
    last_cleared: Option<crate::reading::Timestamp>,
}

/// Stateful evaluator of a set of alert rules.
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    state: Vec<RuleState>,
    by_sensor: BTreeMap<SensorId, Vec<usize>>,
    fired_total: u64,
}

impl AlertEngine {
    /// Creates an engine over `rules`.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let mut by_sensor: BTreeMap<SensorId, Vec<usize>> = BTreeMap::new();
        for (i, r) in rules.iter().enumerate() {
            by_sensor.entry(r.sensor).or_default().push(i);
        }
        let state = vec![RuleState::default(); rules.len()];
        AlertEngine {
            rules,
            state,
            by_sensor,
            fired_total: 0,
        }
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Total fire events (not clears) since creation.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Rules currently in the active (firing) state.
    pub fn active_rules(&self) -> Vec<&AlertRule> {
        self.rules
            .iter()
            .zip(&self.state)
            .filter_map(|(r, s)| s.active.then_some(r))
            .collect()
    }

    /// Feeds one reading; returns any raise/clear transitions it caused.
    ///
    /// Non-finite readings are ignored outright: a NaN carries no evidence
    /// about the condition, so it neither advances the violation count nor
    /// resets it — corrupted telemetry can never raise or clear an alert.
    pub fn observe(&mut self, sensor: SensorId, reading: Reading) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        if !reading.value.is_finite() {
            return events;
        }
        let Some(rule_idxs) = self.by_sensor.get(&sensor) else {
            return events;
        };
        for &i in rule_idxs {
            let rule = &self.rules[i];
            let st = &mut self.state[i];
            if rule.condition.violated_by(reading.value) {
                st.consecutive_violations = st.consecutive_violations.saturating_add(1);
                st.consecutive_good = 0;
                let cooled_down = match st.last_cleared {
                    Some(cleared) if rule.cooldown_ms > 0 => {
                        reading.ts.millis_since(cleared) >= rule.cooldown_ms
                    }
                    _ => true,
                };
                if !st.active && st.consecutive_violations >= rule.debounce && cooled_down {
                    st.active = true;
                    self.fired_total += 1;
                    events.push(AlertEvent {
                        rule: rule.name.clone(),
                        sensor,
                        severity: rule.severity,
                        reading,
                        active: true,
                    });
                }
            } else {
                st.consecutive_violations = 0;
                st.consecutive_good = st.consecutive_good.saturating_add(1);
                if st.active && st.consecutive_good >= rule.clear_debounce {
                    st.active = false;
                    st.last_cleared = Some(reading.ts);
                    events.push(AlertEvent {
                        rule: rule.name.clone(),
                        sensor,
                        severity: rule.severity,
                        reading,
                        active: false,
                    });
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::Timestamp;

    fn rd(v: f64) -> Reading {
        Reading::new(Timestamp::ZERO, v)
    }

    #[test]
    fn above_fires_once_and_clears_once() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "hot",
            s,
            Condition::Above(80.0),
            AlertSeverity::Critical,
        )]);
        assert!(eng.observe(s, rd(70.0)).is_empty());
        let ev = eng.observe(s, rd(85.0));
        assert_eq!(ev.len(), 1);
        assert!(ev[0].active);
        // Still violating: no duplicate event.
        assert!(eng.observe(s, rd(90.0)).is_empty());
        let ev = eng.observe(s, rd(75.0));
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].active);
        assert_eq!(eng.fired_total(), 1);
    }

    #[test]
    fn debounce_requires_consecutive_violations() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "flappy",
            s,
            Condition::Above(10.0),
            AlertSeverity::Warning,
        )
        .with_debounce(3)]);
        assert!(eng.observe(s, rd(11.0)).is_empty());
        assert!(eng.observe(s, rd(11.0)).is_empty());
        // A good reading resets the count.
        assert!(eng.observe(s, rd(5.0)).is_empty());
        assert!(eng.observe(s, rd(11.0)).is_empty());
        assert!(eng.observe(s, rd(11.0)).is_empty());
        let ev = eng.observe(s, rd(11.0));
        assert_eq!(ev.len(), 1);
        assert!(ev[0].active);
    }

    #[test]
    fn below_and_outside_conditions() {
        assert!(Condition::Below(1.0).violated_by(0.5));
        assert!(!Condition::Below(1.0).violated_by(1.0));
        let c = Condition::Outside { lo: 10.0, hi: 20.0 };
        assert!(c.violated_by(9.9));
        assert!(c.violated_by(20.1));
        assert!(!c.violated_by(15.0));
        assert!(!c.violated_by(10.0));
        assert!(!c.violated_by(20.0));
    }

    #[test]
    fn non_finite_readings_never_raise_or_clear() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "hot",
            s,
            Condition::Above(80.0),
            AlertSeverity::Critical,
        )
        .with_debounce(2)]);
        assert!(eng.observe(s, rd(90.0)).is_empty());
        // NaN between two violations must not reset the debounce counter...
        assert!(eng.observe(s, rd(f64::NAN)).is_empty());
        let ev = eng.observe(s, rd(91.0));
        assert_eq!(ev.len(), 1, "second real violation fires");
        // ...and NaN while active must not clear.
        assert!(eng.observe(s, rd(f64::NAN)).is_empty());
        assert!(eng.observe(s, rd(f64::INFINITY)).is_empty());
        assert_eq!(eng.active_rules().len(), 1);
        assert_eq!(eng.fired_total(), 1);
    }

    #[test]
    fn clear_debounce_suppresses_flapping() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "flap",
            s,
            Condition::Above(10.0),
            AlertSeverity::Warning,
        )
        .with_clear_debounce(3)]);
        assert_eq!(eng.observe(s, rd(11.0)).len(), 1);
        // Oscillation around the threshold: single good readings do not
        // clear, so the re-entering violations do not re-fire either.
        for _ in 0..5 {
            assert!(eng.observe(s, rd(9.0)).is_empty());
            assert!(eng.observe(s, rd(11.0)).is_empty());
        }
        assert_eq!(eng.fired_total(), 1, "one fire despite 5 oscillations");
        // Three consecutive good readings finally clear.
        assert!(eng.observe(s, rd(9.0)).is_empty());
        assert!(eng.observe(s, rd(9.0)).is_empty());
        let ev = eng.observe(s, rd(9.0));
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].active);
    }

    #[test]
    fn cooldown_blocks_immediate_refire() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "cool",
            s,
            Condition::Above(10.0),
            AlertSeverity::Warning,
        )
        .with_cooldown_ms(60_000)]);
        let at = |t_s: u64, v: f64| Reading::new(Timestamp::from_secs(t_s), v);
        assert_eq!(eng.observe(s, at(0, 11.0)).len(), 1);
        assert_eq!(eng.observe(s, at(10, 9.0)).len(), 1); // clears at t=10s
                                                          // Violations inside the cooldown window are swallowed.
        assert!(eng.observe(s, at(20, 11.0)).is_empty());
        assert!(eng.observe(s, at(40, 11.0)).is_empty());
        // Past the cooldown the rule fires again.
        let ev = eng.observe(s, at(71, 11.0));
        assert_eq!(ev.len(), 1);
        assert!(ev[0].active);
        assert_eq!(eng.fired_total(), 2);
    }

    #[test]
    fn unrelated_sensors_are_ignored() {
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "r",
            SensorId(0),
            Condition::Above(0.0),
            AlertSeverity::Info,
        )]);
        assert!(eng.observe(SensorId(1), rd(100.0)).is_empty());
    }

    #[test]
    fn multiple_rules_on_one_sensor() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![
            AlertRule::new("warn", s, Condition::Above(50.0), AlertSeverity::Warning),
            AlertRule::new("crit", s, Condition::Above(80.0), AlertSeverity::Critical),
        ]);
        let ev = eng.observe(s, rd(60.0));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].severity, AlertSeverity::Warning);
        let ev = eng.observe(s, rd(90.0));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].severity, AlertSeverity::Critical);
        assert_eq!(eng.active_rules().len(), 2);
    }
}
