//! Threshold alerting.
//!
//! The paper places "automated alerts upon exceeding human-defined thresholds
//! of monitored sensors" inside *descriptive* analytics: no knowledge
//! extraction, just visibility. The alert engine evaluates level conditions
//! against incoming readings with hysteresis (an alert fires once when a
//! sensor enters the bad region and clears once when it leaves), so flapping
//! sensors do not spam operators.

use crate::reading::Reading;
use crate::sensor::SensorId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Operator severity of an alert rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Informational — shown on dashboards.
    Info,
    /// Needs operator attention soon.
    Warning,
    /// Needs immediate operator attention.
    Critical,
}

/// Level condition on a sensor value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Fires while `value > threshold`.
    Above(f64),
    /// Fires while `value < threshold`.
    Below(f64),
    /// Fires while `value` is outside `[lo, hi]`.
    Outside {
        /// Lower acceptable bound.
        lo: f64,
        /// Upper acceptable bound.
        hi: f64,
    },
}

impl Condition {
    /// Whether `value` violates the condition.
    pub fn violated_by(&self, value: f64) -> bool {
        match *self {
            Condition::Above(t) => value > t,
            Condition::Below(t) => value < t,
            Condition::Outside { lo, hi } => value < lo || value > hi,
        }
    }
}

/// A configured alert rule on one sensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlertRule {
    /// Sensor the rule watches.
    pub sensor: SensorId,
    /// The level condition.
    pub condition: Condition,
    /// Severity attached to fired events.
    pub severity: AlertSeverity,
    /// Human-readable rule name shown in events.
    pub name: String,
    /// Number of consecutive violating readings required before firing
    /// (debounce). `1` fires immediately.
    pub debounce: u32,
}

impl AlertRule {
    /// Convenience constructor with `debounce = 1`.
    pub fn new(
        name: impl Into<String>,
        sensor: SensorId,
        condition: Condition,
        severity: AlertSeverity,
    ) -> Self {
        AlertRule {
            sensor,
            condition,
            severity,
            name: name.into(),
            debounce: 1,
        }
    }

    /// Builder-style debounce setter.
    pub fn with_debounce(mut self, n: u32) -> Self {
        self.debounce = n.max(1);
        self
    }
}

/// Raised/cleared alert notification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Name of the rule that produced the event.
    pub rule: String,
    /// Sensor the event concerns.
    pub sensor: SensorId,
    /// Severity copied from the rule.
    pub severity: AlertSeverity,
    /// The reading that triggered the transition.
    pub reading: Reading,
    /// `true` when the alert fires, `false` when it clears.
    pub active: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct RuleState {
    active: bool,
    consecutive_violations: u32,
}

/// Stateful evaluator of a set of alert rules.
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    state: Vec<RuleState>,
    by_sensor: HashMap<SensorId, Vec<usize>>,
    fired_total: u64,
}

impl AlertEngine {
    /// Creates an engine over `rules`.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let mut by_sensor: HashMap<SensorId, Vec<usize>> = HashMap::new();
        for (i, r) in rules.iter().enumerate() {
            by_sensor.entry(r.sensor).or_default().push(i);
        }
        let state = vec![RuleState::default(); rules.len()];
        AlertEngine {
            rules,
            state,
            by_sensor,
            fired_total: 0,
        }
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Total fire events (not clears) since creation.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Rules currently in the active (firing) state.
    pub fn active_rules(&self) -> Vec<&AlertRule> {
        self.rules
            .iter()
            .zip(&self.state)
            .filter_map(|(r, s)| s.active.then_some(r))
            .collect()
    }

    /// Feeds one reading; returns any raise/clear transitions it caused.
    pub fn observe(&mut self, sensor: SensorId, reading: Reading) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        let Some(rule_idxs) = self.by_sensor.get(&sensor) else {
            return events;
        };
        for &i in rule_idxs {
            let rule = &self.rules[i];
            let st = &mut self.state[i];
            if rule.condition.violated_by(reading.value) {
                st.consecutive_violations = st.consecutive_violations.saturating_add(1);
                if !st.active && st.consecutive_violations >= rule.debounce {
                    st.active = true;
                    self.fired_total += 1;
                    events.push(AlertEvent {
                        rule: rule.name.clone(),
                        sensor,
                        severity: rule.severity,
                        reading,
                        active: true,
                    });
                }
            } else {
                st.consecutive_violations = 0;
                if st.active {
                    st.active = false;
                    events.push(AlertEvent {
                        rule: rule.name.clone(),
                        sensor,
                        severity: rule.severity,
                        reading,
                        active: false,
                    });
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::Timestamp;

    fn rd(v: f64) -> Reading {
        Reading::new(Timestamp::ZERO, v)
    }

    #[test]
    fn above_fires_once_and_clears_once() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "hot",
            s,
            Condition::Above(80.0),
            AlertSeverity::Critical,
        )]);
        assert!(eng.observe(s, rd(70.0)).is_empty());
        let ev = eng.observe(s, rd(85.0));
        assert_eq!(ev.len(), 1);
        assert!(ev[0].active);
        // Still violating: no duplicate event.
        assert!(eng.observe(s, rd(90.0)).is_empty());
        let ev = eng.observe(s, rd(75.0));
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].active);
        assert_eq!(eng.fired_total(), 1);
    }

    #[test]
    fn debounce_requires_consecutive_violations() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "flappy",
            s,
            Condition::Above(10.0),
            AlertSeverity::Warning,
        )
        .with_debounce(3)]);
        assert!(eng.observe(s, rd(11.0)).is_empty());
        assert!(eng.observe(s, rd(11.0)).is_empty());
        // A good reading resets the count.
        assert!(eng.observe(s, rd(5.0)).is_empty());
        assert!(eng.observe(s, rd(11.0)).is_empty());
        assert!(eng.observe(s, rd(11.0)).is_empty());
        let ev = eng.observe(s, rd(11.0));
        assert_eq!(ev.len(), 1);
        assert!(ev[0].active);
    }

    #[test]
    fn below_and_outside_conditions() {
        assert!(Condition::Below(1.0).violated_by(0.5));
        assert!(!Condition::Below(1.0).violated_by(1.0));
        let c = Condition::Outside { lo: 10.0, hi: 20.0 };
        assert!(c.violated_by(9.9));
        assert!(c.violated_by(20.1));
        assert!(!c.violated_by(15.0));
        assert!(!c.violated_by(10.0));
        assert!(!c.violated_by(20.0));
    }

    #[test]
    fn unrelated_sensors_are_ignored() {
        let mut eng = AlertEngine::new(vec![AlertRule::new(
            "r",
            SensorId(0),
            Condition::Above(0.0),
            AlertSeverity::Info,
        )]);
        assert!(eng.observe(SensorId(1), rd(100.0)).is_empty());
    }

    #[test]
    fn multiple_rules_on_one_sensor() {
        let s = SensorId(0);
        let mut eng = AlertEngine::new(vec![
            AlertRule::new("warn", s, Condition::Above(50.0), AlertSeverity::Warning),
            AlertRule::new("crit", s, Condition::Above(80.0), AlertSeverity::Critical),
        ]);
        let ev = eng.observe(s, rd(60.0));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].severity, AlertSeverity::Warning);
        let ev = eng.observe(s, rd(90.0));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].severity, AlertSeverity::Critical);
        assert_eq!(eng.active_rules().len(), 2);
    }
}
