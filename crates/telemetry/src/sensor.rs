//! Sensor identity, metadata, and the interning registry.
//!
//! Sensors are named hierarchically with slash-separated components mirroring
//! the physical/logical topology of the data center, e.g.
//!
//! ```text
//! /facility/chiller0/power
//! /hw/rack3/node12/cpu0/temperature
//! /sw/scheduler/queue_length
//! /app/job1234/flops
//! ```
//!
//! The first component identifies the *pillar domain* the sensor belongs to
//! (`facility`, `hw`, `sw`, `app`), which lets the framework layer route
//! sensors to pillar-scoped capabilities without any extra bookkeeping.
//!
//! Names are interned once at registration into a dense [`SensorId`] (a
//! `u32`), which every other component uses as a key. Interning keeps hot
//! paths (ingest, query) free of string hashing and keeps per-reading memory
//! at 16 bytes.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Dense interned identifier of a registered sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SensorId(pub u32);

impl SensorId {
    /// The raw index. Valid indices are `0..registry.len()`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Physical kind of the monitored quantity.
///
/// The kind is advisory metadata used by dashboards and by analytics that
/// select their inputs semantically (e.g. a thermal model asks for all
/// `Temperature` sensors under a node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Electrical power draw.
    Power,
    /// Cumulative energy.
    Energy,
    /// A temperature.
    Temperature,
    /// Utilization fraction of a resource (0..=1).
    Utilization,
    /// A frequency (CPU clock, fan speed).
    Frequency,
    /// Volumetric or mass flow (cooling loops).
    Flow,
    /// A dimensionless count (queue lengths, error counters).
    Count,
    /// A rate of events or bytes per second.
    Rate,
    /// A ratio or derived efficiency indicator (PUE, ITUE, slowdown).
    Indicator,
}

/// Unit of measure for a sensor's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Watts.
    Watts,
    /// Kilowatts.
    Kilowatts,
    /// Joules.
    Joules,
    /// Degrees Celsius.
    Celsius,
    /// Fraction in `0..=1`.
    Fraction,
    /// Percent in `0..=100`.
    Percent,
    /// Hertz.
    Hertz,
    /// Megahertz.
    Megahertz,
    /// Litres per second.
    LitresPerSecond,
    /// Bytes per second.
    BytesPerSecond,
    /// Operations (or events) per second.
    OpsPerSecond,
    /// Plain count, no unit.
    Dimensionless,
    /// Seconds.
    Seconds,
}

impl Unit {
    /// Short human-readable suffix used by dashboards.
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Watts => "W",
            Unit::Kilowatts => "kW",
            Unit::Joules => "J",
            Unit::Celsius => "°C",
            Unit::Fraction => "",
            Unit::Percent => "%",
            Unit::Hertz => "Hz",
            Unit::Megahertz => "MHz",
            Unit::LitresPerSecond => "L/s",
            Unit::BytesPerSecond => "B/s",
            Unit::OpsPerSecond => "op/s",
            Unit::Dimensionless => "",
            Unit::Seconds => "s",
        }
    }
}

/// Immutable metadata describing a registered sensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorMeta {
    /// The interned identifier.
    pub id: SensorId,
    /// Full hierarchical name, e.g. `/hw/node3/cpu_power`.
    pub name: Arc<str>,
    /// What physical quantity this sensor reports.
    pub kind: SensorKind,
    /// Unit of the reported values.
    pub unit: Unit,
}

impl SensorMeta {
    /// The top-level domain component of the name (`facility`, `hw`, ...),
    /// or an empty string for degenerate names.
    pub fn domain(&self) -> &str {
        self.name
            .trim_start_matches('/')
            .split('/')
            .next()
            .unwrap_or("")
    }

    /// The final component of the name (the metric leaf, e.g. `cpu_power`).
    pub fn leaf(&self) -> &str {
        self.name.rsplit('/').next().unwrap_or("")
    }
}

#[derive(Default)]
struct RegistryInner {
    metas: Vec<SensorMeta>,
    by_name: BTreeMap<Arc<str>, SensorId>,
}

/// Thread-safe interning registry of all sensors in a deployment.
///
/// Registration is idempotent: registering the same name twice returns the
/// existing id (kind/unit of the first registration win). The registry is
/// cheap to clone — clones share the same underlying map.
#[derive(Clone, Default)]
pub struct SensorRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl SensorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` (idempotently) and returns its id.
    ///
    /// # Panics
    /// Panics if `name` is empty or does not start with `/`: sensor names
    /// are required to be absolute hierarchical paths.
    pub fn register(&self, name: &str, kind: SensorKind, unit: Unit) -> SensorId {
        assert!(
            name.starts_with('/') && name.len() > 1,
            "sensor names must be absolute hierarchical paths, got {name:?}"
        );
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let id = SensorId(inner.metas.len() as u32);
        let name: Arc<str> = Arc::from(name);
        inner.metas.push(SensorMeta {
            id,
            name: Arc::clone(&name),
            kind,
            unit,
        });
        inner.by_name.insert(name, id);
        id
    }

    /// Looks up a sensor by exact name.
    pub fn lookup(&self, name: &str) -> Option<SensorId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Returns the metadata for `id`, if registered.
    pub fn meta(&self, id: SensorId) -> Option<SensorMeta> {
        self.inner.read().metas.get(id.index()).cloned()
    }

    /// Returns the full name for `id`, if registered.
    pub fn name(&self, id: SensorId) -> Option<Arc<str>> {
        self.inner
            .read()
            .metas
            .get(id.index())
            .map(|m| Arc::clone(&m.name))
    }

    /// Number of registered sensors.
    pub fn len(&self) -> usize {
        self.inner.read().metas.len()
    }

    /// `true` if no sensors are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all sensor metadata, ordered by id.
    pub fn all(&self) -> Vec<SensorMeta> {
        self.inner.read().metas.clone()
    }

    /// Ids of all sensors whose name matches `pattern`.
    pub fn matching(&self, pattern: &crate::pattern::SensorPattern) -> Vec<SensorId> {
        self.inner
            .read()
            .metas
            .iter()
            .filter(|m| pattern.matches(&m.name))
            .map(|m| m.id)
            .collect()
    }

    /// Ids of all sensors in a given top-level domain (e.g. `"hw"`).
    pub fn in_domain(&self, domain: &str) -> Vec<SensorId> {
        self.inner
            .read()
            .metas
            .iter()
            .filter(|m| m.domain() == domain)
            .map(|m| m.id)
            .collect()
    }

    /// Ids of all sensors of a given kind.
    pub fn of_kind(&self, kind: SensorKind) -> Vec<SensorId> {
        self.inner
            .read()
            .metas
            .iter()
            .filter(|m| m.kind == kind)
            .map(|m| m.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SensorPattern;

    #[test]
    fn register_is_idempotent_and_dense() {
        let reg = SensorRegistry::new();
        let a = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let b = reg.register("/hw/node1/power", SensorKind::Power, Unit::Watts);
        let a2 = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "absolute hierarchical paths")]
    fn relative_names_are_rejected() {
        SensorRegistry::new().register("power", SensorKind::Power, Unit::Watts);
    }

    #[test]
    fn lookup_and_meta_round_trip() {
        let reg = SensorRegistry::new();
        let id = reg.register(
            "/facility/chiller0/power",
            SensorKind::Power,
            Unit::Kilowatts,
        );
        assert_eq!(reg.lookup("/facility/chiller0/power"), Some(id));
        assert_eq!(reg.lookup("/facility/chiller1/power"), None);
        let meta = reg.meta(id).unwrap();
        assert_eq!(meta.domain(), "facility");
        assert_eq!(meta.leaf(), "power");
        assert_eq!(meta.unit, Unit::Kilowatts);
    }

    #[test]
    fn domain_and_kind_filters() {
        let reg = SensorRegistry::new();
        reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        reg.register("/hw/node0/temp", SensorKind::Temperature, Unit::Celsius);
        reg.register("/facility/pdu0/power", SensorKind::Power, Unit::Kilowatts);
        assert_eq!(reg.in_domain("hw").len(), 2);
        assert_eq!(reg.in_domain("facility").len(), 1);
        assert_eq!(reg.of_kind(SensorKind::Power).len(), 2);
        assert_eq!(reg.of_kind(SensorKind::Flow).len(), 0);
    }

    #[test]
    fn pattern_matching_selects_subtrees() {
        let reg = SensorRegistry::new();
        reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        reg.register("/hw/node1/power", SensorKind::Power, Unit::Watts);
        reg.register("/hw/node1/temp", SensorKind::Temperature, Unit::Celsius);
        let pat = SensorPattern::new("/hw/*/power");
        assert_eq!(reg.matching(&pat).len(), 2);
        let pat = SensorPattern::new("/hw/node1/**");
        assert_eq!(reg.matching(&pat).len(), 2);
    }

    #[test]
    fn clones_share_state() {
        let reg = SensorRegistry::new();
        let clone = reg.clone();
        let id = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        assert_eq!(clone.lookup("/hw/node0/power"), Some(id));
    }
}
