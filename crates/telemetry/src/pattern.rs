//! Glob-like patterns over hierarchical sensor names.
//!
//! Patterns support two wildcards, matching the conventions of production
//! monitoring stacks:
//!
//! * `*` matches exactly one path component (`/hw/*/power` matches
//!   `/hw/node0/power` but not `/hw/rack0/node0/power`);
//! * `**` matches zero or more trailing or interior components
//!   (`/hw/**` matches everything under `/hw`).
//!
//! Matching is component-wise; no partial-component wildcards are supported
//! (sensor leaves are short fixed vocabularies, so `cpu*` style matching is
//! not needed and keeping the grammar small keeps matching allocation-free).

use serde::{Deserialize, Serialize};

/// A compiled sensor-name pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorPattern {
    components: Vec<Component>,
    source: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Component {
    Literal(String),
    AnyOne,
    AnyDeep,
}

impl SensorPattern {
    /// Compiles a pattern.
    ///
    /// # Panics
    /// Panics if the pattern is not an absolute path (must start with `/`).
    pub fn new(pattern: &str) -> Self {
        assert!(
            pattern.starts_with('/'),
            "sensor patterns must be absolute, got {pattern:?}"
        );
        let components = pattern
            .trim_start_matches('/')
            .split('/')
            .filter(|c| !c.is_empty())
            .map(|c| match c {
                "*" => Component::AnyOne,
                "**" => Component::AnyDeep,
                lit => Component::Literal(lit.to_owned()),
            })
            .collect();
        SensorPattern {
            components,
            source: pattern.to_owned(),
        }
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Tests `name` against the pattern.
    pub fn matches(&self, name: &str) -> bool {
        let parts: Vec<&str> = name
            .trim_start_matches('/')
            .split('/')
            .filter(|c| !c.is_empty())
            .collect();
        Self::match_components(&self.components, &parts)
    }

    fn match_components(pat: &[Component], parts: &[&str]) -> bool {
        match pat.split_first() {
            None => parts.is_empty(),
            Some((Component::Literal(lit), rest)) => parts
                .split_first()
                .is_some_and(|(head, tail)| head == lit && Self::match_components(rest, tail)),
            Some((Component::AnyOne, rest)) => parts
                .split_first()
                .is_some_and(|(_, tail)| Self::match_components(rest, tail)),
            Some((Component::AnyDeep, rest)) => {
                // `**` may consume 0..=len components.
                (0..=parts.len()).any(|k| Self::match_components(rest, &parts[k..]))
            }
        }
    }
}

impl From<&str> for SensorPattern {
    /// Compiles the string as a pattern (panics if not absolute), so builder
    /// APIs accept `"/hw/**"` directly.
    fn from(pattern: &str) -> Self {
        SensorPattern::new(pattern)
    }
}

impl From<&SensorPattern> for SensorPattern {
    fn from(pattern: &SensorPattern) -> Self {
        pattern.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_from_str_compiles() {
        let p: SensorPattern = "/hw/**".into();
        assert!(p.matches("/hw/node0/power"));
    }

    #[test]
    fn literal_patterns_match_exactly() {
        let p = SensorPattern::new("/hw/node0/power");
        assert!(p.matches("/hw/node0/power"));
        assert!(!p.matches("/hw/node0/temp"));
        assert!(!p.matches("/hw/node0"));
        assert!(!p.matches("/hw/node0/power/extra"));
    }

    #[test]
    fn star_matches_exactly_one_component() {
        let p = SensorPattern::new("/hw/*/power");
        assert!(p.matches("/hw/node0/power"));
        assert!(p.matches("/hw/node99/power"));
        assert!(!p.matches("/hw/power"));
        assert!(!p.matches("/hw/rack0/node0/power"));
    }

    #[test]
    fn double_star_matches_any_depth() {
        let p = SensorPattern::new("/hw/**");
        assert!(p.matches("/hw/node0/power"));
        assert!(p.matches("/hw/rack0/node0/cpu0/temp"));
        assert!(p.matches("/hw")); // zero components
        assert!(!p.matches("/facility/pdu0/power"));
    }

    #[test]
    fn interior_double_star() {
        let p = SensorPattern::new("/hw/**/temp");
        assert!(p.matches("/hw/temp"));
        assert!(p.matches("/hw/node0/temp"));
        assert!(p.matches("/hw/rack0/node0/cpu1/temp"));
        assert!(!p.matches("/hw/node0/power"));
    }

    #[test]
    fn mixed_wildcards() {
        let p = SensorPattern::new("/*/node0/**");
        assert!(p.matches("/hw/node0/power"));
        assert!(p.matches("/sw/node0/load/avg"));
        assert!(!p.matches("/hw/node1/power"));
    }

    #[test]
    #[should_panic(expected = "must be absolute")]
    fn relative_pattern_panics() {
        SensorPattern::new("hw/*");
    }
}
