//! Analytical read path over the time-series store.
//!
//! The query engine provides the primitives every analytics type builds on:
//! range scans, scalar aggregations, fixed-width-bucket downsampling, rate
//! derivation for cumulative counters, and timestamp alignment of multiple
//! series (the multi-dimensional input the paper's diagnostic techniques
//! ingest). Multi-sensor scans fan out across a Rayon thread pool because
//! fleet-wide queries (thousands of node sensors) dominate read volume.

use crate::reading::{Reading, Timestamp};
use crate::sensor::SensorId;
use crate::store::TimeSeriesStore;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Half-open query interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeRange {
    /// The full axis.
    pub fn all() -> Self {
        TimeRange {
            start: Timestamp::ZERO,
            end: Timestamp::MAX,
        }
    }

    /// `[start, end)`; callers must ensure `start <= end` (an inverted range
    /// is simply empty).
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeRange { start, end }
    }

    /// The trailing window of `window_ms` ending at `now` (exclusive of
    /// `now` itself plus one, i.e. `[now - window, now]` behaves as expected
    /// for sampled data).
    pub fn trailing(now: Timestamp, window_ms: u64) -> Self {
        TimeRange {
            start: now - window_ms,
            end: now + 1,
        }
    }

    /// Width in milliseconds (saturating).
    pub fn width_ms(&self) -> u64 {
        self.end.millis_since(self.start)
    }
}

/// Scalar aggregation functions over a range of readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean of values.
    Mean,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Sum of values.
    Sum,
    /// Number of readings, as f64.
    Count,
    /// Population standard deviation.
    StdDev,
    /// Last value in the range.
    Last,
    /// First value in the range.
    First,
    /// Exact quantile `q` in `0..=1` (sorts the window; fine for the window
    /// sizes dashboards use — streaming quantiles live in `oda-analytics`).
    Quantile(f64),
    /// Time-weighted mean: each value weighted by the duration until the next
    /// sample. The natural aggregate for irregularly-sampled power/temp data.
    TimeWeightedMean,
}

/// One downsampled bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket start (aligned to the bucket width).
    pub start: Timestamp,
    /// Aggregated value of the readings falling in the bucket.
    pub value: f64,
    /// Number of raw readings aggregated.
    pub count: usize,
}

/// Read-side engine over a [`TimeSeriesStore`].
pub struct QueryEngine<'a> {
    store: &'a TimeSeriesStore,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine borrowing `store`.
    pub fn new(store: &'a TimeSeriesStore) -> Self {
        QueryEngine { store }
    }

    /// Raw readings in `range`, chronological.
    pub fn range(&self, sensor: SensorId, range: TimeRange) -> Vec<Reading> {
        self.store.range(sensor, range.start, range.end)
    }

    /// Applies `agg` to the readings of `sensor` within `range`.
    ///
    /// Returns `None` when the range holds no readings (aggregates of empty
    /// sets are undefined rather than silently zero).
    pub fn aggregate(&self, sensor: SensorId, range: TimeRange, agg: Aggregation) -> Option<f64> {
        let readings = self.range(sensor, range);
        aggregate_readings(&readings, agg)
    }

    /// Aggregates many sensors in parallel; output order matches input order.
    pub fn aggregate_many(
        &self,
        sensors: &[SensorId],
        range: TimeRange,
        agg: Aggregation,
    ) -> Vec<Option<f64>> {
        sensors
            .par_iter()
            .map(|&s| self.aggregate(s, range, agg))
            .collect()
    }

    /// Downsamples `sensor` over `range` into fixed `bucket_ms`-wide buckets,
    /// aggregating each bucket with `agg`. Empty buckets are omitted.
    ///
    /// # Panics
    /// Panics if `bucket_ms == 0`.
    pub fn downsample(
        &self,
        sensor: SensorId,
        range: TimeRange,
        bucket_ms: u64,
        agg: Aggregation,
    ) -> Vec<Bucket> {
        assert!(bucket_ms > 0, "bucket width must be positive");
        let readings = self.range(sensor, range);
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < readings.len() {
            let bstart = readings[i].ts.bucket(bucket_ms);
            let bend = bstart + bucket_ms;
            let mut j = i;
            while j < readings.len() && readings[j].ts < bend {
                j += 1;
            }
            let slice = &readings[i..j];
            if let Some(value) = aggregate_readings(slice, agg) {
                out.push(Bucket {
                    start: bstart,
                    value,
                    count: slice.len(),
                });
            }
            i = j;
        }
        out
    }

    /// Converts a cumulative counter (e.g. energy in joules) to a rate series
    /// (watts): each output reading is `(vᵢ₊₁ - vᵢ) / Δt_seconds`, stamped at
    /// the later timestamp. Counter resets (negative deltas) yield no sample.
    pub fn rate(&self, sensor: SensorId, range: TimeRange) -> Vec<Reading> {
        let readings = self.range(sensor, range);
        readings
            .windows(2)
            .filter_map(|w| {
                let dt = w[1].ts.millis_since(w[0].ts) as f64 / 1_000.0;
                let dv = w[1].value - w[0].value;
                (dt > 0.0 && dv >= 0.0).then(|| Reading::new(w[1].ts, dv / dt))
            })
            .collect()
    }

    /// Aligns several sensors onto a common bucket grid.
    ///
    /// Returns `(bucket_starts, matrix)` where `matrix[s][b]` is the mean of
    /// sensor `s` in bucket `b`, or `f64::NAN` when that sensor has no sample
    /// in the bucket. The grid spans the union of non-empty buckets. This is
    /// the standard preprocessing step for multivariate diagnostics.
    pub fn align(
        &self,
        sensors: &[SensorId],
        range: TimeRange,
        bucket_ms: u64,
    ) -> (Vec<Timestamp>, Vec<Vec<f64>>) {
        assert!(bucket_ms > 0, "bucket width must be positive");
        let per_sensor: Vec<Vec<Bucket>> = sensors
            .par_iter()
            .map(|&s| self.downsample(s, range, bucket_ms, Aggregation::Mean))
            .collect();
        let mut grid: Vec<Timestamp> = per_sensor
            .iter()
            .flat_map(|bs| bs.iter().map(|b| b.start))
            .collect();
        grid.sort_unstable();
        grid.dedup();
        let matrix = per_sensor
            .par_iter()
            .map(|buckets| {
                let mut row = vec![f64::NAN; grid.len()];
                for b in buckets {
                    if let Ok(idx) = grid.binary_search(&b.start) {
                        row[idx] = b.value;
                    }
                }
                row
            })
            .collect();
        (grid, matrix)
    }
}

/// Applies `agg` to an already-materialised chronological slice.
///
/// Exposed so analytics code can aggregate windows it has already fetched.
pub fn aggregate_readings(readings: &[Reading], agg: Aggregation) -> Option<f64> {
    if readings.is_empty() {
        return None;
    }
    let n = readings.len() as f64;
    Some(match agg {
        Aggregation::Mean => readings.iter().map(|r| r.value).sum::<f64>() / n,
        Aggregation::Min => readings.iter().map(|r| r.value).fold(f64::INFINITY, f64::min),
        Aggregation::Max => readings
            .iter()
            .map(|r| r.value)
            .fold(f64::NEG_INFINITY, f64::max),
        Aggregation::Sum => readings.iter().map(|r| r.value).sum(),
        Aggregation::Count => n,
        Aggregation::StdDev => {
            let mean = readings.iter().map(|r| r.value).sum::<f64>() / n;
            (readings.iter().map(|r| (r.value - mean).powi(2)).sum::<f64>() / n).sqrt()
        }
        Aggregation::Last => readings.last().unwrap().value,
        Aggregation::First => readings.first().unwrap().value,
        Aggregation::Quantile(q) => {
            let q = q.clamp(0.0, 1.0);
            let mut vals: Vec<f64> = readings.iter().map(|r| r.value).collect();
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            // Linear interpolation between closest ranks.
            let pos = q * (vals.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                vals[lo]
            } else {
                vals[lo] + (pos - lo as f64) * (vals[hi] - vals[lo])
            }
        }
        Aggregation::TimeWeightedMean => {
            if readings.len() == 1 {
                readings[0].value
            } else {
                let mut weighted = 0.0;
                let mut total_w = 0.0;
                for w in readings.windows(2) {
                    let dt = w[1].ts.millis_since(w[0].ts) as f64;
                    weighted += w[0].value * dt;
                    total_w += dt;
                }
                if total_w == 0.0 {
                    readings.iter().map(|r| r.value).sum::<f64>() / n
                } else {
                    weighted / total_w
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(series: &[(u64, f64)]) -> (TimeSeriesStore, SensorId) {
        let store = TimeSeriesStore::with_capacity(1024);
        let s = SensorId(0);
        for &(t, v) in series {
            store.insert(s, Reading::new(Timestamp::from_millis(t), v));
        }
        (store, s)
    }

    #[test]
    fn scalar_aggregations() {
        let (store, s) = store_with(&[(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)]);
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        assert_eq!(q.aggregate(s, all, Aggregation::Mean), Some(2.5));
        assert_eq!(q.aggregate(s, all, Aggregation::Min), Some(1.0));
        assert_eq!(q.aggregate(s, all, Aggregation::Max), Some(4.0));
        assert_eq!(q.aggregate(s, all, Aggregation::Sum), Some(10.0));
        assert_eq!(q.aggregate(s, all, Aggregation::Count), Some(4.0));
        assert_eq!(q.aggregate(s, all, Aggregation::First), Some(1.0));
        assert_eq!(q.aggregate(s, all, Aggregation::Last), Some(4.0));
        let sd = q.aggregate(s, all, Aggregation::StdDev).unwrap();
        assert!((sd - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_range_aggregates_to_none() {
        let (store, s) = store_with(&[(0, 1.0)]);
        let q = QueryEngine::new(&store);
        let r = TimeRange::new(Timestamp::from_millis(100), Timestamp::from_millis(200));
        assert_eq!(q.aggregate(s, r, Aggregation::Mean), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let (store, s) = store_with(&[(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)]);
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        assert_eq!(q.aggregate(s, all, Aggregation::Quantile(0.0)), Some(10.0));
        assert_eq!(q.aggregate(s, all, Aggregation::Quantile(1.0)), Some(40.0));
        assert_eq!(q.aggregate(s, all, Aggregation::Quantile(0.5)), Some(25.0));
        // Out-of-range q is clamped.
        assert_eq!(q.aggregate(s, all, Aggregation::Quantile(2.0)), Some(40.0));
    }

    #[test]
    fn time_weighted_mean_weights_by_holding_time() {
        // Value 0 held for 90ms, value 10 held for 10ms (last sample has no
        // holding time and is excluded as weight).
        let (store, s) = store_with(&[(0, 0.0), (90, 10.0), (100, 10.0)]);
        let q = QueryEngine::new(&store);
        let twm = q
            .aggregate(s, TimeRange::all(), Aggregation::TimeWeightedMean)
            .unwrap();
        assert!((twm - 1.0).abs() < 1e-12, "got {twm}");
    }

    #[test]
    fn downsample_means_per_bucket_and_skips_gaps() {
        let (store, s) = store_with(&[(0, 1.0), (500, 3.0), (1_000, 5.0), (3_000, 7.0)]);
        let q = QueryEngine::new(&store);
        let buckets = q.downsample(s, TimeRange::all(), 1_000, Aggregation::Mean);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].start, Timestamp::ZERO);
        assert_eq!(buckets[0].value, 2.0);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[1].value, 5.0);
        assert_eq!(buckets[2].start, Timestamp::from_millis(3_000));
    }

    #[test]
    fn rate_derives_watts_from_joules() {
        // 100 J at t=0s, 300 J at t=2s → 100 W; reset to 0 → skipped.
        let (store, s) = store_with(&[(0, 100.0), (2_000, 300.0), (3_000, 0.0), (4_000, 50.0)]);
        let q = QueryEngine::new(&store);
        let rates = q.rate(s, TimeRange::all());
        assert_eq!(rates.len(), 2);
        assert!((rates[0].value - 100.0).abs() < 1e-12);
        assert!((rates[1].value - 50.0).abs() < 1e-12);
    }

    #[test]
    fn align_produces_common_grid_with_nans() {
        let store = TimeSeriesStore::with_capacity(64);
        let a = SensorId(0);
        let b = SensorId(1);
        store.insert(a, Reading::new(Timestamp::from_millis(0), 1.0));
        store.insert(a, Reading::new(Timestamp::from_millis(1_000), 2.0));
        store.insert(b, Reading::new(Timestamp::from_millis(1_000), 10.0));
        store.insert(b, Reading::new(Timestamp::from_millis(2_000), 20.0));
        let q = QueryEngine::new(&store);
        let (grid, m) = q.align(&[a, b], TimeRange::all(), 1_000);
        assert_eq!(grid.len(), 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[0][1], 2.0);
        assert!(m[0][2].is_nan());
        assert!(m[1][0].is_nan());
        assert_eq!(m[1][1], 10.0);
        assert_eq!(m[1][2], 20.0);
    }

    #[test]
    fn aggregate_many_preserves_order() {
        let store = TimeSeriesStore::with_capacity(8);
        for i in 0..4u32 {
            store.insert(SensorId(i), Reading::new(Timestamp::ZERO, i as f64));
        }
        let q = QueryEngine::new(&store);
        let sensors: Vec<SensorId> = (0..4).map(SensorId).collect();
        let out = q.aggregate_many(&sensors, TimeRange::all(), Aggregation::Last);
        assert_eq!(out, vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0)]);
    }

    #[test]
    fn trailing_range_includes_now() {
        let (store, s) = store_with(&[(900, 1.0), (1_000, 2.0)]);
        let q = QueryEngine::new(&store);
        let r = TimeRange::trailing(Timestamp::from_millis(1_000), 50);
        assert_eq!(q.aggregate(s, r, Aggregation::Count), Some(1.0));
    }
}
