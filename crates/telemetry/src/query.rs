//! Analytical read path over the time-series store.
//!
//! The read API is one fluent builder: [`Query`] names *what* to read (by
//! sensor ids or by pattern), *when* (a [`TimeRange`]), and *what shape* the
//! answer takes — raw readings, fixed-width [`Bucket`]s, per-sensor scalars,
//! or a timestamp-aligned matrix (the multi-dimensional input the paper's
//! diagnostic techniques ingest). All of it composes into a single planned
//! scan executed by [`Query::run`] against a [`QueryEngine`]:
//!
//! ```
//! use oda_telemetry::prelude::*;
//! # let store = TimeSeriesStore::with_capacity(16);
//! # let s = SensorId(0);
//! # store.insert(s, Reading::new(Timestamp::ZERO, 1.0));
//! let engine = QueryEngine::new(&store);
//! let mean = Query::sensors(s)
//!     .range(TimeRange::all())
//!     .aggregate(Aggregation::Mean)
//!     .run(&engine)
//!     .scalar();
//! assert_eq!(mean, Some(1.0));
//! ```
//!
//! Multi-sensor scans fan out across a Rayon thread pool because fleet-wide
//! queries (thousands of node sensors) dominate read volume. Every executed
//! query records `query_total`, `query_scan_ns` and
//! `query_readings_scanned_total` into the store's metrics registry.
//!
//! The former method-per-shape API (`range`/`aggregate`/`downsample`/...)
//! survives as thin deprecated delegates; new code should use the builder.

use crate::metrics::{Counter, Histogram};
use crate::pattern::SensorPattern;
use crate::reading::{Reading, Timestamp};
use crate::sensor::{SensorId, SensorRegistry};
use crate::store::TimeSeriesStore;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Half-open query interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeRange {
    /// The full axis.
    pub fn all() -> Self {
        TimeRange {
            start: Timestamp::ZERO,
            end: Timestamp::MAX,
        }
    }

    /// `[start, end)`; callers must ensure `start <= end` (an inverted range
    /// is simply empty).
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeRange { start, end }
    }

    /// The trailing window of `window_ms` ending at `now` (exclusive of
    /// `now` itself plus one, i.e. `[now - window, now]` behaves as expected
    /// for sampled data).
    pub fn trailing(now: Timestamp, window_ms: u64) -> Self {
        TimeRange {
            start: now - window_ms,
            end: now + 1,
        }
    }

    /// Width in milliseconds (saturating).
    pub fn width_ms(&self) -> u64 {
        self.end.millis_since(self.start)
    }
}

/// Scalar aggregation functions over a range of readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean of values.
    Mean,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Sum of values.
    Sum,
    /// Number of readings, as f64.
    Count,
    /// Population standard deviation.
    StdDev,
    /// Last value in the range.
    Last,
    /// First value in the range.
    First,
    /// Exact quantile `q` in `0..=1` (sorts the window; fine for the window
    /// sizes dashboards use — streaming quantiles live in `oda-analytics`).
    Quantile(f64),
    /// Time-weighted mean: each value weighted by the duration until the next
    /// sample. The natural aggregate for irregularly-sampled power/temp data.
    TimeWeightedMean,
}

/// One downsampled bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket start (aligned to the bucket width).
    pub start: Timestamp,
    /// Aggregated value of the readings falling in the bucket.
    pub value: f64,
    /// Number of raw readings aggregated.
    pub count: usize,
}

/// What a [`Query`] selects: explicit sensor ids or a name pattern resolved
/// against a registry at execution time.
#[derive(Debug, Clone)]
pub enum SensorSelector {
    /// Explicit ids, scanned in the given order.
    Ids(Vec<SensorId>),
    /// All sensors whose name matches, in ascending id order (deterministic).
    /// Requires an engine built with [`QueryEngine::with_registry`].
    Pattern(SensorPattern),
}

impl From<SensorId> for SensorSelector {
    fn from(id: SensorId) -> Self {
        SensorSelector::Ids(vec![id])
    }
}

impl From<Vec<SensorId>> for SensorSelector {
    fn from(ids: Vec<SensorId>) -> Self {
        SensorSelector::Ids(ids)
    }
}

impl From<&Vec<SensorId>> for SensorSelector {
    fn from(ids: &Vec<SensorId>) -> Self {
        SensorSelector::Ids(ids.clone())
    }
}

impl From<&[SensorId]> for SensorSelector {
    fn from(ids: &[SensorId]) -> Self {
        SensorSelector::Ids(ids.to_vec())
    }
}

impl<const N: usize> From<[SensorId; N]> for SensorSelector {
    fn from(ids: [SensorId; N]) -> Self {
        SensorSelector::Ids(ids.to_vec())
    }
}

impl<const N: usize> From<&[SensorId; N]> for SensorSelector {
    fn from(ids: &[SensorId; N]) -> Self {
        SensorSelector::Ids(ids.to_vec())
    }
}

impl From<SensorPattern> for SensorSelector {
    fn from(pattern: SensorPattern) -> Self {
        SensorSelector::Pattern(pattern)
    }
}

impl From<&SensorPattern> for SensorSelector {
    fn from(pattern: &SensorPattern) -> Self {
        SensorSelector::Pattern(pattern.clone())
    }
}

impl From<&str> for SensorSelector {
    fn from(pattern: &str) -> Self {
        SensorSelector::Pattern(SensorPattern::new(pattern))
    }
}

/// Output shape a query has been composed into.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Readings,
    Buckets { bucket_ms: u64, agg: Aggregation },
    Scalars(Aggregation),
    Aligned { bucket_ms: u64 },
}

/// A composable read over the store: selector + range + optional rate
/// derivation + output shape, planned as one scan.
///
/// Build with [`Query::sensors`], refine with the chainable methods, execute
/// with [`Query::run`]. At most one shaping method
/// ([`downsample`](Self::downsample) / [`aggregate`](Self::aggregate) /
/// [`align`](Self::align)) may be applied; composing two panics, since the
/// second would silently discard the first.
#[derive(Debug, Clone)]
#[must_use = "a Query does nothing until .run(&engine)"]
pub struct Query {
    selector: SensorSelector,
    range: TimeRange,
    rate: bool,
    shape: Shape,
}

impl Query {
    /// Starts a query over `sensors`: a [`SensorId`], a slice/`Vec` of ids,
    /// a [`SensorPattern`], or a pattern string like `"/hw/*/power"`.
    pub fn sensors(sensors: impl Into<SensorSelector>) -> Self {
        Query {
            selector: sensors.into(),
            range: TimeRange::all(),
            rate: false,
            shape: Shape::Readings,
        }
    }

    /// Restricts the scan to `range` (default: the full axis).
    pub fn range(mut self, range: TimeRange) -> Self {
        self.range = range;
        self
    }

    /// Derives a rate series from cumulative counters before shaping: each
    /// reading becomes `(vᵢ₊₁ - vᵢ) / Δt_seconds` stamped at the later
    /// timestamp; counter resets (negative deltas) yield no sample.
    pub fn rate(mut self) -> Self {
        self.rate = true;
        self
    }

    fn set_shape(mut self, shape: Shape) -> Self {
        assert!(
            matches!(self.shape, Shape::Readings),
            "query is already shaped ({:?}); use at most one of downsample/aggregate/align",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Downsamples each sensor into fixed `bucket_ms`-wide [`Bucket`]s,
    /// aggregating each bucket with `agg`. Empty buckets are omitted.
    ///
    /// # Panics
    /// Panics if `bucket_ms == 0` or the query is already shaped.
    pub fn downsample(self, bucket_ms: u64, agg: Aggregation) -> Self {
        assert!(bucket_ms > 0, "bucket width must be positive");
        self.set_shape(Shape::Buckets { bucket_ms, agg })
    }

    /// Reduces each sensor's readings to one scalar with `agg` (`None` for
    /// sensors with no readings in range).
    ///
    /// # Panics
    /// Panics if the query is already shaped.
    pub fn aggregate(self, agg: Aggregation) -> Self {
        self.set_shape(Shape::Scalars(agg))
    }

    /// Aligns all selected sensors onto a common `bucket_ms` grid of
    /// per-bucket means (`NaN` where a sensor has no sample) — the standard
    /// preprocessing step for multivariate diagnostics.
    ///
    /// # Panics
    /// Panics if `bucket_ms == 0` or the query is already shaped.
    pub fn align(self, bucket_ms: u64) -> Self {
        assert!(bucket_ms > 0, "bucket width must be positive");
        self.set_shape(Shape::Aligned { bucket_ms })
    }

    /// Executes the query as one planned scan.
    ///
    /// # Panics
    /// Panics if the selector is a pattern and `engine` has no registry
    /// attached (see [`QueryEngine::with_registry`]).
    pub fn run(self, engine: &QueryEngine<'_>) -> QueryResult {
        engine.execute(self)
    }
}

/// Materialised result of a [`Query`], in the resolved sensor order.
///
/// The typed accessors panic with a descriptive message when called on a
/// result of a different shape — shape is decided at build time, so a
/// mismatch is a programming error, not a data condition.
#[derive(Debug, Clone)]
pub struct QueryResult {
    sensors: Vec<SensorId>,
    shape: ResultData,
}

#[derive(Debug, Clone)]
enum ResultData {
    Series(Vec<Vec<Reading>>),
    Buckets(Vec<Vec<Bucket>>),
    Scalars(Vec<Option<f64>>),
    Aligned {
        grid: Vec<Timestamp>,
        matrix: Vec<Vec<f64>>,
    },
}

impl QueryResult {
    /// The resolved sensors, in result order.
    pub fn sensors(&self) -> &[SensorId] {
        &self.sensors
    }

    /// Number of sensors the query resolved to.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Raw readings of an unshaped single-sensor query.
    ///
    /// # Panics
    /// Panics if the query was shaped or resolved to more than one sensor
    /// (use [`Self::series`] for multi-sensor reads).
    pub fn readings(self) -> Vec<Reading> {
        let mut series = self.series();
        assert!(
            series.len() <= 1,
            "readings() on a {}-sensor result; use series()",
            series.len()
        );
        series.pop().unwrap_or_default()
    }

    /// Per-sensor raw readings of an unshaped query.
    ///
    /// # Panics
    /// Panics if the query was shaped.
    pub fn series(self) -> Vec<Vec<Reading>> {
        match self.shape {
            ResultData::Series(s) => s,
            other => panic!("series() on a {} result", shape_name(&other)),
        }
    }

    /// Buckets of a single-sensor [`Query::downsample`] query.
    ///
    /// # Panics
    /// Panics if the query was not downsampled or resolved to more than one
    /// sensor (use [`Self::bucket_series`]).
    pub fn buckets(self) -> Vec<Bucket> {
        let mut series = self.bucket_series();
        assert!(
            series.len() <= 1,
            "buckets() on a {}-sensor result; use bucket_series()",
            series.len()
        );
        series.pop().unwrap_or_default()
    }

    /// Per-sensor buckets of a [`Query::downsample`] query.
    ///
    /// # Panics
    /// Panics if the query was not downsampled.
    pub fn bucket_series(self) -> Vec<Vec<Bucket>> {
        match self.shape {
            ResultData::Buckets(b) => b,
            other => panic!("bucket_series() on a {} result", shape_name(&other)),
        }
    }

    /// Scalar of a single-sensor [`Query::aggregate`] query (`None` when the
    /// range held no readings).
    ///
    /// # Panics
    /// Panics if the query was not aggregated or resolved to more than one
    /// sensor (use [`Self::scalars`]).
    pub fn scalar(self) -> Option<f64> {
        let mut scalars = self.scalars();
        assert!(
            scalars.len() <= 1,
            "scalar() on a {}-sensor result; use scalars()",
            scalars.len()
        );
        scalars.pop().flatten()
    }

    /// Per-sensor scalars of a [`Query::aggregate`] query, in sensor order.
    ///
    /// # Panics
    /// Panics if the query was not aggregated.
    pub fn scalars(self) -> Vec<Option<f64>> {
        match self.shape {
            ResultData::Scalars(s) => s,
            other => panic!("scalars() on a {} result", shape_name(&other)),
        }
    }

    /// `(bucket_starts, matrix)` of a [`Query::align`] query, where
    /// `matrix[s][b]` is the mean of sensor `s` in bucket `b` or `NaN`.
    ///
    /// # Panics
    /// Panics if the query was not aligned.
    pub fn aligned(self) -> (Vec<Timestamp>, Vec<Vec<f64>>) {
        match self.shape {
            ResultData::Aligned { grid, matrix } => (grid, matrix),
            other => panic!("aligned() on a {} result", shape_name(&other)),
        }
    }
}

fn shape_name(d: &ResultData) -> &'static str {
    match d {
        ResultData::Series(_) => "readings",
        ResultData::Buckets(_) => "buckets",
        ResultData::Scalars(_) => "scalars",
        ResultData::Aligned { .. } => "aligned",
    }
}

/// Read-side engine over a [`TimeSeriesStore`].
///
/// Records `query_total` / `query_scan_ns` / `query_readings_scanned_total`
/// into the store's metrics registry for every executed [`Query`].
pub struct QueryEngine<'a> {
    store: &'a TimeSeriesStore,
    registry: Option<SensorRegistry>,
    m_query_total: Counter,
    m_readings_scanned: Counter,
    m_scan_ns: Histogram,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine borrowing `store`. Pattern selectors additionally
    /// need [`Self::with_registry`].
    pub fn new(store: &'a TimeSeriesStore) -> Self {
        let m = store.metrics();
        QueryEngine {
            store,
            registry: None,
            m_query_total: m.counter("query_total", &[]),
            m_readings_scanned: m.counter("query_readings_scanned_total", &[]),
            m_scan_ns: m.histogram("query_scan_ns", &[]),
        }
    }

    /// Attaches a sensor registry so queries can select by name pattern.
    pub fn with_registry(mut self, registry: SensorRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    fn resolve(&self, selector: SensorSelector) -> Vec<SensorId> {
        match selector {
            SensorSelector::Ids(ids) => ids,
            SensorSelector::Pattern(pattern) => {
                let registry = self.registry.as_ref().unwrap_or_else(|| {
                    panic!(
                        "pattern query {:?} needs a registry; build the engine with \
                         QueryEngine::new(store).with_registry(registry)",
                        pattern.as_str()
                    )
                });
                let mut ids = registry.matching(&pattern);
                ids.sort_unstable_by_key(|s| s.index());
                ids
            }
        }
    }

    fn execute(&self, query: Query) -> QueryResult {
        let timer = self.m_scan_ns.start_timer();
        let sensors = self.resolve(query.selector);
        let range = query.range;
        let per_sensor: Vec<Vec<Reading>> = sensors
            .par_iter()
            .map(|&s| {
                let readings = self.store.range(s, range.start, range.end);
                if query.rate {
                    rate_readings(&readings)
                } else {
                    readings
                }
            })
            .collect();
        self.m_readings_scanned
            .add(per_sensor.iter().map(|r| r.len() as u64).sum());
        let shape = match query.shape {
            Shape::Readings => ResultData::Series(per_sensor),
            Shape::Buckets { bucket_ms, agg } => ResultData::Buckets(
                per_sensor
                    .par_iter()
                    .map(|r| bucket_readings(r, bucket_ms, agg))
                    .collect(),
            ),
            Shape::Scalars(agg) => ResultData::Scalars(
                per_sensor
                    .iter()
                    .map(|r| aggregate_readings(r, agg))
                    .collect(),
            ),
            Shape::Aligned { bucket_ms } => {
                let buckets: Vec<Vec<Bucket>> = per_sensor
                    .par_iter()
                    .map(|r| bucket_readings(r, bucket_ms, Aggregation::Mean))
                    .collect();
                let (grid, matrix) = align_buckets(&buckets);
                ResultData::Aligned { grid, matrix }
            }
        };
        self.m_query_total.inc();
        self.m_scan_ns.observe_timer(timer);
        QueryResult { sensors, shape }
    }

    /// Raw readings in `range`, chronological.
    #[deprecated(since = "0.2.0", note = "use `Query::sensors(sensor).range(range).run(&engine).readings()`")]
    pub fn range(&self, sensor: SensorId, range: TimeRange) -> Vec<Reading> {
        Query::sensors(sensor).range(range).run(self).readings()
    }

    /// Applies `agg` to the readings of `sensor` within `range`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Query::sensors(sensor).range(range).aggregate(agg).run(&engine).scalar()`"
    )]
    pub fn aggregate(&self, sensor: SensorId, range: TimeRange, agg: Aggregation) -> Option<f64> {
        Query::sensors(sensor).range(range).aggregate(agg).run(self).scalar()
    }

    /// Aggregates many sensors in parallel; output order matches input order.
    #[deprecated(
        since = "0.2.0",
        note = "use `Query::sensors(sensors).range(range).aggregate(agg).run(&engine).scalars()`"
    )]
    pub fn aggregate_many(
        &self,
        sensors: &[SensorId],
        range: TimeRange,
        agg: Aggregation,
    ) -> Vec<Option<f64>> {
        Query::sensors(sensors).range(range).aggregate(agg).run(self).scalars()
    }

    /// Downsamples `sensor` over `range` into fixed `bucket_ms`-wide buckets.
    #[deprecated(
        since = "0.2.0",
        note = "use `Query::sensors(sensor).range(range).downsample(bucket_ms, agg).run(&engine).buckets()`"
    )]
    pub fn downsample(
        &self,
        sensor: SensorId,
        range: TimeRange,
        bucket_ms: u64,
        agg: Aggregation,
    ) -> Vec<Bucket> {
        Query::sensors(sensor)
            .range(range)
            .downsample(bucket_ms, agg)
            .run(self)
            .buckets()
    }

    /// Converts a cumulative counter to a rate series.
    #[deprecated(
        since = "0.2.0",
        note = "use `Query::sensors(sensor).range(range).rate().run(&engine).readings()`"
    )]
    pub fn rate(&self, sensor: SensorId, range: TimeRange) -> Vec<Reading> {
        Query::sensors(sensor).range(range).rate().run(self).readings()
    }

    /// Aligns several sensors onto a common bucket grid.
    #[deprecated(
        since = "0.2.0",
        note = "use `Query::sensors(sensors).range(range).align(bucket_ms).run(&engine).aligned()`"
    )]
    pub fn align(
        &self,
        sensors: &[SensorId],
        range: TimeRange,
        bucket_ms: u64,
    ) -> (Vec<Timestamp>, Vec<Vec<f64>>) {
        Query::sensors(sensors).range(range).align(bucket_ms).run(self).aligned()
    }
}

/// Downsamples an already-materialised chronological slice into fixed
/// `bucket_ms`-wide buckets, omitting empty ones.
///
/// # Panics
/// Panics if `bucket_ms == 0`.
pub fn bucket_readings(readings: &[Reading], bucket_ms: u64, agg: Aggregation) -> Vec<Bucket> {
    assert!(bucket_ms > 0, "bucket width must be positive");
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < readings.len() {
        let bstart = readings[i].ts.bucket(bucket_ms);
        let bend = bstart + bucket_ms;
        let mut j = i;
        while j < readings.len() && readings[j].ts < bend {
            j += 1;
        }
        let slice = &readings[i..j];
        if let Some(value) = aggregate_readings(slice, agg) {
            out.push(Bucket {
                start: bstart,
                value,
                count: slice.len(),
            });
        }
        i = j;
    }
    out
}

/// Derives a rate series from a cumulative-counter slice: each output
/// reading is `(vᵢ₊₁ - vᵢ) / Δt_seconds` stamped at the later timestamp;
/// counter resets (negative deltas) yield no sample.
pub fn rate_readings(readings: &[Reading]) -> Vec<Reading> {
    readings
        .windows(2)
        .filter_map(|w| {
            let dt = w[1].ts.millis_since(w[0].ts) as f64 / 1_000.0;
            let dv = w[1].value - w[0].value;
            (dt > 0.0 && dv >= 0.0).then(|| Reading::new(w[1].ts, dv / dt))
        })
        .collect()
}

/// Merges per-sensor bucket lists onto the union grid of their starts.
fn align_buckets(per_sensor: &[Vec<Bucket>]) -> (Vec<Timestamp>, Vec<Vec<f64>>) {
    let mut grid: Vec<Timestamp> = per_sensor
        .iter()
        .flat_map(|bs| bs.iter().map(|b| b.start))
        .collect();
    grid.sort_unstable();
    grid.dedup();
    let matrix = per_sensor
        .par_iter()
        .map(|buckets| {
            let mut row = vec![f64::NAN; grid.len()];
            for b in buckets {
                if let Ok(idx) = grid.binary_search(&b.start) {
                    row[idx] = b.value;
                }
            }
            row
        })
        .collect();
    (grid, matrix)
}

/// Applies `agg` to an already-materialised chronological slice.
///
/// Exposed so analytics code can aggregate windows it has already fetched.
pub fn aggregate_readings(readings: &[Reading], agg: Aggregation) -> Option<f64> {
    if readings.is_empty() {
        return None;
    }
    let n = readings.len() as f64;
    Some(match agg {
        Aggregation::Mean => readings.iter().map(|r| r.value).sum::<f64>() / n,
        Aggregation::Min => readings.iter().map(|r| r.value).fold(f64::INFINITY, f64::min),
        Aggregation::Max => readings
            .iter()
            .map(|r| r.value)
            .fold(f64::NEG_INFINITY, f64::max),
        Aggregation::Sum => readings.iter().map(|r| r.value).sum(),
        Aggregation::Count => n,
        Aggregation::StdDev => {
            let mean = readings.iter().map(|r| r.value).sum::<f64>() / n;
            (readings.iter().map(|r| (r.value - mean).powi(2)).sum::<f64>() / n).sqrt()
        }
        Aggregation::Last => readings.last().unwrap().value,
        Aggregation::First => readings.first().unwrap().value,
        Aggregation::Quantile(q) => {
            let q = q.clamp(0.0, 1.0);
            let mut vals: Vec<f64> = readings.iter().map(|r| r.value).collect();
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            // Linear interpolation between closest ranks.
            let pos = q * (vals.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                vals[lo]
            } else {
                vals[lo] + (pos - lo as f64) * (vals[hi] - vals[lo])
            }
        }
        Aggregation::TimeWeightedMean => {
            if readings.len() == 1 {
                readings[0].value
            } else {
                let mut weighted = 0.0;
                let mut total_w = 0.0;
                for w in readings.windows(2) {
                    let dt = w[1].ts.millis_since(w[0].ts) as f64;
                    weighted += w[0].value * dt;
                    total_w += dt;
                }
                if total_w == 0.0 {
                    readings.iter().map(|r| r.value).sum::<f64>() / n
                } else {
                    weighted / total_w
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(series: &[(u64, f64)]) -> (TimeSeriesStore, SensorId) {
        let store = TimeSeriesStore::with_capacity(1024);
        let s = SensorId(0);
        for &(t, v) in series {
            store.insert(s, Reading::new(Timestamp::from_millis(t), v));
        }
        (store, s)
    }

    fn agg(q: &QueryEngine<'_>, s: SensorId, range: TimeRange, a: Aggregation) -> Option<f64> {
        Query::sensors(s).range(range).aggregate(a).run(q).scalar()
    }

    #[test]
    fn scalar_aggregations() {
        let (store, s) = store_with(&[(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)]);
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        assert_eq!(agg(&q, s, all, Aggregation::Mean), Some(2.5));
        assert_eq!(agg(&q, s, all, Aggregation::Min), Some(1.0));
        assert_eq!(agg(&q, s, all, Aggregation::Max), Some(4.0));
        assert_eq!(agg(&q, s, all, Aggregation::Sum), Some(10.0));
        assert_eq!(agg(&q, s, all, Aggregation::Count), Some(4.0));
        assert_eq!(agg(&q, s, all, Aggregation::First), Some(1.0));
        assert_eq!(agg(&q, s, all, Aggregation::Last), Some(4.0));
        let sd = agg(&q, s, all, Aggregation::StdDev).unwrap();
        assert!((sd - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_range_aggregates_to_none() {
        let (store, s) = store_with(&[(0, 1.0)]);
        let q = QueryEngine::new(&store);
        let r = TimeRange::new(Timestamp::from_millis(100), Timestamp::from_millis(200));
        assert_eq!(agg(&q, s, r, Aggregation::Mean), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let (store, s) = store_with(&[(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)]);
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(0.0)), Some(10.0));
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(1.0)), Some(40.0));
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(0.5)), Some(25.0));
        // Out-of-range q is clamped.
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(2.0)), Some(40.0));
    }

    #[test]
    fn time_weighted_mean_weights_by_holding_time() {
        // Value 0 held for 90ms, value 10 held for 10ms (last sample has no
        // holding time and is excluded as weight).
        let (store, s) = store_with(&[(0, 0.0), (90, 10.0), (100, 10.0)]);
        let q = QueryEngine::new(&store);
        let twm = agg(&q, s, TimeRange::all(), Aggregation::TimeWeightedMean).unwrap();
        assert!((twm - 1.0).abs() < 1e-12, "got {twm}");
    }

    #[test]
    fn downsample_means_per_bucket_and_skips_gaps() {
        let (store, s) = store_with(&[(0, 1.0), (500, 3.0), (1_000, 5.0), (3_000, 7.0)]);
        let q = QueryEngine::new(&store);
        let buckets = Query::sensors(s)
            .downsample(1_000, Aggregation::Mean)
            .run(&q)
            .buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].start, Timestamp::ZERO);
        assert_eq!(buckets[0].value, 2.0);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[1].value, 5.0);
        assert_eq!(buckets[2].start, Timestamp::from_millis(3_000));
    }

    #[test]
    fn rate_derives_watts_from_joules() {
        // 100 J at t=0s, 300 J at t=2s → 100 W; reset to 0 → skipped.
        let (store, s) = store_with(&[(0, 100.0), (2_000, 300.0), (3_000, 0.0), (4_000, 50.0)]);
        let q = QueryEngine::new(&store);
        let rates = Query::sensors(s).rate().run(&q).readings();
        assert_eq!(rates.len(), 2);
        assert!((rates[0].value - 100.0).abs() < 1e-12);
        assert!((rates[1].value - 50.0).abs() < 1e-12);
    }

    #[test]
    fn align_produces_common_grid_with_nans() {
        let store = TimeSeriesStore::with_capacity(64);
        let a = SensorId(0);
        let b = SensorId(1);
        store.insert(a, Reading::new(Timestamp::from_millis(0), 1.0));
        store.insert(a, Reading::new(Timestamp::from_millis(1_000), 2.0));
        store.insert(b, Reading::new(Timestamp::from_millis(1_000), 10.0));
        store.insert(b, Reading::new(Timestamp::from_millis(2_000), 20.0));
        let q = QueryEngine::new(&store);
        let (grid, m) = Query::sensors([a, b]).align(1_000).run(&q).aligned();
        assert_eq!(grid.len(), 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[0][1], 2.0);
        assert!(m[0][2].is_nan());
        assert!(m[1][0].is_nan());
        assert_eq!(m[1][1], 10.0);
        assert_eq!(m[1][2], 20.0);
    }

    #[test]
    fn aggregate_many_preserves_order() {
        let store = TimeSeriesStore::with_capacity(8);
        for i in 0..4u32 {
            store.insert(SensorId(i), Reading::new(Timestamp::ZERO, i as f64));
        }
        let q = QueryEngine::new(&store);
        let sensors: Vec<SensorId> = (0..4).map(SensorId).collect();
        let out = Query::sensors(&sensors)
            .aggregate(Aggregation::Last)
            .run(&q)
            .scalars();
        assert_eq!(out, vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0)]);
    }

    #[test]
    fn trailing_range_includes_now() {
        let (store, s) = store_with(&[(900, 1.0), (1_000, 2.0)]);
        let q = QueryEngine::new(&store);
        let r = TimeRange::trailing(Timestamp::from_millis(1_000), 50);
        assert_eq!(agg(&q, s, r, Aggregation::Count), Some(1.0));
    }

    #[test]
    fn pattern_selector_resolves_via_registry_in_id_order() {
        use crate::sensor::{SensorKind, SensorRegistry, Unit};
        let reg = SensorRegistry::new();
        let p0 = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let t0 = reg.register("/hw/node0/temp", SensorKind::Temperature, Unit::Celsius);
        let p1 = reg.register("/hw/node1/power", SensorKind::Power, Unit::Watts);
        let store = TimeSeriesStore::with_capacity(8);
        for (i, s) in [p0, t0, p1].iter().enumerate() {
            store.insert(*s, Reading::new(Timestamp::ZERO, i as f64));
        }
        let q = QueryEngine::new(&store).with_registry(reg);
        let res = Query::sensors("/hw/*/power")
            .aggregate(Aggregation::Last)
            .run(&q);
        assert_eq!(res.sensors(), &[p0, p1]);
        assert_eq!(res.scalars(), vec![Some(0.0), Some(2.0)]);
    }

    #[test]
    #[should_panic(expected = "needs a registry")]
    fn pattern_selector_without_registry_panics() {
        let store = TimeSeriesStore::with_capacity(8);
        let q = QueryEngine::new(&store);
        let _ = Query::sensors("/hw/**").run(&q);
    }

    #[test]
    #[should_panic(expected = "already shaped")]
    fn double_shaping_panics() {
        let _ = Query::sensors(SensorId(0))
            .aggregate(Aggregation::Mean)
            .downsample(10, Aggregation::Mean);
    }

    #[test]
    #[should_panic(expected = "use scalars()")]
    fn scalar_on_multi_sensor_result_panics() {
        let store = TimeSeriesStore::with_capacity(8);
        let q = QueryEngine::new(&store);
        store.insert(SensorId(0), Reading::new(Timestamp::ZERO, 1.0));
        store.insert(SensorId(1), Reading::new(Timestamp::ZERO, 2.0));
        let _ = Query::sensors([SensorId(0), SensorId(1)])
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalar();
    }

    #[test]
    #[should_panic(expected = "on a scalars result")]
    fn shape_mismatch_accessor_panics() {
        let store = TimeSeriesStore::with_capacity(8);
        let q = QueryEngine::new(&store);
        let _ = Query::sensors(SensorId(0))
            .aggregate(Aggregation::Mean)
            .run(&q)
            .readings();
    }

    #[test]
    fn rate_composes_with_downsample() {
        // Cumulative joules sampled every second; rate → 100 W flat, then
        // bucketed into 2s means.
        let (store, s) = store_with(&[(0, 0.0), (1_000, 100.0), (2_000, 200.0), (3_000, 300.0)]);
        let q = QueryEngine::new(&store);
        let buckets = Query::sensors(s)
            .rate()
            .downsample(2_000, Aggregation::Mean)
            .run(&q)
            .buckets();
        assert!(!buckets.is_empty());
        for b in &buckets {
            assert!((b.value - 100.0).abs() < 1e-9, "got {}", b.value);
        }
    }

    #[test]
    fn queries_record_read_path_metrics() {
        use crate::metrics::MetricsRegistry;
        let m = MetricsRegistry::new();
        let store = TimeSeriesStore::with_capacity_shards_metrics(16, 1, m.clone());
        let s = SensorId(0);
        for t in 0..10u64 {
            store.insert(s, Reading::new(Timestamp::from_millis(t), t as f64));
        }
        let q = QueryEngine::new(&store);
        let _ = Query::sensors(s).aggregate(Aggregation::Mean).run(&q).scalar();
        let _ = Query::sensors(s).run(&q).readings();
        let snap = m.snapshot();
        assert_eq!(snap.counter("query_total"), Some(2));
        assert_eq!(snap.counter("query_readings_scanned_total"), Some(20));
        assert_eq!(snap.histogram("query_scan_ns").unwrap().count, 2);
    }

    /// The deprecated per-shape methods must stay behaviourally identical to
    /// the builder they delegate to.
    #[allow(deprecated)]
    #[test]
    fn deprecated_delegates_agree_with_builder() {
        let (store, s) = store_with(&[(0, 1.0), (500, 3.0), (1_000, 5.0), (3_000, 7.0)]);
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        assert_eq!(
            q.aggregate(s, all, Aggregation::Mean),
            Query::sensors(s).aggregate(Aggregation::Mean).run(&q).scalar()
        );
        assert_eq!(q.range(s, all), Query::sensors(s).run(&q).readings());
        assert_eq!(
            q.downsample(s, all, 1_000, Aggregation::Mean),
            Query::sensors(s).downsample(1_000, Aggregation::Mean).run(&q).buckets()
        );
        assert_eq!(q.rate(s, all), Query::sensors(s).rate().run(&q).readings());
        assert_eq!(
            q.aggregate_many(&[s], all, Aggregation::Sum),
            Query::sensors([s]).aggregate(Aggregation::Sum).run(&q).scalars()
        );
        assert_eq!(
            q.align(&[s], all, 1_000),
            Query::sensors([s]).align(1_000).run(&q).aligned()
        );
    }
}
