//! Analytical read path over the time-series store.
//!
//! The read API is one fluent builder: [`Query`] names *what* to read (by
//! sensor ids or by pattern), *when* (a [`TimeRange`]), and *what shape* the
//! answer takes — raw readings, fixed-width [`Bucket`]s, per-sensor scalars,
//! or a timestamp-aligned matrix (the multi-dimensional input the paper's
//! diagnostic techniques ingest). All of it composes into a single planned
//! scan executed by [`Query::run`] against a [`QueryEngine`]:
//!
//! ```
//! use oda_telemetry::prelude::*;
//! # let store = TimeSeriesStore::with_capacity(16);
//! # let s = SensorId(0);
//! # store.insert(s, Reading::new(Timestamp::ZERO, 1.0));
//! let engine = QueryEngine::new(&store);
//! let mean = Query::sensors(s)
//!     .range(TimeRange::all())
//!     .aggregate(Aggregation::Mean)
//!     .run(&engine)
//!     .scalar();
//! assert_eq!(mean, Some(1.0));
//! ```
//!
//! Multi-sensor scans fan out across a Rayon thread pool because fleet-wide
//! queries (thousands of node sensors) dominate read volume. Every executed
//! query records `query_total`, `query_scan_ns` and
//! `query_readings_scanned_total` into the store's metrics registry.
//!
//! ## Rollup-tier planning
//!
//! For the decomposable aggregations (`Mean`/`Min`/`Max`/`Sum`/`Count`/
//! `First`/`Last`) the planner consults the store's rollup tiers
//! ([`TimeSeriesStore::tier_scan`]) instead of rescanning raw readings:
//!
//! * [`Query::aggregate`] — any tier may serve the aligned core of the range;
//! * [`Query::downsample`] / [`Query::align`] — only tiers whose bucket
//!   width **divides** the requested width are eligible (both bucket from
//!   epoch zero, so each request bucket is a whole number of tier buckets);
//! * the **coarsest** eligible tier wins; unaligned range edges are scanned
//!   raw and merged, so answers are identical to a full raw scan.
//!
//! Rate queries ([`Query::rate`]), non-decomposable aggregations
//! (`StdDev`/`Quantile`/`TimeWeightedMean`) and [`Query::raw_scan`] always
//! scan raw. Planner outcomes are recorded as `query_tier_hit_total` /
//! `query_tier_miss_total` / `query_readings_avoided_total` /
//! `query_rollup_buckets_scanned_total`.
//!
//! The former method-per-shape API (`range`/`aggregate`/`downsample`/...)
//! has been removed; the builder is the only query surface. `odalint`'s
//! `deprecated-api` rule keeps the removed names from coming back.

use crate::metrics::{Counter, Histogram};
use crate::pattern::SensorPattern;
use crate::reading::{Reading, Timestamp};
use crate::sensor::{SensorId, SensorRegistry};
use crate::storage::codec::fnv1a64;
use crate::store::{RollupBucket, TierScanResult, TimeSeriesStore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize, Value};

/// Half-open query interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeRange {
    /// The full axis.
    pub fn all() -> Self {
        TimeRange {
            start: Timestamp::ZERO,
            end: Timestamp::MAX,
        }
    }

    /// `[start, end)`; callers must ensure `start <= end` (an inverted range
    /// is simply empty).
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeRange { start, end }
    }

    /// The trailing window of `window_ms` ending at `now` (exclusive of
    /// `now` itself plus one, i.e. `[now - window, now]` behaves as expected
    /// for sampled data).
    pub fn trailing(now: Timestamp, window_ms: u64) -> Self {
        TimeRange {
            start: now - window_ms,
            end: now + 1,
        }
    }

    /// Width in milliseconds (saturating).
    pub fn width_ms(&self) -> u64 {
        self.end.millis_since(self.start)
    }
}

/// Scalar aggregation functions over a range of readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean of values.
    Mean,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Sum of values.
    Sum,
    /// Number of readings, as f64.
    Count,
    /// Population standard deviation.
    StdDev,
    /// Last value in the range.
    Last,
    /// First value in the range.
    First,
    /// Exact quantile `q` in `0..=1` (sorts the window; fine for the window
    /// sizes dashboards use — streaming quantiles live in `oda-analytics`).
    Quantile(f64),
    /// Time-weighted mean: each value weighted by the duration until the next
    /// sample; the final sample (which has no successor) is weighted by the
    /// median inter-sample gap. The natural aggregate for
    /// irregularly-sampled power/temp data.
    TimeWeightedMean,
}

/// One downsampled bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket start (aligned to the bucket width).
    pub start: Timestamp,
    /// Aggregated value of the readings falling in the bucket.
    pub value: f64,
    /// Number of raw readings aggregated.
    pub count: usize,
}

/// What a [`Query`] selects: explicit sensor ids or a name pattern resolved
/// against a registry at execution time.
#[derive(Debug, Clone)]
pub enum SensorSelector {
    /// Explicit ids, scanned in the given order.
    Ids(Vec<SensorId>),
    /// All sensors whose name matches, in ascending id order (deterministic).
    /// Requires an engine built with [`QueryEngine::with_registry`].
    Pattern(SensorPattern),
}

impl From<SensorId> for SensorSelector {
    fn from(id: SensorId) -> Self {
        SensorSelector::Ids(vec![id])
    }
}

impl From<Vec<SensorId>> for SensorSelector {
    fn from(ids: Vec<SensorId>) -> Self {
        SensorSelector::Ids(ids)
    }
}

impl From<&Vec<SensorId>> for SensorSelector {
    fn from(ids: &Vec<SensorId>) -> Self {
        SensorSelector::Ids(ids.clone())
    }
}

impl From<&[SensorId]> for SensorSelector {
    fn from(ids: &[SensorId]) -> Self {
        SensorSelector::Ids(ids.to_vec())
    }
}

impl<const N: usize> From<[SensorId; N]> for SensorSelector {
    fn from(ids: [SensorId; N]) -> Self {
        SensorSelector::Ids(ids.to_vec())
    }
}

impl<const N: usize> From<&[SensorId; N]> for SensorSelector {
    fn from(ids: &[SensorId; N]) -> Self {
        SensorSelector::Ids(ids.to_vec())
    }
}

impl From<SensorPattern> for SensorSelector {
    fn from(pattern: SensorPattern) -> Self {
        SensorSelector::Pattern(pattern)
    }
}

impl From<&SensorPattern> for SensorSelector {
    fn from(pattern: &SensorPattern) -> Self {
        SensorSelector::Pattern(pattern.clone())
    }
}

impl From<&str> for SensorSelector {
    fn from(pattern: &str) -> Self {
        SensorSelector::Pattern(SensorPattern::new(pattern))
    }
}

/// Output shape a query has been composed into.
///
/// Crate-visible so the cluster coordinator can split a query into
/// per-shard sub-queries of the same shape and reassemble the partials
/// (see [`crate::cluster`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Shape {
    Readings,
    Buckets { bucket_ms: u64, agg: Aggregation },
    Scalars(Aggregation),
    Aligned { bucket_ms: u64 },
}

/// A composable read over the store: selector + range + optional rate
/// derivation + output shape, planned as one scan.
///
/// Build with [`Query::sensors`], refine with the chainable methods, execute
/// with [`Query::run`]. At most one shaping method
/// ([`downsample`](Self::downsample) / [`aggregate`](Self::aggregate) /
/// [`align`](Self::align)) may be applied; composing two panics, since the
/// second would silently discard the first.
#[derive(Debug, Clone)]
#[must_use = "a Query does nothing until .run(&engine)"]
pub struct Query {
    pub(crate) selector: SensorSelector,
    pub(crate) range: TimeRange,
    pub(crate) rate: bool,
    pub(crate) raw_only: bool,
    pub(crate) shape: Shape,
}

impl Query {
    /// Starts a query over `sensors`: a [`SensorId`], a slice/`Vec` of ids,
    /// a [`SensorPattern`], or a pattern string like `"/hw/*/power"`.
    pub fn sensors(sensors: impl Into<SensorSelector>) -> Self {
        Query {
            selector: sensors.into(),
            range: TimeRange::all(),
            rate: false,
            raw_only: false,
            shape: Shape::Readings,
        }
    }

    /// Restricts the scan to `range` (default: the full axis).
    pub fn range(mut self, range: TimeRange) -> Self {
        self.range = range;
        self
    }

    /// Derives a rate series from cumulative counters before shaping: each
    /// reading becomes `(vᵢ₊₁ - vᵢ) / Δt_seconds` stamped at the later
    /// timestamp; counter resets (negative deltas) emit a rate of `0` at
    /// the reset point, see [`rate_readings`].
    pub fn rate(mut self) -> Self {
        self.rate = true;
        self
    }

    /// Forces a raw-readings scan even where a rollup tier could serve the
    /// requested shape exactly — the ablation baseline for measuring what
    /// the tiers save, also useful when debugging the planner itself.
    pub fn raw_scan(mut self) -> Self {
        self.raw_only = true;
        self
    }

    fn set_shape(mut self, shape: Shape) -> Self {
        assert!(
            matches!(self.shape, Shape::Readings),
            "query is already shaped ({:?}); use at most one of downsample/aggregate/align",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Downsamples each sensor into fixed `bucket_ms`-wide [`Bucket`]s,
    /// aggregating each bucket with `agg`. Empty buckets are omitted.
    ///
    /// # Panics
    /// Panics if `bucket_ms == 0` or the query is already shaped.
    pub fn downsample(self, bucket_ms: u64, agg: Aggregation) -> Self {
        assert!(bucket_ms > 0, "bucket width must be positive");
        self.set_shape(Shape::Buckets { bucket_ms, agg })
    }

    /// Reduces each sensor's readings to one scalar with `agg` (`None` for
    /// sensors with no readings in range).
    ///
    /// # Panics
    /// Panics if the query is already shaped.
    pub fn aggregate(self, agg: Aggregation) -> Self {
        self.set_shape(Shape::Scalars(agg))
    }

    /// Aligns all selected sensors onto a common `bucket_ms` grid of
    /// per-bucket means — the standard preprocessing step for multivariate
    /// diagnostics.
    ///
    /// # NaN semantics
    /// A cell where a sensor has no sample in that bucket is `f64::NAN`,
    /// meaning **"no data"**, never zero. `NaN` is deliberately not
    /// interpolated here: consumers decide how to treat gaps. Every
    /// estimator in `oda-analytics` skips non-finite cells (pairwise for
    /// correlation); any new consumer of [`QueryResult::aligned`] must
    /// either filter with `f64::is_finite` or use those NaN-aware
    /// estimators, or a single ragged sensor will poison its output.
    ///
    /// # Panics
    /// Panics if `bucket_ms == 0` or the query is already shaped.
    pub fn align(self, bucket_ms: u64) -> Self {
        assert!(bucket_ms > 0, "bucket width must be positive");
        self.set_shape(Shape::Aligned { bucket_ms })
    }

    /// Executes the query as one planned scan.
    ///
    /// # Panics
    /// Panics if the selector is a pattern and `engine` has no registry
    /// attached (see [`QueryEngine::with_registry`]).
    pub fn run(self, engine: &QueryEngine<'_>) -> QueryResult {
        engine.execute(self)
    }

    /// Renders the query as its **canonical wire representation** — the one
    /// JSON form shared by the HTTP frontend (`oda-serve`) and the
    /// result-cache key normalization. Every field is emitted, in a fixed
    /// order, so two semantically identical queries render byte-identically:
    ///
    /// ```json
    /// {"selector":{"ids":[0,3]},
    ///  "range":{"start_ms":0,"end_ms":18446744073709551615},
    ///  "rate":false,"raw_scan":false,
    ///  "shape":{"kind":"scalars","agg":"mean"}}
    /// ```
    ///
    /// Selectors are `{"ids":[u32...]}` or `{"pattern":"/hw/*/power"}`;
    /// shapes are `{"kind":"readings"}`, `{"kind":"buckets","bucket_ms":w,
    /// "agg":A}`, `{"kind":"scalars","agg":A}` or `{"kind":"aligned",
    /// "bucket_ms":w}`; aggregations are lower-snake-case strings
    /// (`"mean"`, `"time_weighted_mean"`, ...) except `{"quantile":q}`.
    ///
    /// [`Query::from_json`] inverts this exactly, and
    /// `from_json(s)?.to_json()` is the canonical normalization of any
    /// accepted input `s` (key order, omitted defaults, number formatting).
    pub fn to_json(&self) -> String {
        let selector = match &self.selector {
            SensorSelector::Ids(ids) => Value::Object(vec![(
                "ids".to_string(),
                Value::Array(ids.iter().map(|s| Value::U64(s.0 as u64)).collect()),
            )]),
            SensorSelector::Pattern(p) => Value::Object(vec![(
                "pattern".to_string(),
                Value::Str(p.as_str().to_string()),
            )]),
        };
        let range = Value::Object(vec![
            ("start_ms".to_string(), Value::U64(self.range.start.0)),
            ("end_ms".to_string(), Value::U64(self.range.end.0)),
        ]);
        let shape = match self.shape {
            Shape::Readings => Value::Object(vec![kind("readings")]),
            Shape::Buckets { bucket_ms, agg } => Value::Object(vec![
                kind("buckets"),
                ("bucket_ms".to_string(), Value::U64(bucket_ms)),
                ("agg".to_string(), agg_to_wire(agg)),
            ]),
            Shape::Scalars(agg) => {
                Value::Object(vec![kind("scalars"), ("agg".to_string(), agg_to_wire(agg))])
            }
            Shape::Aligned { bucket_ms } => Value::Object(vec![
                kind("aligned"),
                ("bucket_ms".to_string(), Value::U64(bucket_ms)),
            ]),
        };
        let doc = Value::Object(vec![
            ("selector".to_string(), selector),
            ("range".to_string(), range),
            ("rate".to_string(), Value::Bool(self.rate)),
            ("raw_scan".to_string(), Value::Bool(self.raw_only)),
            ("shape".to_string(), shape),
        ]);
        serde_json::to_string(&doc).unwrap_or_default()
    }

    /// Parses the wire representation produced by [`Query::to_json`].
    ///
    /// `selector` is required; `range` defaults to [`TimeRange::all`],
    /// `rate` and `raw_scan` to `false`, and `shape` to raw readings.
    /// Unknown top-level or shape keys are rejected (a typo like
    /// `"agregation"` must not silently fall back to defaults), as are
    /// out-of-range numbers and a zero `bucket_ms`.
    pub fn from_json(s: &str) -> Result<Query, QueryParseError> {
        let doc = serde_json::from_str(s).map_err(|e| QueryParseError(e.to_string()))?;
        let entries = match &doc {
            Value::Object(entries) => entries,
            _ => return Err(QueryParseError("query must be a JSON object".into())),
        };
        for (k, _) in entries {
            if !matches!(
                k.as_str(),
                "selector" | "range" | "rate" | "raw_scan" | "shape"
            ) {
                return Err(QueryParseError(format!("unknown query field {k:?}")));
            }
        }
        let selector = doc
            .get("selector")
            .ok_or_else(|| QueryParseError("missing required field \"selector\"".into()))?;
        let selector = selector_from_wire(selector)?;
        let range = match doc.get("range") {
            Some(r) => range_from_wire(r)?,
            None => TimeRange::all(),
        };
        let rate = match doc.get("rate") {
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(QueryParseError("\"rate\" must be a boolean".into())),
            None => false,
        };
        let raw_only = match doc.get("raw_scan") {
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(QueryParseError("\"raw_scan\" must be a boolean".into())),
            None => false,
        };
        let shape = match doc.get("shape") {
            Some(s) => shape_from_wire(s)?,
            None => Shape::Readings,
        };
        Ok(Query {
            selector,
            range,
            rate,
            raw_only,
            shape,
        })
    }
}

/// Error from [`Query::from_json`]: what made the document unacceptable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError(String);

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid query: {}", self.0)
    }
}

impl std::error::Error for QueryParseError {}

fn kind(k: &str) -> (String, Value) {
    ("kind".to_string(), Value::Str(k.to_string()))
}

fn agg_to_wire(agg: Aggregation) -> Value {
    let name = match agg {
        Aggregation::Mean => "mean",
        Aggregation::Min => "min",
        Aggregation::Max => "max",
        Aggregation::Sum => "sum",
        Aggregation::Count => "count",
        Aggregation::StdDev => "std_dev",
        Aggregation::Last => "last",
        Aggregation::First => "first",
        Aggregation::TimeWeightedMean => "time_weighted_mean",
        Aggregation::Quantile(q) => {
            return Value::Object(vec![("quantile".to_string(), Value::F64(q))])
        }
    };
    Value::Str(name.to_string())
}

fn agg_from_wire(v: &Value) -> Result<Aggregation, QueryParseError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "mean" => Ok(Aggregation::Mean),
            "min" => Ok(Aggregation::Min),
            "max" => Ok(Aggregation::Max),
            "sum" => Ok(Aggregation::Sum),
            "count" => Ok(Aggregation::Count),
            "std_dev" => Ok(Aggregation::StdDev),
            "last" => Ok(Aggregation::Last),
            "first" => Ok(Aggregation::First),
            "time_weighted_mean" => Ok(Aggregation::TimeWeightedMean),
            other => Err(QueryParseError(format!("unknown aggregation {other:?}"))),
        },
        Value::Object(entries) => match entries.as_slice() {
            [(k, q)] if k == "quantile" => {
                let q = wire_f64(q)
                    .ok_or_else(|| QueryParseError("\"quantile\" must be a number".into()))?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(QueryParseError(format!("quantile {q} outside 0..=1")));
                }
                Ok(Aggregation::Quantile(q))
            }
            _ => Err(QueryParseError(
                "aggregation object must be exactly {\"quantile\": q}".into(),
            )),
        },
        _ => Err(QueryParseError(
            "aggregation must be a string or {\"quantile\": q}".into(),
        )),
    }
}

fn selector_from_wire(v: &Value) -> Result<SensorSelector, QueryParseError> {
    let entries = match v {
        Value::Object(entries) => entries,
        _ => return Err(QueryParseError("\"selector\" must be an object".into())),
    };
    match entries.as_slice() {
        [(k, Value::Array(ids))] if k == "ids" => {
            let ids = ids
                .iter()
                .map(|id| match wire_u64(id) {
                    Some(n) if n <= u32::MAX as u64 => Ok(SensorId(n as u32)),
                    _ => Err(QueryParseError("sensor ids must be u32 integers".into())),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SensorSelector::Ids(ids))
        }
        [(k, Value::Str(p))] if k == "pattern" => {
            Ok(SensorSelector::Pattern(SensorPattern::new(p)))
        }
        _ => Err(QueryParseError(
            "selector must be exactly {\"ids\":[...]} or {\"pattern\":\"...\"}".into(),
        )),
    }
}

fn range_from_wire(v: &Value) -> Result<TimeRange, QueryParseError> {
    let entries = match v {
        Value::Object(entries) => entries,
        _ => return Err(QueryParseError("\"range\" must be an object".into())),
    };
    for (k, _) in entries {
        if !matches!(k.as_str(), "start_ms" | "end_ms") {
            return Err(QueryParseError(format!("unknown range field {k:?}")));
        }
    }
    let field = |name: &str, default: u64| -> Result<u64, QueryParseError> {
        match v.get(name) {
            Some(n) => wire_u64(n)
                .ok_or_else(|| QueryParseError(format!("{name:?} must be a u64 integer"))),
            None => Ok(default),
        }
    };
    let start = field("start_ms", 0)?;
    let end = field("end_ms", u64::MAX)?;
    if start > end {
        return Err(QueryParseError(format!(
            "range start {start} exceeds end {end}"
        )));
    }
    Ok(TimeRange::new(Timestamp(start), Timestamp(end)))
}

fn shape_from_wire(v: &Value) -> Result<Shape, QueryParseError> {
    let entries = match v {
        Value::Object(entries) => entries,
        _ => return Err(QueryParseError("\"shape\" must be an object".into())),
    };
    for (k, _) in entries {
        if !matches!(k.as_str(), "kind" | "bucket_ms" | "agg") {
            return Err(QueryParseError(format!("unknown shape field {k:?}")));
        }
    }
    let kind = match v.get("kind") {
        Some(Value::Str(k)) => k.as_str(),
        _ => return Err(QueryParseError("shape needs a string \"kind\"".into())),
    };
    let bucket_ms = || -> Result<u64, QueryParseError> {
        match v.get("bucket_ms").and_then(wire_u64) {
            Some(w) if w > 0 => Ok(w),
            _ => Err(QueryParseError(
                "shape needs a positive integer \"bucket_ms\"".into(),
            )),
        }
    };
    let agg = || -> Result<Aggregation, QueryParseError> {
        match v.get("agg") {
            Some(a) => agg_from_wire(a),
            None => Err(QueryParseError("shape needs an \"agg\"".into())),
        }
    };
    let reject = |field: &str| -> Result<(), QueryParseError> {
        if v.get(field).is_some() {
            Err(QueryParseError(format!(
                "shape kind {kind:?} does not take {field:?}"
            )))
        } else {
            Ok(())
        }
    };
    match kind {
        "readings" => {
            reject("bucket_ms")?;
            reject("agg")?;
            Ok(Shape::Readings)
        }
        "buckets" => Ok(Shape::Buckets {
            bucket_ms: bucket_ms()?,
            agg: agg()?,
        }),
        "scalars" => {
            reject("bucket_ms")?;
            Ok(Shape::Scalars(agg()?))
        }
        "aligned" => {
            reject("agg")?;
            Ok(Shape::Aligned {
                bucket_ms: bucket_ms()?,
            })
        }
        other => Err(QueryParseError(format!("unknown shape kind {other:?}"))),
    }
}

fn wire_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn wire_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Materialised result of a [`Query`], in the resolved sensor order.
///
/// The typed accessors panic with a descriptive message when called on a
/// result of a different shape — shape is decided at build time, so a
/// mismatch is a programming error, not a data condition.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub(crate) sensors: Vec<SensorId>,
    pub(crate) shape: ResultData,
}

/// Crate-visible so the cluster coordinator can reassemble gathered
/// per-shard partial results into one result bit-identical to unsharded
/// execution (see [`crate::cluster`]).
#[derive(Debug, Clone)]
pub(crate) enum ResultData {
    Series(Vec<Vec<Reading>>),
    Buckets(Vec<Vec<Bucket>>),
    Scalars(Vec<Option<f64>>),
    Aligned {
        grid: Vec<Timestamp>,
        matrix: Vec<Vec<f64>>,
    },
}

impl QueryResult {
    /// The resolved sensors, in result order.
    pub fn sensors(&self) -> &[SensorId] {
        &self.sensors
    }

    /// Number of sensors the query resolved to.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Raw readings of an unshaped single-sensor query.
    ///
    /// # Panics
    /// Panics if the query was shaped or resolved to more than one sensor
    /// (use [`Self::series`] for multi-sensor reads).
    pub fn readings(self) -> Vec<Reading> {
        let mut series = self.series();
        assert!(
            series.len() <= 1,
            "readings() on a {}-sensor result; use series()",
            series.len()
        );
        series.pop().unwrap_or_default()
    }

    /// Per-sensor raw readings of an unshaped query.
    ///
    /// # Panics
    /// Panics if the query was shaped.
    pub fn series(self) -> Vec<Vec<Reading>> {
        match self.shape {
            ResultData::Series(s) => s,
            other => panic!("series() on a {} result", shape_name(&other)),
        }
    }

    /// Buckets of a single-sensor [`Query::downsample`] query.
    ///
    /// # Panics
    /// Panics if the query was not downsampled or resolved to more than one
    /// sensor (use [`Self::bucket_series`]).
    pub fn buckets(self) -> Vec<Bucket> {
        let mut series = self.bucket_series();
        assert!(
            series.len() <= 1,
            "buckets() on a {}-sensor result; use bucket_series()",
            series.len()
        );
        series.pop().unwrap_or_default()
    }

    /// Per-sensor buckets of a [`Query::downsample`] query.
    ///
    /// # Panics
    /// Panics if the query was not downsampled.
    pub fn bucket_series(self) -> Vec<Vec<Bucket>> {
        match self.shape {
            ResultData::Buckets(b) => b,
            other => panic!("bucket_series() on a {} result", shape_name(&other)),
        }
    }

    /// Scalar of a single-sensor [`Query::aggregate`] query (`None` when the
    /// range held no readings).
    ///
    /// # Panics
    /// Panics if the query was not aggregated or resolved to more than one
    /// sensor (use [`Self::scalars`]).
    pub fn scalar(self) -> Option<f64> {
        let mut scalars = self.scalars();
        assert!(
            scalars.len() <= 1,
            "scalar() on a {}-sensor result; use scalars()",
            scalars.len()
        );
        scalars.pop().flatten()
    }

    /// Per-sensor scalars of a [`Query::aggregate`] query, in sensor order.
    ///
    /// # Panics
    /// Panics if the query was not aggregated.
    pub fn scalars(self) -> Vec<Option<f64>> {
        match self.shape {
            ResultData::Scalars(s) => s,
            other => panic!("scalars() on a {} result", shape_name(&other)),
        }
    }

    /// `(bucket_starts, matrix)` of a [`Query::align`] query, where
    /// `matrix[s][b]` is the mean of sensor `s` in bucket `b`, or `NaN`
    /// when that sensor has no sample there ("no data", not zero — see
    /// [`Query::align`] for the full NaN contract).
    ///
    /// # Panics
    /// Panics if the query was not aligned.
    pub fn aligned(self) -> (Vec<Timestamp>, Vec<Vec<f64>>) {
        match self.shape {
            ResultData::Aligned { grid, matrix } => (grid, matrix),
            other => panic!("aligned() on a {} result", shape_name(&other)),
        }
    }

    /// Renders the result as its canonical JSON body — the exact bytes the
    /// HTTP frontend returns and the serving layer's result cache stores,
    /// so "cache hit" and "fresh execution" are comparable byte-for-byte.
    /// The shape is tagged like the query's own wire form; `NaN` cells of
    /// an aligned matrix render as `null` ("no data", see [`Query::align`]).
    pub fn to_json(&self) -> String {
        let sensors = Value::Array(
            self.sensors
                .iter()
                .map(|s| Value::U64(s.0 as u64))
                .collect(),
        );
        let reading = |r: &Reading| {
            Value::Object(vec![
                ("ts_ms".to_string(), Value::U64(r.ts.0)),
                ("value".to_string(), Value::F64(r.value)),
            ])
        };
        let bucket = |b: &Bucket| {
            Value::Object(vec![
                ("start_ms".to_string(), Value::U64(b.start.0)),
                ("value".to_string(), Value::F64(b.value)),
                ("count".to_string(), Value::U64(b.count as u64)),
            ])
        };
        let (kind_name, data_key, data) = match &self.shape {
            ResultData::Series(series) => (
                "readings",
                "series",
                Value::Array(
                    series
                        .iter()
                        .map(|rs| Value::Array(rs.iter().map(reading).collect()))
                        .collect(),
                ),
            ),
            ResultData::Buckets(series) => (
                "buckets",
                "series",
                Value::Array(
                    series
                        .iter()
                        .map(|bs| Value::Array(bs.iter().map(bucket).collect()))
                        .collect(),
                ),
            ),
            ResultData::Scalars(values) => (
                "scalars",
                "values",
                Value::Array(
                    values
                        .iter()
                        .map(|v| match v {
                            Some(x) => Value::F64(*x),
                            None => Value::Null,
                        })
                        .collect(),
                ),
            ),
            ResultData::Aligned { grid, matrix } => {
                let grid = Value::Array(grid.iter().map(|t| Value::U64(t.0)).collect());
                let matrix = Value::Array(
                    matrix
                        .iter()
                        .map(|row| Value::Array(row.iter().map(|x| Value::F64(*x)).collect()))
                        .collect(),
                );
                let doc = Value::Object(vec![
                    kind("aligned"),
                    ("sensors".to_string(), sensors),
                    ("grid_ms".to_string(), grid),
                    ("matrix".to_string(), matrix),
                ]);
                return serde_json::to_string(&doc).unwrap_or_default();
            }
        };
        let doc = Value::Object(vec![
            kind(kind_name),
            ("sensors".to_string(), sensors),
            (data_key.to_string(), data),
        ]);
        serde_json::to_string(&doc).unwrap_or_default()
    }

    /// FNV-1a digest over the result's full bit-level content: shape
    /// discriminant, resolved sensor ids, and the IEEE-754 bits of every
    /// value (so `NaN` patterns and signed zeros are distinguished, which
    /// JSON text is not able to do). Two results digest equal iff they are
    /// bit-identical — the equality the serving cache's contract is stated
    /// in, asserted by tests and the serving bench exit gate.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::new();
        for s in &self.sensors {
            bytes.extend_from_slice(&s.0.to_le_bytes());
        }
        match &self.shape {
            ResultData::Series(series) => {
                bytes.push(0);
                for rs in series {
                    bytes.extend_from_slice(&(rs.len() as u64).to_le_bytes());
                    for r in rs {
                        bytes.extend_from_slice(&r.ts.0.to_le_bytes());
                        bytes.extend_from_slice(&r.value.to_bits().to_le_bytes());
                    }
                }
            }
            ResultData::Buckets(series) => {
                bytes.push(1);
                for bs in series {
                    bytes.extend_from_slice(&(bs.len() as u64).to_le_bytes());
                    for b in bs {
                        bytes.extend_from_slice(&b.start.0.to_le_bytes());
                        bytes.extend_from_slice(&b.value.to_bits().to_le_bytes());
                        bytes.extend_from_slice(&(b.count as u64).to_le_bytes());
                    }
                }
            }
            ResultData::Scalars(values) => {
                bytes.push(2);
                for v in values {
                    match v {
                        Some(x) => {
                            bytes.push(1);
                            bytes.extend_from_slice(&x.to_bits().to_le_bytes());
                        }
                        None => bytes.push(0),
                    }
                }
            }
            ResultData::Aligned { grid, matrix } => {
                bytes.push(3);
                bytes.extend_from_slice(&(grid.len() as u64).to_le_bytes());
                for t in grid {
                    bytes.extend_from_slice(&t.0.to_le_bytes());
                }
                for row in matrix {
                    for x in row {
                        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
                    }
                }
            }
        }
        fnv1a64(&bytes)
    }
}

fn shape_name(d: &ResultData) -> &'static str {
    match d {
        ResultData::Series(_) => "readings",
        ResultData::Buckets(_) => "buckets",
        ResultData::Scalars(_) => "scalars",
        ResultData::Aligned { .. } => "aligned",
    }
}

/// Read-side engine over a [`TimeSeriesStore`].
///
/// Records `query_total` / `query_scan_ns` / `query_readings_scanned_total`
/// into the store's metrics registry for every executed [`Query`], plus the
/// rollup-planner outcome counters `query_tier_hit_total` /
/// `query_tier_miss_total` (one per sensor scan where the planner consulted
/// tiers), `query_readings_avoided_total` (raw readings the tiers saved) and
/// `query_rollup_buckets_scanned_total`.
pub struct QueryEngine<'a> {
    store: &'a TimeSeriesStore,
    registry: Option<SensorRegistry>,
    m_query_total: Counter,
    m_readings_scanned: Counter,
    m_scan_ns: Histogram,
    m_tier_hit: Counter,
    m_tier_miss: Counter,
    m_readings_avoided: Counter,
    m_rollup_buckets_scanned: Counter,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine borrowing `store`. Pattern selectors additionally
    /// need [`Self::with_registry`].
    pub fn new(store: &'a TimeSeriesStore) -> Self {
        let m = store.metrics();
        QueryEngine {
            store,
            registry: None,
            m_query_total: m.counter("query_total", &[]),
            m_readings_scanned: m.counter("query_readings_scanned_total", &[]),
            m_scan_ns: m.histogram("query_scan_ns", &[]),
            m_tier_hit: m.counter("query_tier_hit_total", &[]),
            m_tier_miss: m.counter("query_tier_miss_total", &[]),
            m_readings_avoided: m.counter("query_readings_avoided_total", &[]),
            m_rollup_buckets_scanned: m.counter("query_rollup_buckets_scanned_total", &[]),
        }
    }

    /// Attaches a sensor registry so queries can select by name pattern.
    pub fn with_registry(mut self, registry: SensorRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Resolves `query`'s selector to the concrete sensor list
    /// [`Query::run`] would scan, without executing anything. The serving
    /// layer snapshots per-sensor store versions
    /// ([`TimeSeriesStore::sensor_version`]) for this list *before*
    /// executing a query it intends to cache: if a write lands mid-
    /// execution the recorded versions are already stale, so the entry can
    /// only miss — never serve a result computed from different state.
    ///
    /// # Panics
    /// Panics if the selector is a pattern and the engine has no registry
    /// attached, exactly as [`Query::run`] would.
    pub fn resolve_sensors(&self, query: &Query) -> Vec<SensorId> {
        self.resolve(query.selector.clone())
    }

    fn resolve(&self, selector: SensorSelector) -> Vec<SensorId> {
        match selector {
            SensorSelector::Ids(ids) => ids,
            SensorSelector::Pattern(pattern) => {
                let registry = self.registry.as_ref().unwrap_or_else(|| {
                    panic!(
                        "pattern query {:?} needs a registry; build the engine with \
                         QueryEngine::new(store).with_registry(registry)",
                        pattern.as_str()
                    )
                });
                let mut ids = registry.matching(&pattern);
                ids.sort_unstable_by_key(|s| s.index());
                ids
            }
        }
    }

    fn execute(&self, query: Query) -> QueryResult {
        let timer = self.m_scan_ns.start_timer();
        let sensors = self.resolve(query.selector);
        let range = query.range;
        // Which store alignment (if any) lets rollup tiers serve this shape
        // exactly: `Some(None)` = any tier width, `Some(Some(w))` = only
        // tiers dividing `w`, `None` = the shape must scan raw.
        let tier_align: Option<Option<u64>> = if query.rate || query.raw_only {
            None
        } else {
            match query.shape {
                Shape::Scalars(agg) if tier_serves(agg) => Some(None),
                Shape::Buckets { bucket_ms, agg } if tier_serves(agg) => Some(Some(bucket_ms)),
                Shape::Aligned { bucket_ms } => Some(Some(bucket_ms)),
                _ => None,
            }
        };
        let fetched: Vec<Fetched> = sensors
            .par_iter()
            .map(|&s| {
                if let Some(align) = tier_align {
                    if let TierScanResult::Hit {
                        head,
                        core,
                        tail,
                        readings_avoided,
                        ..
                    } = self.store.tier_scan(s, range.start, range.end, align)
                    {
                        return Fetched::Tier {
                            head,
                            core,
                            tail,
                            avoided: readings_avoided,
                        };
                    }
                }
                let readings = self.store.range(s, range.start, range.end);
                let scanned = readings.len() as u64;
                let readings = if query.rate {
                    rate_readings(&readings)
                } else {
                    readings
                };
                Fetched::Raw { readings, scanned }
            })
            .collect();
        let (mut scanned, mut hits, mut misses, mut avoided, mut tier_buckets) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for f in &fetched {
            match f {
                Fetched::Raw { scanned: n, .. } => {
                    scanned += n;
                    misses += 1;
                }
                Fetched::Tier {
                    head,
                    core,
                    tail,
                    avoided: a,
                } => {
                    scanned += (head.len() + tail.len()) as u64;
                    hits += 1;
                    avoided += a;
                    tier_buckets += core.len() as u64;
                }
            }
        }
        self.m_readings_scanned.add(scanned);
        if tier_align.is_some() {
            self.m_tier_hit.add(hits);
            self.m_tier_miss.add(misses);
            self.m_readings_avoided.add(avoided);
            self.m_rollup_buckets_scanned.add(tier_buckets);
        }
        let shape = match query.shape {
            Shape::Readings => ResultData::Series(
                fetched
                    .into_iter()
                    .map(|f| match f {
                        Fetched::Raw { readings, .. } => readings,
                        // Unreachable: tier_align is None for this shape.
                        Fetched::Tier { .. } => unreachable!("tier scan on a readings query"),
                    })
                    .collect(),
            ),
            Shape::Buckets { bucket_ms, agg } => ResultData::Buckets(
                fetched
                    .par_iter()
                    .map(|f| shape_buckets(f, bucket_ms, agg))
                    .collect(),
            ),
            Shape::Scalars(agg) => {
                ResultData::Scalars(fetched.iter().map(|f| shape_scalar(f, agg)).collect())
            }
            Shape::Aligned { bucket_ms } => {
                let buckets: Vec<Vec<Bucket>> = fetched
                    .par_iter()
                    .map(|f| shape_buckets(f, bucket_ms, Aggregation::Mean))
                    .collect();
                let (grid, matrix) = align_buckets(&buckets);
                ResultData::Aligned { grid, matrix }
            }
        };
        self.m_query_total.inc();
        self.m_scan_ns.observe_timer(timer);
        QueryResult { sensors, shape }
    }
}

/// What one sensor's scan produced: a plain raw slice, or a tier hit
/// decomposed into raw edges plus summary-bucket core.
enum Fetched {
    Raw {
        readings: Vec<Reading>,
        /// Raw readings materialised (pre-rate-derivation), for metrics.
        scanned: u64,
    },
    Tier {
        head: Vec<Reading>,
        core: Vec<RollupBucket>,
        tail: Vec<Reading>,
        avoided: u64,
    },
}

/// Whether rollup tiers can answer `agg` exactly from
/// `count/sum/min/max/first/last` summaries.
fn tier_serves(agg: Aggregation) -> bool {
    matches!(
        agg,
        Aggregation::Mean
            | Aggregation::Min
            | Aggregation::Max
            | Aggregation::Sum
            | Aggregation::Count
            | Aggregation::First
            | Aggregation::Last
    )
}

/// Buckets one sensor's fetch at `bucket_ms`. Head, core and tail occupy
/// disjoint bucket ranges (core boundaries are `bucket_ms`-aligned), so the
/// three pieces concatenate into one sorted bucket list.
fn shape_buckets(f: &Fetched, bucket_ms: u64, agg: Aggregation) -> Vec<Bucket> {
    match f {
        Fetched::Raw { readings, .. } => bucket_readings(readings, bucket_ms, agg),
        Fetched::Tier {
            head, core, tail, ..
        } => {
            let mut out = bucket_readings(head, bucket_ms, agg);
            bucket_rollups(core, bucket_ms, agg, &mut out);
            out.extend(bucket_readings(tail, bucket_ms, agg));
            out
        }
    }
}

/// Re-buckets tier summary buckets into `bucket_ms`-wide output buckets.
/// The planner guarantees the tier width divides `bucket_ms`, so every
/// summary bucket falls wholly inside one output bucket.
fn bucket_rollups(core: &[RollupBucket], bucket_ms: u64, agg: Aggregation, out: &mut Vec<Bucket>) {
    let mut i = 0usize;
    while i < core.len() {
        let bstart = core[i].start.bucket(bucket_ms);
        let mut j = i;
        while j < core.len() && core[j].start.bucket(bucket_ms) == bstart {
            j += 1;
        }
        let group = &core[i..j];
        let count: u64 = group.iter().map(|b| b.count).sum();
        let value = match agg {
            Aggregation::Mean => group.iter().map(|b| b.sum).sum::<f64>() / count as f64,
            Aggregation::Min => group.iter().map(|b| b.min).fold(f64::INFINITY, f64::min),
            Aggregation::Max => group
                .iter()
                .map(|b| b.max)
                .fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Sum => group.iter().map(|b| b.sum).sum(),
            Aggregation::Count => count as f64,
            Aggregation::First => group[0].first,
            Aggregation::Last => group[group.len() - 1].last,
            _ => unreachable!("non-decomposable aggregation on the tier path"),
        };
        out.push(Bucket {
            start: bstart,
            value,
            count: count as usize,
        });
        i = j;
    }
}

/// Aggregates one sensor's fetch to a scalar.
fn shape_scalar(f: &Fetched, agg: Aggregation) -> Option<f64> {
    match f {
        Fetched::Raw { readings, .. } => aggregate_readings(readings, agg),
        Fetched::Tier {
            head, core, tail, ..
        } => combine_tier_scalar(head, core, tail, agg),
    }
}

/// Merges raw edges and summary core into one scalar. Head precedes the
/// core in time and the tail follows it, which settles `First`/`Last`.
fn combine_tier_scalar(
    head: &[Reading],
    core: &[RollupBucket],
    tail: &[Reading],
    agg: Aggregation,
) -> Option<f64> {
    let count = head.len() as u64 + core.iter().map(|b| b.count).sum::<u64>() + tail.len() as u64;
    if count == 0 {
        return None;
    }
    let sum = || {
        head.iter().map(|r| r.value).sum::<f64>()
            + core.iter().map(|b| b.sum).sum::<f64>()
            + tail.iter().map(|r| r.value).sum::<f64>()
    };
    Some(match agg {
        Aggregation::Mean => sum() / count as f64,
        Aggregation::Sum => sum(),
        Aggregation::Min => head
            .iter()
            .map(|r| r.value)
            .chain(core.iter().map(|b| b.min))
            .chain(tail.iter().map(|r| r.value))
            .fold(f64::INFINITY, f64::min),
        Aggregation::Max => head
            .iter()
            .map(|r| r.value)
            .chain(core.iter().map(|b| b.max))
            .chain(tail.iter().map(|r| r.value))
            .fold(f64::NEG_INFINITY, f64::max),
        Aggregation::Count => count as f64,
        Aggregation::First => head
            .first()
            .map(|r| r.value)
            .or_else(|| core.first().map(|b| b.first))
            .or_else(|| tail.first().map(|r| r.value))
            // odalint: allow(panic-unwrap) -- caller checked count > 0 before taking this arm
            .expect("count > 0 implies a first element"),
        Aggregation::Last => tail
            .last()
            .map(|r| r.value)
            .or_else(|| core.last().map(|b| b.last))
            .or_else(|| head.last().map(|r| r.value))
            // odalint: allow(panic-unwrap) -- caller checked count > 0 before taking this arm
            .expect("count > 0 implies a last element"),
        _ => unreachable!("non-decomposable aggregation on the tier path"),
    })
}

/// Downsamples an already-materialised chronological slice into fixed
/// `bucket_ms`-wide buckets, omitting empty ones.
///
/// # Panics
/// Panics if `bucket_ms == 0`.
pub fn bucket_readings(readings: &[Reading], bucket_ms: u64, agg: Aggregation) -> Vec<Bucket> {
    assert!(bucket_ms > 0, "bucket width must be positive");
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < readings.len() {
        let bstart = readings[i].ts.bucket(bucket_ms);
        let bend = bstart + bucket_ms;
        let mut j = i;
        while j < readings.len() && readings[j].ts < bend {
            j += 1;
        }
        let slice = &readings[i..j];
        if let Some(value) = aggregate_readings(slice, agg) {
            out.push(Bucket {
                start: bstart,
                value,
                count: slice.len(),
            });
        }
        i = j;
    }
    out
}

/// Derives a rate series from a cumulative-counter slice: each output
/// reading is `(vᵢ₊₁ - vᵢ) / Δt_seconds` stamped at the later timestamp.
///
/// A negative delta means the counter reset (collector restart, RAPL
/// wrap): the true rate over that window is unknowable, so the sample is
/// emitted with rate `0` rather than dropped — dropping it would leave a
/// silent gap that downstream gap detectors misread as a dead sensor.
/// Only zero-`Δt` pairs (duplicate timestamps) yield no sample.
pub fn rate_readings(readings: &[Reading]) -> Vec<Reading> {
    readings
        .windows(2)
        .filter_map(|w| {
            let dt = w[1].ts.millis_since(w[0].ts) as f64 / 1_000.0;
            if dt <= 0.0 {
                return None;
            }
            let dv = w[1].value - w[0].value;
            let rate = if dv < 0.0 { 0.0 } else { dv / dt };
            Some(Reading::new(w[1].ts, rate))
        })
        .collect()
}

/// Merges per-sensor bucket lists onto the union grid of their starts.
///
/// Cells where a sensor has no bucket are `f64::NAN` ("no data", not zero);
/// see [`Query::align`] for the consumer contract.
pub(crate) fn align_buckets(per_sensor: &[Vec<Bucket>]) -> (Vec<Timestamp>, Vec<Vec<f64>>) {
    let mut grid: Vec<Timestamp> = per_sensor
        .iter()
        .flat_map(|bs| bs.iter().map(|b| b.start))
        .collect();
    grid.sort_unstable();
    grid.dedup();
    let matrix = per_sensor
        .par_iter()
        .map(|buckets| {
            let mut row = vec![f64::NAN; grid.len()];
            for b in buckets {
                if let Ok(idx) = grid.binary_search(&b.start) {
                    row[idx] = b.value;
                }
            }
            row
        })
        .collect();
    (grid, matrix)
}

/// Applies `agg` to an already-materialised chronological slice.
///
/// Exposed so analytics code can aggregate windows it has already fetched.
pub fn aggregate_readings(readings: &[Reading], agg: Aggregation) -> Option<f64> {
    if readings.is_empty() {
        return None;
    }
    let n = readings.len() as f64;
    Some(match agg {
        Aggregation::Mean => readings.iter().map(|r| r.value).sum::<f64>() / n,
        Aggregation::Min => readings
            .iter()
            .map(|r| r.value)
            .fold(f64::INFINITY, f64::min),
        Aggregation::Max => readings
            .iter()
            .map(|r| r.value)
            .fold(f64::NEG_INFINITY, f64::max),
        Aggregation::Sum => readings.iter().map(|r| r.value).sum(),
        Aggregation::Count => n,
        Aggregation::StdDev => {
            let mean = readings.iter().map(|r| r.value).sum::<f64>() / n;
            (readings
                .iter()
                .map(|r| (r.value - mean).powi(2))
                .sum::<f64>()
                / n)
                .sqrt()
        }
        // odalint: allow(panic-unwrap) -- aggregate_readings rejects empty input at entry
        Aggregation::Last => readings.last().unwrap().value,
        // odalint: allow(panic-unwrap) -- aggregate_readings rejects empty input at entry
        Aggregation::First => readings.first().unwrap().value,
        Aggregation::Quantile(q) => {
            let q = q.clamp(0.0, 1.0);
            let mut vals: Vec<f64> = readings.iter().map(|r| r.value).collect();
            vals.sort_unstable_by(|a, b| a.total_cmp(b));
            // Linear interpolation between closest ranks.
            let pos = q * (vals.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                vals[lo]
            } else {
                vals[lo] + (pos - lo as f64) * (vals[hi] - vals[lo])
            }
        }
        Aggregation::TimeWeightedMean => {
            if readings.len() == 1 {
                readings[0].value
            } else {
                let mut weighted = 0.0;
                let mut total_w = 0.0;
                for w in readings.windows(2) {
                    let dt = w[1].ts.millis_since(w[0].ts) as f64;
                    weighted += w[0].value * dt;
                    total_w += dt;
                }
                // The last sample has no successor to bound its holding
                // time. Giving it zero weight biases any window that ends
                // on a level shift, so extrapolate: assume it holds for
                // the median inter-sample gap (robust to one long outage
                // mid-window).
                let mut gaps: Vec<u64> = readings
                    .windows(2)
                    .map(|w| w[1].ts.millis_since(w[0].ts))
                    .collect();
                gaps.sort_unstable();
                let mid = gaps.len() / 2;
                let median_gap = if gaps.len().is_multiple_of(2) {
                    (gaps[mid - 1] + gaps[mid]) as f64 / 2.0
                } else {
                    gaps[mid] as f64
                };
                // odalint: allow(panic-unwrap) -- aggregate_readings rejects empty input at entry
                weighted += readings.last().unwrap().value * median_gap;
                total_w += median_gap;
                // odalint: allow(float-eq) -- exact zero iff every gap weight was zero; sentinel, not arithmetic
                if total_w == 0.0 {
                    readings.iter().map(|r| r.value).sum::<f64>() / n
                } else {
                    weighted / total_w
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(series: &[(u64, f64)]) -> (TimeSeriesStore, SensorId) {
        let store = TimeSeriesStore::with_capacity(1024);
        let s = SensorId(0);
        for &(t, v) in series {
            store.insert(s, Reading::new(Timestamp::from_millis(t), v));
        }
        (store, s)
    }

    fn agg(q: &QueryEngine<'_>, s: SensorId, range: TimeRange, a: Aggregation) -> Option<f64> {
        Query::sensors(s).range(range).aggregate(a).run(q).scalar()
    }

    #[test]
    fn scalar_aggregations() {
        let (store, s) = store_with(&[(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)]);
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        assert_eq!(agg(&q, s, all, Aggregation::Mean), Some(2.5));
        assert_eq!(agg(&q, s, all, Aggregation::Min), Some(1.0));
        assert_eq!(agg(&q, s, all, Aggregation::Max), Some(4.0));
        assert_eq!(agg(&q, s, all, Aggregation::Sum), Some(10.0));
        assert_eq!(agg(&q, s, all, Aggregation::Count), Some(4.0));
        assert_eq!(agg(&q, s, all, Aggregation::First), Some(1.0));
        assert_eq!(agg(&q, s, all, Aggregation::Last), Some(4.0));
        let sd = agg(&q, s, all, Aggregation::StdDev).unwrap();
        assert!((sd - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_range_aggregates_to_none() {
        let (store, s) = store_with(&[(0, 1.0)]);
        let q = QueryEngine::new(&store);
        let r = TimeRange::new(Timestamp::from_millis(100), Timestamp::from_millis(200));
        assert_eq!(agg(&q, s, r, Aggregation::Mean), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let (store, s) = store_with(&[(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)]);
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(0.0)), Some(10.0));
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(1.0)), Some(40.0));
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(0.5)), Some(25.0));
        // Out-of-range q is clamped.
        assert_eq!(agg(&q, s, all, Aggregation::Quantile(2.0)), Some(40.0));
    }

    /// Regression: a NaN reading used to panic the quantile path through
    /// `partial_cmp().unwrap()`. The store rejects non-finite values, but
    /// `aggregate_readings` is public and rollup/window paths hand it raw
    /// in-flight slices (injected-fault bursts produce NaN). With
    /// `total_cmp` the sort is total — NaN sorts after every number — and
    /// low quantiles still answer from the finite readings.
    #[test]
    fn quantile_tolerates_nan_readings() {
        let readings = [
            Reading::new(Timestamp::from_millis(0), 1.0),
            Reading::new(Timestamp::from_millis(1), f64::NAN),
            Reading::new(Timestamp::from_millis(2), 3.0),
        ];
        let low = aggregate_readings(&readings, Aggregation::Quantile(0.0));
        assert_eq!(low, Some(1.0));
        // q=1.0 lands on the NaN slot; it must not panic.
        let top = aggregate_readings(&readings, Aggregation::Quantile(1.0)).unwrap();
        assert!(top.is_nan());
    }

    #[test]
    fn time_weighted_mean_weights_by_holding_time() {
        // Value 0 held for 90ms, value 10 held for 10ms; the final sample
        // extrapolates for the median gap ((10+90)/2 = 50ms):
        // (0*90 + 10*10 + 10*50) / (90+10+50) = 4.
        let (store, s) = store_with(&[(0, 0.0), (90, 10.0), (100, 10.0)]);
        let q = QueryEngine::new(&store);
        let twm = agg(&q, s, TimeRange::all(), Aggregation::TimeWeightedMean).unwrap();
        assert!((twm - 4.0).abs() < 1e-12, "got {twm}");
    }

    #[test]
    fn time_weighted_mean_counts_a_trailing_level_shift() {
        // Regularly-sampled flat zero, then a jump on the very last sample.
        // Pre-fix the last reading carried zero weight and the TWM was 0 —
        // a trailing level shift was invisible.
        let (store, s) = store_with(&[(0, 0.0), (1_000, 0.0), (2_000, 100.0)]);
        let q = QueryEngine::new(&store);
        let twm = agg(&q, s, TimeRange::all(), Aggregation::TimeWeightedMean).unwrap();
        // Median gap 1000ms: (0*1000 + 0*1000 + 100*1000) / 3000.
        assert!((twm - 100.0 / 3.0).abs() < 1e-12, "got {twm}");
    }

    #[test]
    fn downsample_means_per_bucket_and_skips_gaps() {
        let (store, s) = store_with(&[(0, 1.0), (500, 3.0), (1_000, 5.0), (3_000, 7.0)]);
        let q = QueryEngine::new(&store);
        let buckets = Query::sensors(s)
            .downsample(1_000, Aggregation::Mean)
            .run(&q)
            .buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].start, Timestamp::ZERO);
        assert_eq!(buckets[0].value, 2.0);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[1].value, 5.0);
        assert_eq!(buckets[2].start, Timestamp::from_millis(3_000));
    }

    #[test]
    fn rate_derives_watts_from_joules() {
        // 100 J at t=0s, 300 J at t=2s → 100 W; counter reset at t=3s → 0 W.
        let (store, s) = store_with(&[(0, 100.0), (2_000, 300.0), (3_000, 0.0), (4_000, 50.0)]);
        let q = QueryEngine::new(&store);
        let rates = Query::sensors(s).rate().run(&q).readings();
        assert_eq!(rates.len(), 3);
        assert!((rates[0].value - 100.0).abs() < 1e-12);
        assert_eq!(
            rates[1].value, 0.0,
            "counter reset must emit rate 0, not a gap"
        );
        assert_eq!(rates[1].ts, Timestamp::from_millis(3_000));
        assert!((rates[2].value - 50.0).abs() < 1e-12);
    }

    #[test]
    fn rate_reset_leaves_no_gap_mid_series() {
        // A mid-series reset must keep the rate series contiguous: every
        // consecutive input pair with Δt > 0 yields exactly one sample.
        let series: &[(u64, f64)] = &[
            (0, 10.0),
            (1_000, 20.0),
            (2_000, 5.0),
            (3_000, 15.0),
            (4_000, 25.0),
        ];
        let (store, s) = store_with(series);
        let q = QueryEngine::new(&store);
        let rates = Query::sensors(s).rate().run(&q).readings();
        assert_eq!(rates.len(), series.len() - 1);
        let ts: Vec<u64> = rates.iter().map(|r| r.ts.as_millis()).collect();
        assert_eq!(ts, vec![1_000, 2_000, 3_000, 4_000]);
        assert_eq!(rates[1].value, 0.0);
        assert!((rates[2].value - 10.0).abs() < 1e-12);
    }

    #[test]
    fn align_produces_common_grid_with_nans() {
        let store = TimeSeriesStore::with_capacity(64);
        let a = SensorId(0);
        let b = SensorId(1);
        store.insert(a, Reading::new(Timestamp::from_millis(0), 1.0));
        store.insert(a, Reading::new(Timestamp::from_millis(1_000), 2.0));
        store.insert(b, Reading::new(Timestamp::from_millis(1_000), 10.0));
        store.insert(b, Reading::new(Timestamp::from_millis(2_000), 20.0));
        let q = QueryEngine::new(&store);
        let (grid, m) = Query::sensors([a, b]).align(1_000).run(&q).aligned();
        assert_eq!(grid.len(), 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[0][1], 2.0);
        assert!(m[0][2].is_nan());
        assert!(m[1][0].is_nan());
        assert_eq!(m[1][1], 10.0);
        assert_eq!(m[1][2], 20.0);
    }

    #[test]
    fn aggregate_many_preserves_order() {
        let store = TimeSeriesStore::with_capacity(8);
        for i in 0..4u32 {
            store.insert(SensorId(i), Reading::new(Timestamp::ZERO, i as f64));
        }
        let q = QueryEngine::new(&store);
        let sensors: Vec<SensorId> = (0..4).map(SensorId).collect();
        let out = Query::sensors(&sensors)
            .aggregate(Aggregation::Last)
            .run(&q)
            .scalars();
        assert_eq!(out, vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0)]);
    }

    #[test]
    fn trailing_range_includes_now() {
        let (store, s) = store_with(&[(900, 1.0), (1_000, 2.0)]);
        let q = QueryEngine::new(&store);
        let r = TimeRange::trailing(Timestamp::from_millis(1_000), 50);
        assert_eq!(agg(&q, s, r, Aggregation::Count), Some(1.0));
    }

    #[test]
    fn pattern_selector_resolves_via_registry_in_id_order() {
        use crate::sensor::{SensorKind, SensorRegistry, Unit};
        let reg = SensorRegistry::new();
        let p0 = reg.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
        let t0 = reg.register("/hw/node0/temp", SensorKind::Temperature, Unit::Celsius);
        let p1 = reg.register("/hw/node1/power", SensorKind::Power, Unit::Watts);
        let store = TimeSeriesStore::with_capacity(8);
        for (i, s) in [p0, t0, p1].iter().enumerate() {
            store.insert(*s, Reading::new(Timestamp::ZERO, i as f64));
        }
        let q = QueryEngine::new(&store).with_registry(reg);
        let res = Query::sensors("/hw/*/power")
            .aggregate(Aggregation::Last)
            .run(&q);
        assert_eq!(res.sensors(), &[p0, p1]);
        assert_eq!(res.scalars(), vec![Some(0.0), Some(2.0)]);
    }

    #[test]
    #[should_panic(expected = "needs a registry")]
    fn pattern_selector_without_registry_panics() {
        let store = TimeSeriesStore::with_capacity(8);
        let q = QueryEngine::new(&store);
        let _ = Query::sensors("/hw/**").run(&q);
    }

    #[test]
    #[should_panic(expected = "already shaped")]
    fn double_shaping_panics() {
        let _ = Query::sensors(SensorId(0))
            .aggregate(Aggregation::Mean)
            .downsample(10, Aggregation::Mean);
    }

    #[test]
    #[should_panic(expected = "use scalars()")]
    fn scalar_on_multi_sensor_result_panics() {
        let store = TimeSeriesStore::with_capacity(8);
        let q = QueryEngine::new(&store);
        store.insert(SensorId(0), Reading::new(Timestamp::ZERO, 1.0));
        store.insert(SensorId(1), Reading::new(Timestamp::ZERO, 2.0));
        let _ = Query::sensors([SensorId(0), SensorId(1)])
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalar();
    }

    #[test]
    #[should_panic(expected = "on a scalars result")]
    fn shape_mismatch_accessor_panics() {
        let store = TimeSeriesStore::with_capacity(8);
        let q = QueryEngine::new(&store);
        let _ = Query::sensors(SensorId(0))
            .aggregate(Aggregation::Mean)
            .run(&q)
            .readings();
    }

    #[test]
    fn rate_composes_with_downsample() {
        // Cumulative joules sampled every second; rate → 100 W flat, then
        // bucketed into 2s means.
        let (store, s) = store_with(&[(0, 0.0), (1_000, 100.0), (2_000, 200.0), (3_000, 300.0)]);
        let q = QueryEngine::new(&store);
        let buckets = Query::sensors(s)
            .rate()
            .downsample(2_000, Aggregation::Mean)
            .run(&q)
            .buckets();
        assert!(!buckets.is_empty());
        for b in &buckets {
            assert!((b.value - 100.0).abs() < 1e-9, "got {}", b.value);
        }
    }

    #[test]
    fn queries_record_read_path_metrics() {
        use crate::metrics::MetricsRegistry;
        let m = MetricsRegistry::new();
        let store = TimeSeriesStore::with_capacity_shards_metrics(16, 1, m.clone());
        let s = SensorId(0);
        for t in 0..10u64 {
            store.insert(s, Reading::new(Timestamp::from_millis(t), t as f64));
        }
        let q = QueryEngine::new(&store);
        // Mean is tier-servable: all 10 readings sit in one rollup bucket,
        // so the planner scans 0 raw readings and avoids 9.
        let _ = Query::sensors(s)
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalar();
        // A raw-readings query still scans all 10.
        let _ = Query::sensors(s).run(&q).readings();
        let snap = m.snapshot();
        assert_eq!(snap.counter("query_total"), Some(2));
        assert_eq!(snap.counter("query_readings_scanned_total"), Some(10));
        assert_eq!(snap.counter("query_tier_hit_total"), Some(1));
        assert_eq!(snap.counter("query_tier_miss_total"), Some(0));
        assert_eq!(snap.counter("query_readings_avoided_total"), Some(9));
        assert_eq!(snap.counter("query_rollup_buckets_scanned_total"), Some(1));
        assert_eq!(snap.histogram("query_scan_ns").unwrap().count, 2);
    }

    #[test]
    fn raw_scan_bypasses_tiers() {
        use crate::metrics::MetricsRegistry;
        let m = MetricsRegistry::new();
        let store = TimeSeriesStore::with_capacity_shards_metrics(16, 1, m.clone());
        let s = SensorId(0);
        for t in 0..10u64 {
            store.insert(s, Reading::new(Timestamp::from_millis(t), t as f64));
        }
        let q = QueryEngine::new(&store);
        let planned = Query::sensors(s)
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalar();
        let raw = Query::sensors(s)
            .raw_scan()
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalar();
        assert_eq!(planned, raw, "tier answer must equal the raw rescan");
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("query_tier_hit_total"),
            Some(1),
            "only the planned query hits"
        );
        assert_eq!(
            snap.counter("query_readings_scanned_total"),
            Some(10),
            "raw_scan pays full price"
        );
    }

    #[test]
    fn planner_answers_match_raw_for_all_decomposable_aggregations() {
        use crate::metrics::MetricsRegistry;
        use crate::store::{RollupConfig, RollupTierSpec};
        let store = TimeSeriesStore::with_rollups(
            1024,
            1,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![
                    RollupTierSpec {
                        bucket_ms: 1_000,
                        capacity: 256,
                    },
                    RollupTierSpec {
                        bucket_ms: 5_000,
                        capacity: 256,
                    },
                ],
            },
        );
        let s = SensorId(0);
        // Dyadic values → tier partial sums are bit-exact vs a flat fold.
        for t in 0..200u64 {
            store.insert(
                s,
                Reading::new(Timestamp::from_millis(t * 137), (t as f64) * 0.25 - 12.0),
            );
        }
        let q = QueryEngine::new(&store);
        // Range with deliberately unaligned edges.
        let range = TimeRange::new(Timestamp::from_millis(777), Timestamp::from_millis(24_321));
        for agg in [
            Aggregation::Mean,
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Sum,
            Aggregation::Count,
            Aggregation::First,
            Aggregation::Last,
        ] {
            let planned = Query::sensors(s)
                .range(range)
                .aggregate(agg)
                .run(&q)
                .scalar();
            let raw = Query::sensors(s)
                .range(range)
                .raw_scan()
                .aggregate(agg)
                .run(&q)
                .scalar();
            assert_eq!(planned, raw, "scalar {agg:?} diverged");
            let planned_b = Query::sensors(s)
                .range(range)
                .downsample(5_000, agg)
                .run(&q)
                .buckets();
            let raw_b = Query::sensors(s)
                .range(range)
                .raw_scan()
                .downsample(5_000, agg)
                .run(&q)
                .buckets();
            assert_eq!(planned_b, raw_b, "downsample {agg:?} diverged");
        }
        let planned_a = Query::sensors(s)
            .range(range)
            .align(5_000)
            .run(&q)
            .aligned();
        let raw_a = Query::sensors(s)
            .range(range)
            .raw_scan()
            .align(5_000)
            .run(&q)
            .aligned();
        assert_eq!(planned_a, raw_a, "aligned matrix diverged");
    }

    #[test]
    fn non_decomposable_aggregations_never_use_tiers() {
        use crate::metrics::MetricsRegistry;
        let m = MetricsRegistry::new();
        let store = TimeSeriesStore::with_capacity_shards_metrics(64, 1, m.clone());
        let s = SensorId(0);
        for t in 0..20u64 {
            store.insert(s, Reading::new(Timestamp::from_millis(t), t as f64));
        }
        let q = QueryEngine::new(&store);
        for agg in [
            Aggregation::StdDev,
            Aggregation::Quantile(0.9),
            Aggregation::TimeWeightedMean,
        ] {
            let _ = Query::sensors(s).aggregate(agg).run(&q).scalar();
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("query_tier_hit_total"), Some(0));
        assert_eq!(
            snap.counter("query_tier_miss_total"),
            Some(0),
            "planner not even consulted"
        );
        assert_eq!(snap.counter("query_readings_scanned_total"), Some(60));
    }

    // ----- canonical wire representation ----------------------------------

    /// `to_json` → `from_json` → `to_json` must be a fixed point for every
    /// selector / range / flag / shape combination — one wire form.
    #[test]
    fn wire_round_trip_is_canonical() {
        let queries = vec![
            Query::sensors(SensorId(3)),
            Query::sensors(vec![SensorId(1), SensorId(0)])
                .range(TimeRange::new(
                    Timestamp::from_millis(500),
                    Timestamp::from_millis(90_000),
                ))
                .rate()
                .downsample(1_000, Aggregation::Max),
            Query::sensors("/hw/*/power")
                .raw_scan()
                .aggregate(Aggregation::Quantile(0.99)),
            Query::sensors(SensorId(7)).aggregate(Aggregation::TimeWeightedMean),
            Query::sensors("/facility/**").align(10_000),
        ];
        for q in queries {
            let wire = q.to_json();
            let parsed = Query::from_json(&wire).expect("canonical form must parse");
            assert_eq!(parsed.to_json(), wire, "not a fixed point: {wire}");
        }
    }

    /// Sparse input (omitted defaults, reordered keys) normalizes to the
    /// same canonical string as the builder-constructed query.
    #[test]
    fn wire_normalizes_sparse_and_reordered_input() {
        let canonical = Query::sensors(SensorId(2)).to_json();
        for input in [
            r#"{"selector":{"ids":[2]}}"#,
            r#"{"shape":{"kind":"readings"},"selector":{"ids":[2]},"rate":false}"#,
            "{\n  \"selector\": { \"ids\": [ 2 ] },\n  \"raw_scan\": false\n}",
        ] {
            let parsed = Query::from_json(input).expect("sparse form must parse");
            assert_eq!(parsed.to_json(), canonical, "input {input}");
        }
        // A shaped sparse form too.
        let canonical = Query::sensors("/hw/*/t")
            .aggregate(Aggregation::Mean)
            .to_json();
        let parsed = Query::from_json(
            r#"{"shape":{"agg":"mean","kind":"scalars"},"selector":{"pattern":"/hw/*/t"}}"#,
        )
        .expect("must parse");
        assert_eq!(parsed.to_json(), canonical);
    }

    #[test]
    fn wire_rejects_malformed_queries() {
        for (input, why) in [
            ("{}", "missing selector"),
            ("[]", "not an object"),
            ("{\"selector\":{\"ids\":[2]},\"agregation\":1}", "typo field"),
            (
                "{\"selector\":{\"ids\":[2],\"pattern\":\"x\"}}",
                "both selector kinds",
            ),
            ("{\"selector\":{\"ids\":[-1]}}", "negative id"),
            ("{\"selector\":{\"ids\":[4294967296]}}", "id overflows u32"),
            (
                "{\"selector\":{\"ids\":[0]},\"range\":{\"start_ms\":5,\"end_ms\":1}}",
                "inverted range",
            ),
            (
                "{\"selector\":{\"ids\":[0]},\"shape\":{\"kind\":\"buckets\",\"bucket_ms\":0,\"agg\":\"mean\"}}",
                "zero bucket width",
            ),
            (
                "{\"selector\":{\"ids\":[0]},\"shape\":{\"kind\":\"scalars\",\"agg\":{\"quantile\":1.5}}}",
                "quantile out of range",
            ),
            (
                "{\"selector\":{\"ids\":[0]},\"shape\":{\"kind\":\"readings\",\"agg\":\"mean\"}}",
                "agg on readings shape",
            ),
            (
                "{\"selector\":{\"ids\":[0]},\"shape\":{\"kind\":\"scalars\",\"agg\":\"median\"}}",
                "unknown aggregation",
            ),
            ("{\"selector\":{\"ids\":[0]}", "truncated JSON"),
        ] {
            assert!(
                Query::from_json(input).is_err(),
                "accepted malformed query ({why}): {input}"
            );
        }
    }

    /// The digest distinguishes bit-level differences JSON text collapses
    /// (NaN payloads aside, the cases that matter: value bits, sensor
    /// order, shape) and is stable across identical executions.
    #[test]
    fn result_digest_and_json_are_stable_across_reruns() {
        let (store, s) = store_with(&[(0, 1.0), (10, 2.0), (20, 3.0)]);
        let q = QueryEngine::new(&store);
        let run = |raw: bool| {
            let query = Query::sensors(s).aggregate(Aggregation::Mean);
            let query = if raw { query.raw_scan() } else { query };
            query.run(&q)
        };
        let a = run(false);
        let b = run(false);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.to_json(), b.to_json());
        // Planned and raw executions agree bit-for-bit (tier contract).
        let r = run(true);
        assert_eq!(a.digest(), r.digest());
        assert_eq!(a.to_json(), r.to_json());
        // A different value is a different digest.
        store.insert(s, Reading::new(Timestamp::from_millis(30), 4.0));
        assert_ne!(run(false).digest(), a.digest());
    }

    #[test]
    fn sensor_versions_advance_only_on_accepted_writes() {
        let store = TimeSeriesStore::with_capacity(8);
        let s = SensorId(0);
        assert_eq!(store.sensor_version(s), 0, "untouched sensor");
        store.insert(s, Reading::new(Timestamp::from_millis(10), 1.0));
        assert_eq!(store.sensor_version(s), 1);
        // Rejected writes (out-of-order, non-finite) must not bump.
        store.insert(s, Reading::new(Timestamp::from_millis(5), 2.0));
        store.insert(s, Reading::new(Timestamp::from_millis(20), f64::NAN));
        assert_eq!(store.sensor_version(s), 1);
        store.insert(s, Reading::new(Timestamp::from_millis(20), 2.0));
        assert_eq!(store.sensor_version(s), 2);
        assert_eq!(store.sensor_version(SensorId(99)), 0);
    }
}
