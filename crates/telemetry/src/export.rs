//! Telemetry export: CSV serialisation of archived series.
//!
//! Production ODA feeds dashboards and offline analysis from its archive;
//! the portable lowest common denominator is CSV. Two shapes are
//! supported:
//!
//! * **long** — `timestamp_ms,sensor,value`, one row per reading; robust
//!   to ragged sampling, the shape ingestion tools prefer;
//! * **wide** — one row per aligned time bucket with one column per
//!   sensor, the shape spreadsheet/plotting users prefer (missing buckets
//!   are empty cells).

use crate::query::{Query, QueryEngine, TimeRange};
use crate::sensor::{SensorId, SensorRegistry};
use crate::store::TimeSeriesStore;
use std::fmt::Write as _;

/// Escapes a CSV field (quotes it when needed).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Exports the given sensors over `range` in long form.
pub fn to_csv_long(
    store: &TimeSeriesStore,
    registry: &SensorRegistry,
    sensors: &[SensorId],
    range: TimeRange,
) -> String {
    let q = QueryEngine::new(store);
    let series = Query::sensors(sensors).range(range).run(&q).series();
    let mut out = String::from("timestamp_ms,sensor,value\n");
    for (&s, readings) in sensors.iter().zip(&series) {
        let name = registry
            .name(s)
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("#{}", s.0));
        for r in readings {
            let _ = writeln!(out, "{},{},{}", r.ts.as_millis(), field(&name), r.value);
        }
    }
    out
}

/// Exports the given sensors over `range` in wide form, aligned to
/// `bucket_ms` buckets (bucket means). Missing values are empty cells.
///
/// # Panics
/// Panics if `bucket_ms == 0`.
pub fn to_csv_wide(
    store: &TimeSeriesStore,
    registry: &SensorRegistry,
    sensors: &[SensorId],
    range: TimeRange,
    bucket_ms: u64,
) -> String {
    let q = QueryEngine::new(store);
    let (grid, matrix) = Query::sensors(sensors)
        .range(range)
        .align(bucket_ms)
        .run(&q)
        .aligned();
    let mut out = String::from("timestamp_ms");
    for &s in sensors {
        let name = registry
            .name(s)
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("#{}", s.0));
        out.push(',');
        out.push_str(&field(&name));
    }
    out.push('\n');
    for (bi, t) in grid.iter().enumerate() {
        let _ = write!(out, "{}", t.as_millis());
        for row in &matrix {
            if row[bi].is_nan() {
                out.push(',');
            } else {
                let _ = write!(out, ",{}", row[bi]);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::{Reading, Timestamp};
    use crate::sensor::{SensorKind, Unit};

    fn setup() -> (TimeSeriesStore, SensorRegistry, Vec<SensorId>) {
        let reg = SensorRegistry::new();
        let a = reg.register("/hw/node0/power_w", SensorKind::Power, Unit::Watts);
        let b = reg.register("/facility/pue", SensorKind::Indicator, Unit::Dimensionless);
        let store = TimeSeriesStore::with_capacity(64);
        for t in 0..4u64 {
            store.insert(a, Reading::new(Timestamp::from_secs(t), 100.0 + t as f64));
        }
        store.insert(b, Reading::new(Timestamp::from_secs(1), 1.5));
        (store, reg, vec![a, b])
    }

    #[test]
    fn long_form_lists_every_reading() {
        let (store, reg, sensors) = setup();
        let csv = to_csv_long(&store, &reg, &sensors, TimeRange::all());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "timestamp_ms,sensor,value");
        assert_eq!(lines.len(), 1 + 5);
        assert!(lines[1].starts_with("0,/hw/node0/power_w,100"));
        assert!(lines.last().unwrap().contains("/facility/pue,1.5"));
    }

    #[test]
    fn wide_form_aligns_with_empty_cells() {
        let (store, reg, sensors) = setup();
        let csv = to_csv_wide(&store, &reg, &sensors, TimeRange::all(), 1_000);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "timestamp_ms,/hw/node0/power_w,/facility/pue");
        // 4 buckets (0..4 s); PUE present only in bucket 1.
        assert_eq!(lines.len(), 1 + 4);
        assert_eq!(lines[1], "0,100,");
        assert_eq!(lines[2], "1000,101,1.5");
        assert!(lines[3].starts_with("2000,102"));
    }

    #[test]
    fn csv_fields_are_escaped() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn wide_header_escapes_sensor_names_with_commas() {
        // A comma in a sensor name must not shift columns: the header cell
        // goes through field() escaping exactly like long-form rows do.
        let reg = SensorRegistry::new();
        let odd = reg.register(
            "/rack0/ambient,rear_c",
            SensorKind::Temperature,
            Unit::Celsius,
        );
        let plain = reg.register("/rack0/supply_c", SensorKind::Temperature, Unit::Celsius);
        let store = TimeSeriesStore::with_capacity(8);
        store.insert(odd, Reading::new(Timestamp::ZERO, 21.0));
        store.insert(plain, Reading::new(Timestamp::ZERO, 18.5));
        let csv = to_csv_wide(&store, &reg, &[odd, plain], TimeRange::all(), 1_000);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "timestamp_ms,\"/rack0/ambient,rear_c\",/rack0/supply_c"
        );
        // Both the header and the data row parse to exactly 3 columns.
        assert_eq!(lines[1], "0,21,18.5");
        let header_cols = lines[0].matches(',').count() - lines[0].matches(",rear").count();
        assert_eq!(header_cols, 2, "quoted comma must not add a column");
        // Long form stays consistent with the same escaping.
        let long = to_csv_long(&store, &reg, &[odd], TimeRange::all());
        assert!(long.contains("\"/rack0/ambient,rear_c\""));
    }

    #[test]
    fn range_filtering_applies() {
        let (store, reg, sensors) = setup();
        let csv = to_csv_long(
            &store,
            &reg,
            &sensors[..1],
            TimeRange::new(Timestamp::from_secs(1), Timestamp::from_secs(3)),
        );
        assert_eq!(csv.lines().count(), 1 + 2);
    }
}
