//! Health accounting for the monitoring path itself.
//!
//! ODA treats telemetry as best-effort: collectors die, sensors latch, slow
//! consumers shed load. Analytics stages therefore need to know not just
//! *what* the data says but *how much data there is to say it with*. This
//! module surfaces that meta-telemetry: per-sensor ingest statistics
//! (last-seen timestamps, gap sizes, rejection counters) rolled up into a
//! [`HealthReport`] the pipeline — and the chaos harness — can interrogate.

use crate::reading::Timestamp;
use crate::sensor::SensorId;
use serde::{Deserialize, Serialize};

/// Ingest-side health of one sensor's series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorHealth {
    /// The sensor this row describes.
    pub sensor: SensorId,
    /// Readings currently retained.
    pub len: usize,
    /// Timestamp of the newest accepted reading.
    pub last_seen: Option<Timestamp>,
    /// Readings evicted by ring-buffer wrap-around.
    pub evicted: u64,
    /// Readings rejected for an out-of-order timestamp (clock skew,
    /// replayed batches).
    pub rejected_out_of_order: u64,
    /// Readings rejected for a NaN/infinite value.
    pub rejected_non_finite: u64,
    /// Largest gap between consecutive accepted readings, milliseconds.
    pub max_gap_ms: u64,
}

impl SensorHealth {
    /// Total readings rejected at ingest for this sensor.
    pub fn rejected(&self) -> u64 {
        self.rejected_out_of_order + self.rejected_non_finite
    }

    /// Whether the sensor has been silent for longer than `max_age_ms`
    /// as of `now`. A sensor that never reported is always stale.
    pub fn is_stale(&self, now: Timestamp, max_age_ms: u64) -> bool {
        match self.last_seen {
            Some(ts) => now.millis_since(ts) > max_age_ms,
            None => true,
        }
    }
}

/// Occupancy of one rollup tier, aggregated over all sensors.
///
/// `buckets`/`evicted` are sums across sensors; `capacity` is the
/// *per-sensor* ring limit, so a store with `n` sensors saturates at
/// `n * capacity` buckets for the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierOccupancy {
    /// Bucket width of the tier, milliseconds.
    pub bucket_ms: u64,
    /// Per-sensor bucket-ring capacity.
    pub capacity: usize,
    /// Buckets currently retained, summed over sensors.
    pub buckets: u64,
    /// Buckets evicted by ring wrap-around, summed over sensors.
    pub evicted: u64,
}

/// Point-in-time roll-up of every sensor's ingest health.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Per-sensor rows, ordered by sensor index.
    pub sensors: Vec<SensorHealth>,
    /// Rollup-tier occupancy, one row per configured tier (empty for
    /// raw-only stores). Defaults to empty when deserialising reports
    /// produced before tiers existed.
    #[serde(default)]
    pub rollups: Vec<TierOccupancy>,
}

impl HealthReport {
    /// Number of sensors with at least one retained or rejected reading.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Health row for `sensor`, if it ever reached the store.
    pub fn sensor(&self, sensor: SensorId) -> Option<&SensorHealth> {
        self.sensors.iter().find(|h| h.sensor == sensor)
    }

    /// Total readings currently retained.
    pub fn total_len(&self) -> usize {
        self.sensors.iter().map(|h| h.len).sum()
    }

    /// Total readings evicted by wrap-around.
    pub fn total_evicted(&self) -> u64 {
        self.sensors.iter().map(|h| h.evicted).sum()
    }

    /// Total readings rejected at ingest (out-of-order + non-finite).
    pub fn total_rejected(&self) -> u64 {
        self.sensors.iter().map(|h| h.rejected()).sum()
    }

    /// Sensors silent for longer than `max_age_ms` as of `now`.
    pub fn stale_sensors(&self, now: Timestamp, max_age_ms: u64) -> Vec<SensorId> {
        self.sensors
            .iter()
            .filter(|h| h.is_stale(now, max_age_ms))
            .map(|h| h.sensor)
            .collect()
    }

    /// Largest accepted inter-reading gap across all sensors, milliseconds.
    pub fn max_gap_ms(&self) -> u64 {
        self.sensors.iter().map(|h| h.max_gap_ms).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(idx: u32, last_seen: Option<u64>) -> SensorHealth {
        SensorHealth {
            sensor: SensorId(idx),
            len: 4,
            last_seen: last_seen.map(Timestamp::from_millis),
            evicted: 2,
            rejected_out_of_order: 1,
            rejected_non_finite: 3,
            max_gap_ms: 500 * (idx as u64 + 1),
        }
    }

    #[test]
    fn totals_roll_up() {
        let rep = HealthReport {
            sensors: vec![row(0, Some(1_000)), row(1, Some(9_000))],
            rollups: Vec::new(),
        };
        assert_eq!(rep.sensor_count(), 2);
        assert_eq!(rep.total_len(), 8);
        assert_eq!(rep.total_evicted(), 4);
        assert_eq!(rep.total_rejected(), 8);
        assert_eq!(rep.max_gap_ms(), 1_000);
        assert!(rep.sensor(SensorId(1)).is_some());
        assert!(rep.sensor(SensorId(7)).is_none());
    }

    #[test]
    fn staleness_thresholds() {
        let now = Timestamp::from_millis(10_000);
        let rep = HealthReport {
            sensors: vec![row(0, Some(1_000)), row(1, Some(9_500)), row(2, None)],
            rollups: Vec::new(),
        };
        let stale = rep.stale_sensors(now, 2_000);
        assert_eq!(stale, vec![SensorId(0), SensorId(2)]);
        assert!(
            rep.stale_sensors(now, 60_000).contains(&SensorId(2)),
            "never-seen is always stale"
        );
    }

    #[test]
    fn report_serialises_tier_occupancy() {
        let full = HealthReport {
            sensors: Vec::new(),
            rollups: vec![TierOccupancy {
                bucket_ms: 10_000,
                capacity: 1_024,
                buckets: 3,
                evicted: 1,
            }],
        };
        let json = serde_json::to_string(&full).unwrap();
        assert!(
            json.contains("\"rollups\""),
            "tier occupancy must be exported: {json}"
        );
        assert!(
            json.contains("\"bucket_ms\":10000"),
            "tier width must be exported: {json}"
        );
    }
}
