//! Sealed immutable segment files: encoding, decoding and compaction.
//!
//! A segment holds per-sensor columnar blocks for one sealed batch of the
//! archive. Two kinds exist:
//!
//! - **Raw** segments store `(timestamp, value)` columns compressed with the
//!   [`super::codec`] delta-of-delta / XOR codecs.
//! - **Compacted** segments store the same data folded into the workspace's
//!   [`RollupBucket`] format (aligned buckets of
//!   count/sum/min/max/first/last), produced by the deterministic
//!   compaction pass from cold raw segments.
//!
//! ```text
//! segment := magic "ODASEG1\0" | kind u8 | bucket_ms u64 | seq u64
//!          | n_sensors u32 | block* | footer
//! footer  := min_ts u64 | max_ts u64 | total_readings u64
//!          | fnv1a64(all prior bytes) | end magic "ODAEND1\0"
//! ```
//!
//! Decoding verifies both magics, the checksum, and that the footer's
//! min/max/total match values recomputed from the decoded blocks, so a
//! truncated, bit-flipped or half-replaced file fails loudly instead of
//! feeding bad data into recovery.

use super::codec;
use crate::reading::{Reading, Timestamp};
use crate::sensor::SensorId;
use crate::store::{RollupBucket, RollupTier, RollupTierSpec};

/// Magic bytes opening every segment file.
pub const SEG_MAGIC: [u8; 8] = *b"ODASEG1\0";

/// Magic bytes closing every segment file.
pub const SEG_END: [u8; 8] = *b"ODAEND1\0";

/// Whether a segment holds raw readings or compacted rollup buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Per-sensor compressed `(timestamp, value)` columns.
    Raw,
    /// Per-sensor [`RollupBucket`] columns at a fixed bucket width.
    Compacted,
}

/// Per-sensor payload of a segment.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentBlocks {
    /// Raw readings, ascending per sensor.
    Raw(Vec<(SensorId, Vec<Reading>)>),
    /// Rollup buckets, ascending per sensor.
    Compacted(Vec<(SensorId, Vec<RollupBucket>)>),
}

/// A decoded (or to-be-encoded) segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Position in the segment sequence; seals are numbered from 1.
    pub seq: u64,
    /// Bucket width for compacted segments; 0 for raw segments.
    pub bucket_ms: u64,
    /// Per-sensor columnar payload.
    pub blocks: SegmentBlocks,
}

/// Why a segment failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The buffer ended before the structure did.
    Truncated,
    /// Opening or closing magic did not match.
    BadMagic,
    /// Checksum over the body did not match the footer.
    BadChecksum,
    /// Structure decoded but was internally inconsistent.
    Malformed,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SegmentError::Truncated => "segment truncated",
            SegmentError::BadMagic => "segment magic mismatch",
            SegmentError::BadChecksum => "segment checksum mismatch",
            SegmentError::Malformed => "segment structure malformed",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SegmentError {}

impl Segment {
    /// Build a raw segment from per-sensor ascending readings.
    pub fn raw(seq: u64, sensors: Vec<(SensorId, Vec<Reading>)>) -> Self {
        Segment {
            seq,
            bucket_ms: 0,
            blocks: SegmentBlocks::Raw(sensors),
        }
    }

    /// The segment's kind.
    pub fn kind(&self) -> SegmentKind {
        match self.blocks {
            SegmentBlocks::Raw(_) => SegmentKind::Raw,
            SegmentBlocks::Compacted(_) => SegmentKind::Compacted,
        }
    }

    /// Earliest timestamp covered (`Timestamp::MAX` if empty).
    pub fn min_ts(&self) -> Timestamp {
        let mut min = u64::MAX;
        match &self.blocks {
            SegmentBlocks::Raw(sensors) => {
                for (_, rs) in sensors {
                    if let Some(r) = rs.first() {
                        min = min.min(r.ts.0);
                    }
                }
            }
            SegmentBlocks::Compacted(sensors) => {
                for (_, bs) in sensors {
                    if let Some(b) = bs.first() {
                        min = min.min(b.first_ts.0);
                    }
                }
            }
        }
        Timestamp(min)
    }

    /// Latest timestamp covered (`Timestamp::ZERO` if empty).
    pub fn max_ts(&self) -> Timestamp {
        let mut max = 0u64;
        match &self.blocks {
            SegmentBlocks::Raw(sensors) => {
                for (_, rs) in sensors {
                    if let Some(r) = rs.last() {
                        max = max.max(r.ts.0);
                    }
                }
            }
            SegmentBlocks::Compacted(sensors) => {
                for (_, bs) in sensors {
                    if let Some(b) = bs.last() {
                        max = max.max(b.last_ts.0);
                    }
                }
            }
        }
        Timestamp(max)
    }

    /// Number of readings stored (raw) or represented (compacted: the sum of
    /// bucket counts).
    pub fn total_readings(&self) -> u64 {
        match &self.blocks {
            SegmentBlocks::Raw(sensors) => sensors.iter().map(|(_, rs)| rs.len() as u64).sum(),
            SegmentBlocks::Compacted(sensors) => sensors
                .iter()
                .map(|(_, bs)| bs.iter().map(|b| b.count).sum::<u64>())
                .sum(),
        }
    }

    /// Per-sensor reading (or represented-reading) counts, for retention
    /// accounting.
    pub fn sensor_counts(&self) -> Vec<(SensorId, u64)> {
        match &self.blocks {
            SegmentBlocks::Raw(sensors) => sensors
                .iter()
                .map(|(s, rs)| (*s, rs.len() as u64))
                .collect(),
            SegmentBlocks::Compacted(sensors) => sensors
                .iter()
                .map(|(s, bs)| (*s, bs.iter().map(|b| b.count).sum::<u64>()))
                .collect(),
        }
    }

    /// Push readings for `sensor` within `[start, end)` onto `out` (raw
    /// segments only; compacted segments contribute nothing here).
    pub fn readings_for(
        &self,
        sensor: SensorId,
        start: Timestamp,
        end: Timestamp,
        out: &mut Vec<Reading>,
    ) {
        if let SegmentBlocks::Raw(sensors) = &self.blocks {
            for (s, rs) in sensors {
                if *s != sensor {
                    continue;
                }
                for r in rs {
                    if r.ts >= start && r.ts < end {
                        out.push(*r);
                    }
                }
            }
        }
    }

    /// Push rollup buckets for `sensor` whose start lies in `[start, end)`
    /// onto `out` (compacted segments only).
    pub fn buckets_for(
        &self,
        sensor: SensorId,
        start: Timestamp,
        end: Timestamp,
        out: &mut Vec<RollupBucket>,
    ) {
        if let SegmentBlocks::Compacted(sensors) = &self.blocks {
            for (s, bs) in sensors {
                if *s != sensor {
                    continue;
                }
                for b in bs {
                    if b.start >= start && b.start < end {
                        out.push(*b);
                    }
                }
            }
        }
    }
}

/// Canonical file name for segment `seq`, e.g. `seg-000000000042.seg`.
pub fn file_name(seq: u64) -> String {
    format!("seg-{seq:012}.seg")
}

/// Parse a segment file name back to its sequence number.
pub fn parse_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn put_column(out: &mut Vec<u8>, col: &[u8]) {
    out.extend_from_slice(&(col.len() as u32).to_le_bytes());
    out.extend_from_slice(col);
}

/// Encode a segment to its on-disk representation.
pub fn encode(seg: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&SEG_MAGIC);
    let kind: u8 = match seg.kind() {
        SegmentKind::Raw => 0,
        SegmentKind::Compacted => 1,
    };
    out.push(kind);
    out.extend_from_slice(&seg.bucket_ms.to_le_bytes());
    out.extend_from_slice(&seg.seq.to_le_bytes());
    match &seg.blocks {
        SegmentBlocks::Raw(sensors) => {
            out.extend_from_slice(&(sensors.len() as u32).to_le_bytes());
            for (s, rs) in sensors {
                out.extend_from_slice(&s.0.to_le_bytes());
                out.extend_from_slice(&(rs.len() as u32).to_le_bytes());
                let ts: Vec<u64> = rs.iter().map(|r| r.ts.0).collect();
                let vals: Vec<u64> = rs.iter().map(|r| r.value.to_bits()).collect();
                put_column(&mut out, &codec::encode_timestamps(&ts));
                put_column(&mut out, &codec::encode_value_bits(&vals));
            }
        }
        SegmentBlocks::Compacted(sensors) => {
            out.extend_from_slice(&(sensors.len() as u32).to_le_bytes());
            for (s, bs) in sensors {
                out.extend_from_slice(&s.0.to_le_bytes());
                out.extend_from_slice(&(bs.len() as u32).to_le_bytes());
                let starts: Vec<u64> = bs.iter().map(|b| b.start.0).collect();
                let counts: Vec<u64> = bs.iter().map(|b| b.count).collect();
                let first_ts: Vec<u64> = bs.iter().map(|b| b.first_ts.0).collect();
                let last_ts: Vec<u64> = bs.iter().map(|b| b.last_ts.0).collect();
                put_column(&mut out, &codec::encode_timestamps(&starts));
                put_column(&mut out, &codec::encode_timestamps(&counts));
                put_column(&mut out, &codec::encode_timestamps(&first_ts));
                put_column(&mut out, &codec::encode_timestamps(&last_ts));
                for col in [
                    bs.iter().map(|b| b.sum).collect::<Vec<f64>>(),
                    bs.iter().map(|b| b.min).collect(),
                    bs.iter().map(|b| b.max).collect(),
                    bs.iter().map(|b| b.first).collect(),
                    bs.iter().map(|b| b.last).collect(),
                ] {
                    put_column(&mut out, &codec::encode_values(&col));
                }
            }
        }
    }
    out.extend_from_slice(&seg.min_ts().0.to_le_bytes());
    out.extend_from_slice(&seg.max_ts().0.to_le_bytes());
    out.extend_from_slice(&seg.total_readings().to_le_bytes());
    let sum = codec::fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out.extend_from_slice(&SEG_END);
    out
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)?.try_into().ok().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    fn column(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// Decode and fully verify a segment file.
pub fn decode(bytes: &[u8]) -> Result<Segment, SegmentError> {
    // Footer geometry first: checksum covers everything before itself.
    const TAIL: usize = 8 + 8; // checksum + end magic
    if bytes.len() < SEG_MAGIC.len() + TAIL {
        return Err(SegmentError::Truncated);
    }
    let (body_and_footer, tail) = bytes.split_at(bytes.len() - TAIL);
    let (sum_bytes, end_magic) = tail.split_at(8);
    if end_magic != SEG_END {
        return Err(SegmentError::BadMagic);
    }
    let stored_sum = u64::from_le_bytes(sum_bytes.try_into().map_err(|_| SegmentError::Truncated)?);
    if codec::fnv1a64(body_and_footer) != stored_sum {
        return Err(SegmentError::BadChecksum);
    }

    let mut r = ByteReader::new(body_and_footer);
    let magic = r.take(8).ok_or(SegmentError::Truncated)?;
    if magic != SEG_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    let kind = r.u8().ok_or(SegmentError::Truncated)?;
    let bucket_ms = r.u64().ok_or(SegmentError::Truncated)?;
    let seq = r.u64().ok_or(SegmentError::Truncated)?;
    let n_sensors = r.u32().ok_or(SegmentError::Truncated)? as usize;
    let blocks = match kind {
        0 => {
            let mut sensors = Vec::with_capacity(n_sensors);
            for _ in 0..n_sensors {
                let sensor = SensorId(r.u32().ok_or(SegmentError::Truncated)?);
                let count = r.u32().ok_or(SegmentError::Truncated)? as usize;
                let ts_col = r.column().ok_or(SegmentError::Truncated)?;
                let val_col = r.column().ok_or(SegmentError::Truncated)?;
                let ts = codec::decode_timestamps(ts_col, count).ok_or(SegmentError::Malformed)?;
                let vals =
                    codec::decode_value_bits(val_col, count).ok_or(SegmentError::Malformed)?;
                let readings: Vec<Reading> = ts
                    .into_iter()
                    .zip(vals)
                    .map(|(t, v)| Reading {
                        ts: Timestamp(t),
                        value: f64::from_bits(v),
                    })
                    .collect();
                sensors.push((sensor, readings));
            }
            SegmentBlocks::Raw(sensors)
        }
        1 => {
            let mut sensors = Vec::with_capacity(n_sensors);
            for _ in 0..n_sensors {
                let sensor = SensorId(r.u32().ok_or(SegmentError::Truncated)?);
                let count = r.u32().ok_or(SegmentError::Truncated)? as usize;
                let mut ts_cols = Vec::with_capacity(4);
                for _ in 0..4 {
                    let col = r.column().ok_or(SegmentError::Truncated)?;
                    ts_cols
                        .push(codec::decode_timestamps(col, count).ok_or(SegmentError::Malformed)?);
                }
                let mut val_cols = Vec::with_capacity(5);
                for _ in 0..5 {
                    let col = r.column().ok_or(SegmentError::Truncated)?;
                    val_cols.push(codec::decode_values(col, count).ok_or(SegmentError::Malformed)?);
                }
                let mut buckets = Vec::with_capacity(count);
                for i in 0..count {
                    buckets.push(RollupBucket {
                        start: Timestamp(ts_cols[0][i]),
                        count: ts_cols[1][i],
                        first_ts: Timestamp(ts_cols[2][i]),
                        last_ts: Timestamp(ts_cols[3][i]),
                        sum: val_cols[0][i],
                        min: val_cols[1][i],
                        max: val_cols[2][i],
                        first: val_cols[3][i],
                        last: val_cols[4][i],
                    });
                }
                sensors.push((sensor, buckets));
            }
            SegmentBlocks::Compacted(sensors)
        }
        _ => return Err(SegmentError::Malformed),
    };
    let min_ts = r.u64().ok_or(SegmentError::Truncated)?;
    let max_ts = r.u64().ok_or(SegmentError::Truncated)?;
    let total = r.u64().ok_or(SegmentError::Truncated)?;
    if r.pos != body_and_footer.len() {
        return Err(SegmentError::Malformed);
    }
    let seg = Segment {
        seq,
        bucket_ms,
        blocks,
    };
    if seg.min_ts().0 != min_ts || seg.max_ts().0 != max_ts || seg.total_readings() != total {
        return Err(SegmentError::Malformed);
    }
    Ok(seg)
}

/// Fold a raw segment into a compacted one at `bucket_ms`, reusing the
/// workspace's [`RollupTier`] fold so compaction semantics match the online
/// rollup tiers exactly. Compacting a compacted segment returns a clone.
pub fn compact(seg: &Segment, bucket_ms: u64) -> Segment {
    let SegmentBlocks::Raw(sensors) = &seg.blocks else {
        return seg.clone();
    };
    let mut out = Vec::with_capacity(sensors.len());
    for (s, rs) in sensors {
        let spec = RollupTierSpec {
            bucket_ms,
            capacity: rs.len().max(1),
        };
        let mut tier = RollupTier::new(spec);
        for r in rs {
            tier.observe(*r);
        }
        let mut buckets = Vec::new();
        tier.range_into(Timestamp::ZERO, Timestamp::MAX, &mut buckets);
        out.push((*s, buckets));
    }
    Segment {
        seq: seg.seq,
        bucket_ms,
        blocks: SegmentBlocks::Compacted(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_raw(seq: u64) -> Segment {
        let a: Vec<Reading> = (0..200u64)
            .map(|i| Reading {
                ts: Timestamp(10_000 + i * 250),
                value: 40.0 + (i % 7) as f64,
            })
            .collect();
        let b: Vec<Reading> = (0..50u64)
            .map(|i| Reading {
                ts: Timestamp(12_000 + i * 1000),
                value: if i % 9 == 0 {
                    f64::NAN
                } else {
                    -0.25 * i as f64
                },
            })
            .collect();
        Segment::raw(seq, vec![(SensorId(3), a), (SensorId(11), b)])
    }

    fn assert_segments_equal(a: &Segment, b: &Segment) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.bucket_ms, b.bucket_ms);
        match (&a.blocks, &b.blocks) {
            (SegmentBlocks::Raw(x), SegmentBlocks::Raw(y)) => {
                assert_eq!(x.len(), y.len());
                for ((s1, r1), (s2, r2)) in x.iter().zip(y.iter()) {
                    assert_eq!(s1, s2);
                    assert_eq!(r1.len(), r2.len());
                    for (u, v) in r1.iter().zip(r2.iter()) {
                        assert_eq!(u.ts, v.ts);
                        assert_eq!(u.value.to_bits(), v.value.to_bits());
                    }
                }
            }
            (SegmentBlocks::Compacted(x), SegmentBlocks::Compacted(y)) => {
                assert_eq!(x.len(), y.len());
                for ((s1, b1), (s2, b2)) in x.iter().zip(y.iter()) {
                    assert_eq!(s1, s2);
                    assert_eq!(b1.len(), b2.len());
                    for (u, v) in b1.iter().zip(b2.iter()) {
                        assert_eq!(u.start, v.start);
                        assert_eq!(u.count, v.count);
                        assert_eq!(u.first_ts, v.first_ts);
                        assert_eq!(u.last_ts, v.last_ts);
                        assert_eq!(u.sum.to_bits(), v.sum.to_bits());
                        assert_eq!(u.min.to_bits(), v.min.to_bits());
                        assert_eq!(u.max.to_bits(), v.max.to_bits());
                        assert_eq!(u.first.to_bits(), v.first.to_bits());
                        assert_eq!(u.last.to_bits(), v.last.to_bits());
                    }
                }
            }
            _ => panic!("segment kind mismatch"),
        }
    }

    #[test]
    fn raw_round_trip_is_bit_identical() {
        let seg = sample_raw(5);
        let bytes = encode(&seg);
        let back = decode(&bytes).unwrap();
        assert_segments_equal(&seg, &back);
        assert_eq!(back.kind(), SegmentKind::Raw);
        assert_eq!(back.total_readings(), 250);
    }

    #[test]
    fn compacted_round_trip_is_bit_identical() {
        let folded = compact(&sample_raw(6), 60_000);
        assert_eq!(folded.kind(), SegmentKind::Compacted);
        assert_eq!(folded.total_readings(), 250); // counts preserved
        let bytes = encode(&folded);
        let back = decode(&bytes).unwrap();
        assert_segments_equal(&folded, &back);
    }

    #[test]
    fn every_truncation_point_fails_cleanly() {
        let bytes = encode(&sample_raw(7));
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode(&sample_raw(8));
        // Stride through the file flipping one bit at a time; checksum or
        // magic verification must reject every corruption.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at {i} decoded");
        }
    }

    #[test]
    fn file_name_round_trip() {
        assert_eq!(file_name(42), "seg-000000000042.seg");
        assert_eq!(parse_file_name("seg-000000000042.seg"), Some(42));
        assert_eq!(parse_file_name("seg-42.seg"), None);
        assert_eq!(parse_file_name("wal.log"), None);
        assert_eq!(parse_file_name("seg-00000000004x.seg"), None);
    }

    #[test]
    fn empty_segment_encodes_and_decodes() {
        let seg = Segment::raw(1, Vec::new());
        let back = decode(&encode(&seg)).unwrap();
        assert_eq!(back.total_readings(), 0);
        assert_eq!(back.min_ts(), Timestamp::MAX);
        assert_eq!(back.max_ts(), Timestamp::ZERO);
    }

    #[test]
    fn compaction_matches_independent_fold() {
        // Recompute the expected buckets with a straight-line grouping loop
        // (independent of RollupTier) and compare field-by-field.
        let readings: Vec<Reading> = (0..500u64)
            .map(|i| Reading {
                ts: Timestamp(7_777 + i * 333),
                value: 100.0 - (i % 13) as f64,
            })
            .collect();
        let seg = Segment::raw(4, vec![(SensorId(1), readings.clone())]);
        let folded = compact(&seg, 10_000);
        let mut expected: Vec<RollupBucket> = Vec::new();
        for r in &readings {
            let start = Timestamp(r.ts.0 - r.ts.0 % 10_000);
            match expected.last_mut() {
                Some(b) if b.start == start => {
                    b.count += 1;
                    b.sum += r.value;
                    b.min = b.min.min(r.value);
                    b.max = b.max.max(r.value);
                    b.last = r.value;
                    b.last_ts = r.ts;
                }
                _ => expected.push(RollupBucket {
                    start,
                    count: 1,
                    sum: r.value,
                    min: r.value,
                    max: r.value,
                    first: r.value,
                    last: r.value,
                    first_ts: r.ts,
                    last_ts: r.ts,
                }),
            }
        }
        let SegmentBlocks::Compacted(sensors) = &folded.blocks else {
            unreachable!()
        };
        let (_, got) = &sensors[0];
        assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(expected.iter()) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.count, b.count);
            assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            assert_eq!(a.min.to_bits(), b.min.to_bits());
            assert_eq!(a.max.to_bits(), b.max.to_bits());
            assert_eq!(a.first.to_bits(), b.first.to_bits());
            assert_eq!(a.last.to_bits(), b.last.to_bits());
            assert_eq!(a.first_ts, b.first_ts);
            assert_eq!(a.last_ts, b.last_ts);
        }
    }
}
