//! Injectable filesystem abstraction for the durable storage engine.
//!
//! All I/O performed by [`crate::storage::PersistentEngine`] goes through the
//! [`StorageFs`] trait so that durability hazards — torn writes, short reads,
//! fsync loss, power cuts — can be simulated deterministically in tests. Two
//! implementations are provided:
//!
//! - [`SimFs`]: an in-memory filesystem that tracks, per file, both the
//!   *visible* contents (what a reader sees now) and the *durable* contents
//!   (what survives a crash, i.e. what has been fsync'd). Fault knobs allow
//!   tests to lose fsyncs, tear the tail of the last append, and serve short
//!   reads.
//! - [`RealFs`]: a thin wrapper over `std::fs` rooted at a directory, using
//!   the write-to-temp-then-rename idiom for atomic replacement.
//!
//! Both expose a **logical** clock ([`StorageFs::clock_ns`]) that advances
//! with I/O operations rather than wall time, keeping the storage layer
//! deterministic and compliant with the workspace lint that bans wall-clock
//! reads from digest-bearing crates.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Error surfaced by [`StorageFs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The named file does not exist.
    NotFound(String),
    /// Any other I/O failure, with a human-readable description.
    Io(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(path) => write!(f, "file not found: {path}"),
            FsError::Io(msg) => write!(f, "storage i/o error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Flat-namespace filesystem interface used by the storage engine.
///
/// Paths are plain file names (the engine never uses directories); an
/// implementation may map them onto a root directory. Implementations must be
/// safe to share across threads.
pub trait StorageFs: Send + Sync {
    /// Append `bytes` to the end of `path`, creating the file if absent.
    ///
    /// Appended data is *visible* to subsequent [`read`](Self::read)s
    /// immediately but only becomes *durable* (crash-surviving) after a
    /// successful [`sync`](Self::sync).
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), FsError>;

    /// Make all previously appended data of `path` durable (fsync).
    fn sync(&self, path: &str) -> Result<(), FsError>;

    /// Read the entire visible contents of `path`.
    fn read(&self, path: &str) -> Result<Vec<u8>, FsError>;

    /// Atomically replace `path` with `bytes` and make the result durable
    /// (write-temp / fsync / rename on a real filesystem).
    fn write_atomic(&self, path: &str, bytes: &[u8]) -> Result<(), FsError>;

    /// Truncate `path` to `len` bytes. Used to drop a torn WAL tail; the
    /// truncation is treated as immediately durable.
    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError>;

    /// Remove `path`. Removing a missing file is an error.
    fn remove(&self, path: &str) -> Result<(), FsError>;

    /// List all file names in the store, sorted lexicographically.
    fn list(&self) -> Result<Vec<String>, FsError>;

    /// Logical clock in nanoseconds. Advances with I/O activity, not wall
    /// time, so fsync timing and recovery timing stay deterministic.
    fn clock_ns(&self) -> u64;
}

/// Per-file state tracked by [`SimFs`].
#[derive(Debug, Clone, Default)]
struct SimFile {
    /// Contents visible to readers right now.
    data: Vec<u8>,
    /// Contents that survive a crash (everything fsync'd so far).
    durable: Vec<u8>,
    /// Whether the file's existence itself has been made durable. A file
    /// created and never synced disappears entirely on crash.
    created_durably: bool,
}

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<String, SimFile>,
    /// File that received the most recent append — the candidate for a torn
    /// tail on [`SimFs::crash_torn`].
    last_appended: Option<String>,
    /// Number of upcoming sync/write_atomic durability points that will be
    /// silently lost (the call still reports success — a "lying fsync").
    lose_syncs: u32,
    /// Number of upcoming reads that will be truncated to `short_read_len`.
    short_reads: u32,
    short_read_len: usize,
    /// Logical operation counter backing `clock_ns`.
    ops: u64,
    /// Number of durability points that actually took effect.
    syncs: u64,
}

/// Deterministic in-memory filesystem with crash and fault simulation.
///
/// Every mutation distinguishes *visible* from *durable* state, so a test can
/// drive the engine to any lifecycle point, call [`crash`](Self::crash) (or
/// [`crash_torn`](Self::crash_torn)), and reopen over exactly the bytes a
/// power cut would have left behind.
#[derive(Debug, Default)]
pub struct SimFs {
    state: Mutex<SimState>,
}

impl SimFs {
    /// Create an empty simulated filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate a power cut: every file reverts to its durable contents and
    /// files never made durable disappear. Visible state afterwards equals
    /// durable state (the surviving bytes are the new baseline).
    pub fn crash(&self) {
        let mut st = self.state.lock();
        st.files.retain(|_, f| f.created_durably);
        for f in st.files.values_mut() {
            f.data = f.durable.clone();
        }
        st.last_appended = None;
    }

    /// Simulate a power cut that leaves a *torn write*: like
    /// [`crash`](Self::crash), but the file that received the most recent
    /// append keeps the first `keep` bytes of its un-synced suffix. The torn
    /// prefix becomes part of the surviving (durable) contents, modelling a
    /// partial page write that made it to disk.
    pub fn crash_torn(&self, keep: usize) {
        let mut st = self.state.lock();
        let torn = st.last_appended.clone();
        st.files
            .retain(|name, f| f.created_durably || Some(name) == torn.as_ref());
        for (name, f) in st.files.iter_mut() {
            let mut survived = f.durable.clone();
            if Some(name) == torn.as_ref() {
                let pending = f.data.get(f.durable.len()..).unwrap_or(&[]);
                survived.extend_from_slice(pending.get(..keep.min(pending.len())).unwrap_or(&[]));
                f.created_durably = true;
            }
            f.data = survived.clone();
            f.durable = survived;
        }
        st.last_appended = None;
    }

    /// Arrange for the next `n` durability points (sync or atomic write) to
    /// be silently lost while still reporting success — a lying fsync.
    pub fn lose_next_syncs(&self, n: u32) {
        self.state.lock().lose_syncs = n;
    }

    /// Arrange for the next `n` reads to return at most `len` bytes — a
    /// short read.
    pub fn short_next_reads(&self, n: u32, len: usize) {
        let mut st = self.state.lock();
        st.short_reads = n;
        st.short_read_len = len;
    }

    /// Number of durability points that actually took effect (not lost).
    pub fn sync_count(&self) -> u64 {
        self.state.lock().syncs
    }

    /// Whether `path` currently exists (visible namespace).
    pub fn exists(&self, path: &str) -> bool {
        self.state.lock().files.contains_key(path)
    }

    /// Length in bytes of the durable contents of `path`, if it exists.
    pub fn durable_len(&self, path: &str) -> Option<usize> {
        self.state.lock().files.get(path).map(|f| f.durable.len())
    }
}

impl StorageFs for SimFs {
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        let mut st = self.state.lock();
        st.ops += 1;
        st.files
            .entry(path.to_string())
            .or_default()
            .data
            .extend_from_slice(bytes);
        st.last_appended = Some(path.to_string());
        Ok(())
    }

    fn sync(&self, path: &str) -> Result<(), FsError> {
        let mut st = self.state.lock();
        st.ops += 1;
        if !st.files.contains_key(path) {
            return Err(FsError::NotFound(path.to_string()));
        }
        if st.lose_syncs > 0 {
            st.lose_syncs -= 1;
            return Ok(());
        }
        st.syncs += 1;
        if let Some(f) = st.files.get_mut(path) {
            f.durable = f.data.clone();
            f.created_durably = true;
        }
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let mut st = self.state.lock();
        st.ops += 1;
        let short = if st.short_reads > 0 {
            st.short_reads -= 1;
            Some(st.short_read_len)
        } else {
            None
        };
        let f = st
            .files
            .get(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        match short {
            Some(len) => Ok(f.data.get(..len.min(f.data.len())).unwrap_or(&[]).to_vec()),
            None => Ok(f.data.clone()),
        }
    }

    fn write_atomic(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        let mut st = self.state.lock();
        st.ops += 1;
        let lost = if st.lose_syncs > 0 {
            st.lose_syncs -= 1;
            true
        } else {
            st.syncs += 1;
            false
        };
        let f = st.files.entry(path.to_string()).or_default();
        f.data = bytes.to_vec();
        if !lost {
            // Rename + directory fsync took effect: the replacement is durable.
            f.durable = bytes.to_vec();
            f.created_durably = true;
        }
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError> {
        let mut st = self.state.lock();
        st.ops += 1;
        let f = st
            .files
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let len = len as usize;
        f.data.truncate(len);
        f.durable.truncate(len.min(f.durable.len()));
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        let mut st = self.state.lock();
        st.ops += 1;
        st.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        let mut st = self.state.lock();
        st.ops += 1;
        Ok(st.files.keys().cloned().collect())
    }

    fn clock_ns(&self) -> u64 {
        let mut st = self.state.lock();
        st.ops += 1;
        st.ops.saturating_mul(1_000)
    }
}

/// [`StorageFs`] over a real directory via `std::fs`.
///
/// Atomic replacement uses write-temp / fsync / rename / fsync-dir. The
/// clock remains logical (an atomic counter) so the storage layer never
/// reads wall time even on a real filesystem.
#[derive(Debug)]
pub struct RealFs {
    root: PathBuf,
    ops: AtomicU64,
}

impl RealFs {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, FsError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| FsError::Io(e.to_string()))?;
        Ok(Self {
            root,
            ops: AtomicU64::new(0),
        })
    }

    fn full(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    fn map_err(path: &str, e: std::io::Error) -> FsError {
        if e.kind() == std::io::ErrorKind::NotFound {
            FsError::NotFound(path.to_string())
        } else {
            FsError::Io(e.to_string())
        }
    }
}

impl StorageFs for RealFs {
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        use std::io::Write;
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.full(path))
            .map_err(|e| Self::map_err(path, e))?;
        f.write_all(bytes).map_err(|e| Self::map_err(path, e))
    }

    fn sync(&self, path: &str) -> Result<(), FsError> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let f = std::fs::File::open(self.full(path)).map_err(|e| Self::map_err(path, e))?;
        f.sync_all().map_err(|e| Self::map_err(path, e))
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        std::fs::read(self.full(path)).map_err(|e| Self::map_err(path, e))
    }

    fn write_atomic(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let tmp = self.full(&format!("{path}.tmp"));
        std::fs::write(&tmp, bytes).map_err(|e| Self::map_err(path, e))?;
        let f = std::fs::File::open(&tmp).map_err(|e| Self::map_err(path, e))?;
        f.sync_all().map_err(|e| Self::map_err(path, e))?;
        std::fs::rename(&tmp, self.full(path)).map_err(|e| Self::map_err(path, e))?;
        if let Ok(dir) = std::fs::File::open(&self.root) {
            // Directory fsync is best-effort: not all platforms support it.
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), FsError> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.full(path))
            .map_err(|e| Self::map_err(path, e))?;
        f.set_len(len).map_err(|e| Self::map_err(path, e))
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        std::fs::remove_file(self.full(path)).map_err(|e| Self::map_err(path, e))
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root).map_err(|e| FsError::Io(e.to_string()))?;
        for entry in entries {
            let entry = entry.map_err(|e| FsError::Io(e.to_string()))?;
            let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
            if !is_file {
                continue;
            }
            if let Ok(name) = entry.file_name().into_string() {
                if !name.ends_with(".tmp") {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn clock_ns(&self) -> u64 {
        self.ops
            .fetch_add(1, Ordering::Relaxed)
            .saturating_mul(1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_is_visible_but_not_durable_until_sync() {
        let fs = SimFs::new();
        fs.append("wal", b"hello").unwrap();
        assert_eq!(fs.read("wal").unwrap(), b"hello");
        fs.crash();
        // Never synced: file disappears entirely.
        assert!(matches!(fs.read("wal"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn sync_makes_data_survive_crash() {
        let fs = SimFs::new();
        fs.append("wal", b"hello").unwrap();
        fs.sync("wal").unwrap();
        fs.append("wal", b" world").unwrap();
        fs.crash();
        assert_eq!(fs.read("wal").unwrap(), b"hello");
    }

    #[test]
    fn crash_torn_keeps_prefix_of_pending_tail() {
        let fs = SimFs::new();
        fs.append("wal", b"abcd").unwrap();
        fs.sync("wal").unwrap();
        fs.append("wal", b"efgh").unwrap();
        fs.crash_torn(2);
        assert_eq!(fs.read("wal").unwrap(), b"abcdef");
        // The torn bytes are now the durable baseline.
        fs.crash();
        assert_eq!(fs.read("wal").unwrap(), b"abcdef");
    }

    #[test]
    fn lying_fsync_loses_durability_point() {
        let fs = SimFs::new();
        fs.append("wal", b"abcd").unwrap();
        fs.lose_next_syncs(1);
        fs.sync("wal").unwrap(); // reports success, does nothing
        fs.crash();
        assert!(matches!(fs.read("wal"), Err(FsError::NotFound(_))));
        assert_eq!(fs.sync_count(), 0);
    }

    #[test]
    fn lost_write_atomic_keeps_old_durable_contents() {
        let fs = SimFs::new();
        fs.write_atomic("seg", b"old").unwrap();
        fs.lose_next_syncs(1);
        fs.write_atomic("seg", b"new").unwrap();
        assert_eq!(fs.read("seg").unwrap(), b"new"); // visible now
        fs.crash();
        assert_eq!(fs.read("seg").unwrap(), b"old"); // rename lost
    }

    #[test]
    fn short_read_truncates_and_expires() {
        let fs = SimFs::new();
        fs.append("seg", b"0123456789").unwrap();
        fs.short_next_reads(1, 4);
        assert_eq!(fs.read("seg").unwrap(), b"0123");
        assert_eq!(fs.read("seg").unwrap(), b"0123456789");
    }

    #[test]
    fn truncate_applies_to_visible_and_durable() {
        let fs = SimFs::new();
        fs.append("wal", b"0123456789").unwrap();
        fs.sync("wal").unwrap();
        fs.truncate("wal", 4).unwrap();
        assert_eq!(fs.read("wal").unwrap(), b"0123");
        fs.crash();
        assert_eq!(fs.read("wal").unwrap(), b"0123");
    }

    #[test]
    fn list_is_sorted_and_remove_works() {
        let fs = SimFs::new();
        fs.append("b", b"x").unwrap();
        fs.append("a", b"x").unwrap();
        assert_eq!(fs.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        fs.remove("a").unwrap();
        assert_eq!(fs.list().unwrap(), vec!["b".to_string()]);
        assert!(fs.remove("a").is_err());
    }

    #[test]
    fn logical_clock_is_monotone() {
        let fs = SimFs::new();
        let a = fs.clock_ns();
        fs.append("f", b"x").unwrap();
        let b = fs.clock_ns();
        assert!(b > a);
    }

    #[test]
    // Touches the real filesystem, which Miri's isolation rejects; the
    // SimFs tests cover the same trait surface hermetically.
    #[cfg_attr(miri, ignore)]
    fn real_fs_round_trip() {
        let dir = std::env::temp_dir().join(format!("oda-realfs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs::new(&dir).unwrap();
        fs.append("wal", b"abc").unwrap();
        fs.sync("wal").unwrap();
        fs.write_atomic("seg-000000000001.seg", b"segment").unwrap();
        assert_eq!(fs.read("wal").unwrap(), b"abc");
        assert_eq!(fs.read("seg-000000000001.seg").unwrap(), b"segment");
        assert_eq!(
            fs.list().unwrap(),
            vec!["seg-000000000001.seg".to_string(), "wal".to_string()]
        );
        fs.truncate("wal", 1).unwrap();
        assert_eq!(fs.read("wal").unwrap(), b"a");
        fs.remove("wal").unwrap();
        assert!(matches!(fs.read("wal"), Err(FsError::NotFound(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
