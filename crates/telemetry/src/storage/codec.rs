//! Columnar codecs for segment blocks.
//!
//! Two Gorilla-style codecs (Pelkonen et al., VLDB 2015) specialised for the
//! telemetry archive:
//!
//! - **Timestamps**: delta-of-delta with zig-zag variable-width buckets.
//!   All arithmetic is wrapping over `u64`, so *any* sequence round-trips
//!   bit-for-bit — monotonicity improves compression but is not required
//!   for correctness.
//! - **Values**: XOR compression over the raw IEEE-754 bit patterns
//!   (`f64::to_bits`), so NaN payloads, ±inf and `-0.0` are preserved
//!   exactly.
//!
//! Decoders are corruption-safe: every read is bounds-checked and returns
//! `None` on overrun instead of panicking, so a torn or bit-flipped block
//! degrades to a decode failure the engine can report.

/// MSB-first bit writer backing both codecs.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Total number of bits written.
    bits: usize,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        let used = self.bits % 8;
        if used == 0 {
            self.buf.push(0);
        }
        if bit {
            if let Some(last) = self.buf.last_mut() {
                *last |= 0x80 >> used;
            }
        }
        self.bits += 1;
    }

    /// Append the low `n` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.bits
    }

    /// Finish and return the byte buffer (trailing bits zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// MSB-first bounds-checked bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Read one bit, or `None` if the input is exhausted.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `n` bits into the low bits of a `u64`, or `None` on overrun.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encode a timestamp column (millisecond values) with delta-of-delta
/// compression. The empty slice encodes to an empty buffer.
pub fn encode_timestamps(ts: &[u64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut iter = ts.iter();
    let Some(&first) = iter.next() else {
        return w.finish();
    };
    w.write_bits(first, 64);
    let mut prev = first;
    let mut prev_delta = 0u64;
    for &t in iter {
        let delta = t.wrapping_sub(prev);
        let dod = delta.wrapping_sub(prev_delta) as i64;
        let zz = zigzag(dod);
        if zz == 0 {
            w.write_bit(false);
        } else if zz < (1 << 7) {
            w.write_bits(0b10, 2);
            w.write_bits(zz, 7);
        } else if zz < (1 << 9) {
            w.write_bits(0b110, 3);
            w.write_bits(zz, 9);
        } else if zz < (1 << 16) {
            w.write_bits(0b1110, 4);
            w.write_bits(zz, 16);
        } else if zz < (1 << 32) {
            w.write_bits(0b11110, 5);
            w.write_bits(zz, 32);
        } else {
            w.write_bits(0b11111, 5);
            w.write_bits(zz, 64);
        }
        prev = t;
        prev_delta = delta;
    }
    w.finish()
}

/// Decode `count` timestamps produced by [`encode_timestamps`]. Returns
/// `None` if the buffer is too short or malformed.
pub fn decode_timestamps(bytes: &[u8], count: usize) -> Option<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Some(out);
    }
    let mut r = BitReader::new(bytes);
    let first = r.read_bits(64)?;
    out.push(first);
    let mut prev = first;
    let mut prev_delta = 0u64;
    while out.len() < count {
        let zz = if !r.read_bit()? {
            0
        } else if !r.read_bit()? {
            r.read_bits(7)?
        } else if !r.read_bit()? {
            r.read_bits(9)?
        } else if !r.read_bit()? {
            r.read_bits(16)?
        } else if !r.read_bit()? {
            r.read_bits(32)?
        } else {
            r.read_bits(64)?
        };
        let dod = unzigzag(zz);
        let delta = prev_delta.wrapping_add(dod as u64);
        let t = prev.wrapping_add(delta);
        out.push(t);
        prev = t;
        prev_delta = delta;
    }
    Some(out)
}

/// Encode a column of raw 64-bit patterns with Gorilla XOR compression.
///
/// Works on bit patterns, not floats, so it is also used for integer
/// columns (bucket counts) and preserves every NaN payload exactly.
pub fn encode_value_bits(vals: &[u64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut iter = vals.iter();
    let Some(&first) = iter.next() else {
        return w.finish();
    };
    w.write_bits(first, 64);
    let mut prev = first;
    // Sentinel: no previous window yet.
    let mut win_leading = 65u32;
    let mut win_len = 0u32;
    for &v in iter {
        let xor = v ^ prev;
        if xor == 0 {
            w.write_bit(false);
        } else {
            w.write_bit(true);
            let leading = xor.leading_zeros().min(31);
            let trailing = xor.trailing_zeros();
            let meaningful = 64 - leading - trailing;
            let win_trailing = 64u32.saturating_sub(win_leading + win_len);
            if win_leading <= 64 && leading >= win_leading && trailing >= win_trailing {
                // Reuse the previous window.
                w.write_bit(false);
                w.write_bits(xor >> win_trailing, win_len);
            } else {
                w.write_bit(true);
                w.write_bits(u64::from(leading), 5);
                w.write_bits(u64::from(meaningful - 1), 6);
                w.write_bits(xor >> trailing, meaningful);
                win_leading = leading;
                win_len = meaningful;
            }
        }
        prev = v;
    }
    w.finish()
}

/// Decode `count` bit patterns produced by [`encode_value_bits`].
pub fn decode_value_bits(bytes: &[u8], count: usize) -> Option<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Some(out);
    }
    let mut r = BitReader::new(bytes);
    let first = r.read_bits(64)?;
    out.push(first);
    let mut prev = first;
    let mut win_leading = 0u32;
    let mut win_len = 0u32;
    while out.len() < count {
        let v = if !r.read_bit()? {
            prev
        } else if !r.read_bit()? {
            // Previous window; a well-formed stream never reaches here
            // before a window is established (win_len 0 reads 0 bits and
            // reproduces prev, which a correct encoder would have written
            // as a single 0 bit — tolerated, not panicked on).
            if win_len == 0 {
                prev
            } else {
                let win_trailing = 64u32.saturating_sub(win_leading + win_len);
                let bits = r.read_bits(win_len)?;
                prev ^ (bits << win_trailing)
            }
        } else {
            let leading = r.read_bits(5)? as u32;
            let meaningful = r.read_bits(6)? as u32 + 1;
            let trailing = 64u32.checked_sub(leading + meaningful)?;
            let bits = r.read_bits(meaningful)?;
            win_leading = leading;
            win_len = meaningful;
            prev ^ (bits << trailing)
        };
        out.push(v);
        prev = v;
    }
    Some(out)
}

/// Encode an `f64` column via [`encode_value_bits`] on the raw bit patterns.
pub fn encode_values(vals: &[f64]) -> Vec<u8> {
    let bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
    encode_value_bits(&bits)
}

/// Decode an `f64` column written by [`encode_values`].
pub fn decode_values(bytes: &[u8], count: usize) -> Option<Vec<f64>> {
    decode_value_bits(bytes, count).map(|bits| bits.into_iter().map(f64::from_bits).collect())
}

/// FNV-1a 64-bit hash — the checksum used by WAL records and segment
/// footers, and the digest primitive in integrity tests.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xdead_beef, 32);
        w.write_bit(true);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bit(), Some(true));
    }

    #[test]
    fn bit_reader_returns_none_on_overrun() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8), Some(0xff));
        assert_eq!(r.read_bit(), None);
        assert_eq!(BitReader::new(&[]).read_bits(1), None);
    }

    #[test]
    fn timestamps_round_trip_regular_cadence() {
        let ts: Vec<u64> = (0..1000u64).map(|i| 1_000_000 + i * 100).collect();
        let enc = encode_timestamps(&ts);
        // Regular cadence: first stamp 64 bits + one dod bucket + ~1 bit per
        // point thereafter. Assert real compression happened.
        assert!(enc.len() < ts.len() * 2);
        assert_eq!(decode_timestamps(&enc, ts.len()), Some(ts));
    }

    #[test]
    fn timestamps_round_trip_adversarial() {
        let ts = vec![u64::MAX, 0, 1, u64::MAX - 1, 42, 42, 43, 0, u64::MAX / 2];
        let enc = encode_timestamps(&ts);
        assert_eq!(decode_timestamps(&enc, ts.len()), Some(ts));
    }

    #[test]
    fn empty_and_single_columns() {
        assert!(encode_timestamps(&[]).is_empty());
        assert_eq!(decode_timestamps(&[], 0), Some(vec![]));
        let enc = encode_timestamps(&[7]);
        assert_eq!(decode_timestamps(&enc, 1), Some(vec![7]));
        assert!(encode_value_bits(&[]).is_empty());
        let enc = encode_value_bits(&[0x1234]);
        assert_eq!(decode_value_bits(&enc, 1), Some(vec![0x1234]));
    }

    #[test]
    fn values_round_trip_special_floats() {
        let vals = vec![
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_1234), // NaN with payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1e-300,
            1.5,
            1.5, // repeat: single-bit encoding
        ];
        let enc = encode_values(&vals);
        let dec = decode_values(&enc, vals.len()).unwrap();
        assert_eq!(dec.len(), vals.len());
        for (a, b) in vals.iter().zip(dec.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn values_compress_slowly_varying_series() {
        let vals: Vec<f64> = (0..1000).map(|i| 300.0 + f64::from(i % 3)).collect();
        let enc = encode_values(&vals);
        assert!(
            enc.len() < vals.len() * 8 / 2,
            "xor codec should beat raw: {}",
            enc.len()
        );
        let dec = decode_values(&enc, vals.len()).unwrap();
        let same = vals
            .iter()
            .zip(dec.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let ts: Vec<u64> = (0..100u64).map(|i| i * 1000).collect();
        let enc = encode_timestamps(&ts);
        let cut = &enc[..enc.len() / 2];
        assert_eq!(decode_timestamps(cut, ts.len()), None);
        let vals: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.1).collect();
        let venc = encode_values(&vals);
        let vcut = &venc[..venc.len() / 2];
        assert_eq!(decode_values(vcut, vals.len()), None);
    }

    #[test]
    fn fnv_matches_known_vector() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
