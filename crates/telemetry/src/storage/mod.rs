//! Durable storage: WAL + compressed segment files behind a backend trait.
//!
//! The archive has historically been purely in-memory (sharded ring buffers
//! plus rollup tiers in [`crate::store::TimeSeriesStore`]); a process
//! restart erased it. This module adds a durable tier while keeping the
//! query planner, rollup tiers and health reporting working identically,
//! by fronting the archive with the [`StorageBackend`] trait:
//!
//! - [`InMemoryBackend`] — the status quo: hot store only, nothing durable.
//! - Persistent / Hybrid — a [`PersistentEngine`] (WAL + sealed segments,
//!   see [`engine`]) paired with a hot store **mirror** that serves planner
//!   and rollup queries. On open, the engine replays the durable archive
//!   into the mirror; because replay preserves per-sensor acceptance order,
//!   the recovered hot state is bit-identical whenever the durable history
//!   is complete. The two kinds differ in query routing policy
//!   ([`BackendKind`]) and in how health evictions are attributed.
//!
//! All I/O flows through the injectable [`StorageFs`] shim ([`fs`]), so
//! crash scenarios — torn writes, short reads, lying fsyncs — are simulated
//! deterministically in tests, and all timing comes from the shim's logical
//! clock rather than the wall clock.

pub mod codec;
pub mod engine;
pub mod fs;
pub mod segment;
pub mod wal;

use std::sync::Arc;

pub use engine::{EngineConfig, PersistentEngine, RecoveryReport};
pub use fs::{FsError, RealFs, SimFs, StorageFs};

use crate::health::HealthReport;
use crate::metrics::Counter;
use crate::reading::{Reading, Timestamp};
use crate::sensor::SensorId;
use crate::store::TimeSeriesStore;

/// Which storage backend an archive uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Hot in-memory store only; nothing survives a restart.
    InMemory,
    /// WAL + segments are the source of truth; trait-level range queries
    /// scan the durable files (honest cold-path latency), with the hot
    /// mirror serving only the planner/rollup interfaces.
    Persistent,
    /// Hot ring answers range queries whenever it still covers the window;
    /// the durable engine serves windows the ring has evicted.
    Hybrid,
}

impl BackendKind {
    /// Stable lowercase name (used in benchmark JSON and config).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::InMemory => "inmemory",
            BackendKind::Persistent => "persistent",
            BackendKind::Hybrid => "hybrid",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Archive configuration carried through `DataCenterConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// Backend selection.
    pub backend: BackendKind,
    /// Engine tuning (ignored by [`BackendKind::InMemory`]).
    pub engine: EngineConfig,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            backend: BackendKind::InMemory,
            engine: EngineConfig::default(),
        }
    }
}

impl StorageConfig {
    /// In-memory archive (the default).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Persistent archive with default engine tuning.
    pub fn persistent() -> Self {
        StorageConfig {
            backend: BackendKind::Persistent,
            ..Self::default()
        }
    }

    /// Hybrid archive with default engine tuning.
    pub fn hybrid() -> Self {
        StorageConfig {
            backend: BackendKind::Hybrid,
            ..Self::default()
        }
    }
}

/// Uniform interface over the three archive backends.
///
/// The hot [`TimeSeriesStore`] is always available (it is the store itself
/// for [`InMemoryBackend`], and a replayed mirror for the durable
/// backends), so existing consumers — query planner, rollup tiers, alert
/// evaluation — keep working unchanged over all three.
pub trait StorageBackend: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The hot store serving planner and rollup queries.
    fn store(&self) -> &Arc<TimeSeriesStore>;

    /// Archive a batch: insert into the hot store and, for durable
    /// backends, WAL-log exactly the readings the store accepted. Returns
    /// the number of accepted readings.
    fn insert_batch(&self, sensor: SensorId, readings: &[Reading]) -> usize;

    /// Range query in `[start, end)` routed according to the backend's
    /// policy (hot ring, durable scan, or hybrid).
    fn range(&self, sensor: SensorId, start: Timestamp, end: Timestamp) -> Vec<Reading>;

    /// Fsync any buffered WAL records.
    fn flush(&self) -> Result<(), FsError>;

    /// Run one deterministic compaction pass; returns segments folded.
    fn compact(&self) -> Result<usize, FsError>;

    /// Health report with eviction attribution appropriate to the backend
    /// (see [`DurableBackend::health_report`] for the durable semantics).
    fn health_report(&self) -> HealthReport;

    /// Readings durably stored or represented; 0 for in-memory.
    fn durable_len(&self) -> u64;

    /// Recovery report from open, for durable backends.
    fn recovery(&self) -> Option<&RecoveryReport>;
}

/// The status-quo backend: hot store only.
pub struct InMemoryBackend {
    store: Arc<TimeSeriesStore>,
}

impl std::fmt::Debug for InMemoryBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InMemoryBackend").finish_non_exhaustive()
    }
}

impl InMemoryBackend {
    /// Wrap a hot store.
    pub fn new(store: Arc<TimeSeriesStore>) -> Self {
        InMemoryBackend { store }
    }
}

impl StorageBackend for InMemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::InMemory
    }

    fn store(&self) -> &Arc<TimeSeriesStore> {
        &self.store
    }

    fn insert_batch(&self, sensor: SensorId, readings: &[Reading]) -> usize {
        self.store.insert_batch(sensor, readings)
    }

    fn range(&self, sensor: SensorId, start: Timestamp, end: Timestamp) -> Vec<Reading> {
        self.store.range(sensor, start, end)
    }

    fn flush(&self) -> Result<(), FsError> {
        Ok(())
    }

    fn compact(&self) -> Result<usize, FsError> {
        Ok(0)
    }

    fn health_report(&self) -> HealthReport {
        self.store.health_report()
    }

    fn durable_len(&self) -> u64 {
        0
    }

    fn recovery(&self) -> Option<&RecoveryReport> {
        None
    }
}

/// Persistent or hybrid backend: hot mirror + [`PersistentEngine`].
pub struct DurableBackend {
    kind: BackendKind,
    store: Arc<TimeSeriesStore>,
    engine: PersistentEngine,
    recovery: RecoveryReport,
    m_wal_errors: Counter,
}

impl std::fmt::Debug for DurableBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableBackend")
            .field("kind", &self.kind)
            .field("engine", &self.engine)
            .finish()
    }
}

impl DurableBackend {
    /// Open the engine over `fs`, replay the durable archive into `store`,
    /// and serve through it. `store` should be freshly constructed.
    pub fn open(
        kind: BackendKind,
        fs: Arc<dyn StorageFs>,
        engine_cfg: EngineConfig,
        store: Arc<TimeSeriesStore>,
    ) -> Result<Self, FsError> {
        let metrics = store.metrics().clone();
        let (engine, recovery) = PersistentEngine::open(fs, engine_cfg, &metrics)?;
        engine.replay_into(&store)?;
        Ok(DurableBackend {
            kind,
            store,
            engine,
            recovery,
            m_wal_errors: metrics.counter("storage_wal_errors_total", &[]),
        })
    }

    /// The underlying engine (tests, benches, maintenance).
    pub fn engine(&self) -> &PersistentEngine {
        &self.engine
    }

    /// Whether the hot ring still covers every reading at or after `start`
    /// for `sensor` (nothing relevant has been overwritten).
    fn ring_covers(&self, sensor: SensorId, start: Timestamp) -> bool {
        match self.store.sensor_health(sensor) {
            None => false,
            Some(h) if h.evicted == 0 => true,
            Some(_) => match self.store.oldest(sensor) {
                // Evicted readings all precede the retained suffix, so a
                // strictly-older oldest stamp proves `[start, ..)` intact.
                Some(oldest) => oldest.ts < start,
                None => false,
            },
        }
    }
}

impl StorageBackend for DurableBackend {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn store(&self) -> &Arc<TimeSeriesStore> {
        &self.store
    }

    fn insert_batch(&self, sensor: SensorId, readings: &[Reading]) -> usize {
        let mut accepted = Vec::with_capacity(readings.len());
        let n = self
            .store
            .insert_batch_accepted(sensor, readings, &mut accepted);
        // Log exactly what the ring accepted so durable history mirrors hot
        // history. A WAL failure must not take down the ingest path: the
        // hot store already has the data; surface the loss via metrics.
        if !accepted.is_empty() && self.engine.append(sensor, &accepted).is_err() {
            self.m_wal_errors.inc();
        }
        n
    }

    fn range(&self, sensor: SensorId, start: Timestamp, end: Timestamp) -> Vec<Reading> {
        if self.kind == BackendKind::Hybrid && self.ring_covers(sensor, start) {
            return self.store.range(sensor, start, end);
        }
        let mut out = Vec::new();
        if self
            .engine
            .range_into(sensor, start, end, &mut out)
            .is_err()
        {
            self.m_wal_errors.inc();
        }
        out
    }

    fn flush(&self) -> Result<(), FsError> {
        self.engine.flush()
    }

    fn compact(&self) -> Result<usize, FsError> {
        self.engine.compact()
    }

    /// Health report where `evicted` means **lost from the archive**: a
    /// reading overwritten in the hot ring but still held in a durable
    /// segment has not been evicted from the archive, and must not be
    /// counted; it is counted exactly once when segment retention expires
    /// it. This replaces the ring's per-sensor eviction counts with the
    /// engine's retention-expiry counts.
    fn health_report(&self) -> HealthReport {
        let mut report = self.store.health_report();
        for h in report.sensors.iter_mut() {
            h.evicted = self.engine.expired_for(h.sensor);
        }
        report
    }

    fn durable_len(&self) -> u64 {
        self.engine.durable_len()
    }

    fn recovery(&self) -> Option<&RecoveryReport> {
        Some(&self.recovery)
    }
}

/// Build the backend selected by `cfg` over `fs`, replaying any durable
/// archive into the provided fresh hot `store`.
pub fn open_backend(
    cfg: &StorageConfig,
    fs: Arc<dyn StorageFs>,
    store: Arc<TimeSeriesStore>,
) -> Result<Arc<dyn StorageBackend>, FsError> {
    match cfg.backend {
        BackendKind::InMemory => Ok(Arc::new(InMemoryBackend::new(store))),
        kind => Ok(Arc::new(DurableBackend::open(
            kind,
            fs,
            cfg.engine.clone(),
            store,
        )?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(ts: u64, v: f64) -> Reading {
        Reading {
            ts: Timestamp(ts),
            value: v,
        }
    }

    fn open_kind(kind: BackendKind, fs: Arc<SimFs>, capacity: usize) -> Arc<dyn StorageBackend> {
        let cfg = StorageConfig {
            backend: kind,
            engine: EngineConfig {
                segment_max_readings: 8,
                wal_sync_every: 1,
                ..EngineConfig::default()
            },
        };
        let store = Arc::new(TimeSeriesStore::with_capacity(capacity));
        open_backend(&cfg, fs as Arc<dyn StorageFs>, store).unwrap()
    }

    #[test]
    fn in_memory_backend_matches_store() {
        let store = Arc::new(TimeSeriesStore::with_capacity(16));
        let backend = InMemoryBackend::new(Arc::clone(&store));
        assert_eq!(
            backend.insert_batch(SensorId(1), &[reading(1, 1.0), reading(2, 2.0)]),
            2
        );
        assert_eq!(
            backend
                .range(SensorId(1), Timestamp::ZERO, Timestamp::MAX)
                .len(),
            2
        );
        assert_eq!(backend.durable_len(), 0);
        assert!(backend.recovery().is_none());
        assert_eq!(backend.kind(), BackendKind::InMemory);
    }

    #[test]
    fn durable_backend_survives_reopen() {
        let fs = Arc::new(SimFs::new());
        {
            let backend = open_kind(BackendKind::Persistent, Arc::clone(&fs), 64);
            for i in 0..20u64 {
                backend.insert_batch(SensorId(3), &[reading(i * 10, i as f64)]);
            }
            backend.flush().unwrap();
        }
        let backend = open_kind(BackendKind::Persistent, fs, 64);
        let rec = backend.recovery().unwrap();
        assert_eq!(rec.readings_recovered, 20);
        assert_eq!(backend.store().series_len(SensorId(3)), 20);
        assert_eq!(
            backend
                .range(SensorId(3), Timestamp::ZERO, Timestamp::MAX)
                .len(),
            20
        );
    }

    #[test]
    fn rejected_readings_never_reach_the_wal() {
        let fs = Arc::new(SimFs::new());
        {
            let backend = open_kind(BackendKind::Persistent, Arc::clone(&fs), 64);
            let batch = [
                reading(100, 1.0),
                reading(50, 2.0), // out of order: rejected
                Reading {
                    ts: Timestamp(200),
                    value: f64::NAN,
                }, // non-finite: rejected
                reading(300, 3.0),
            ];
            assert_eq!(backend.insert_batch(SensorId(1), &batch), 2);
            backend.flush().unwrap();
        }
        let backend = open_kind(BackendKind::Persistent, fs, 64);
        let got = backend.range(SensorId(1), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ts, Timestamp(100));
        assert_eq!(got[1].ts, Timestamp(300));
    }

    #[test]
    fn hybrid_serves_hot_window_from_ring_and_cold_from_segments() {
        let fs = Arc::new(SimFs::new());
        // Tiny ring (capacity 4) so early readings are evicted from the
        // ring but remain durable.
        let backend = open_kind(BackendKind::Hybrid, fs, 4);
        for i in 0..32u64 {
            backend.insert_batch(SensorId(5), &[reading(i * 10, i as f64)]);
        }
        // Ring holds the last 4 readings (ts 280..310); everything is
        // durable. Start 290 > oldest ring stamp 280, so this window is
        // served from the ring.
        let hot = backend.range(SensorId(5), Timestamp(290), Timestamp::MAX);
        assert_eq!(hot.len(), 3);
        let cold = backend.range(SensorId(5), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(cold.len(), 32);
        assert_eq!(cold[0].ts, Timestamp(0));
    }

    #[test]
    fn durable_health_does_not_double_count_ring_overwrite_as_eviction() {
        let fs = Arc::new(SimFs::new());
        let backend = open_kind(BackendKind::Hybrid, fs, 4);
        for i in 0..32u64 {
            backend.insert_batch(SensorId(7), &[reading(i * 10, i as f64)]);
        }
        // The ring overwrote 28 readings, but all 32 are durable: the
        // archive has evicted nothing.
        let ring_evicted = backend.store().sensor_health(SensorId(7)).unwrap().evicted;
        assert_eq!(ring_evicted, 28);
        let report = backend.health_report();
        assert_eq!(report.sensor(SensorId(7)).unwrap().evicted, 0);
        assert_eq!(report.total_evicted(), 0);
    }
}
