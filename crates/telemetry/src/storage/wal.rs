//! Write-ahead log format: framing, checksums and prefix replay.
//!
//! The WAL is a single append-only file. Layout:
//!
//! ```text
//! header  := magic "ODAWAL1\0" (8) | epoch u64 LE (8)
//! record  := len u32 LE | payload | fnv1a64(payload) u64 LE
//! payload := sensor u32 LE | count u32 LE | (ts u64 LE, value_bits u64 LE) * count
//! ```
//!
//! The **epoch** links the WAL to the segment sequence: a WAL with epoch `e`
//! holds exactly the writes that belong to the *next* segment `e`. On seal,
//! segment `e` is written atomically and the WAL is atomically reset to a
//! bare header with epoch `e + 1`. Recovery uses the epoch to decide whether
//! the WAL tail is *newer* than the last durable segment (replay it), *stale*
//! (the seal completed but the WAL reset raced the crash — discard, so no
//! reading is ever applied twice), or evidence of a *lost segment* (epoch
//! more than one ahead — replay and flag a sequence gap).
//!
//! [`replay`] parses the longest valid prefix: any record whose frame is
//! short or whose checksum mismatches terminates the scan, and the byte
//! offset of the valid prefix is reported so the engine can truncate the
//! torn tail rather than propagate it.

use super::codec::fnv1a64;
use crate::reading::{Reading, Timestamp};
use crate::sensor::SensorId;

/// File name of the write-ahead log inside a storage directory.
pub const WAL_FILE: &str = "wal.log";

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"ODAWAL1\0";

/// Byte length of the WAL header (magic + epoch).
pub const WAL_HEADER_LEN: usize = 16;

/// Encode a bare WAL header for `epoch`.
pub fn encode_header(epoch: u64) -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    let (magic, rest) = h.split_at_mut(8);
    magic.copy_from_slice(&WAL_MAGIC);
    rest.copy_from_slice(&epoch.to_le_bytes());
    h
}

/// Encode one checksummed record carrying a batch of readings for `sensor`.
pub fn encode_record(sensor: SensorId, readings: &[Reading]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + readings.len() * 16);
    payload.extend_from_slice(&sensor.0.to_le_bytes());
    payload.extend_from_slice(&(readings.len() as u32).to_le_bytes());
    for r in readings {
        payload.extend_from_slice(&r.ts.0.to_le_bytes());
        payload.extend_from_slice(&r.value.to_bits().to_le_bytes());
    }
    let mut rec = Vec::with_capacity(payload.len() + 12);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    rec
}

/// Result of scanning a WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Epoch from the header, or `None` if even the header is invalid.
    pub epoch: Option<u64>,
    /// Decoded records from the valid prefix, in append order.
    pub records: Vec<(SensorId, Vec<Reading>)>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: usize,
    /// Whether trailing bytes after the valid prefix were found (torn tail).
    pub torn: bool,
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    bytes.get(at..end)?.try_into().ok().map(u32::from_le_bytes)
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    bytes.get(at..end)?.try_into().ok().map(u64::from_le_bytes)
}

fn parse_payload(payload: &[u8]) -> Option<(SensorId, Vec<Reading>)> {
    let sensor = read_u32(payload, 0)?;
    let count = read_u32(payload, 4)? as usize;
    let body = payload.get(8..)?;
    if body.len() != count.checked_mul(16)? {
        return None;
    }
    let mut readings = Vec::with_capacity(count);
    for chunk in body.chunks_exact(16) {
        let ts = read_u64(chunk, 0)?;
        let bits = read_u64(chunk, 8)?;
        readings.push(Reading {
            ts: Timestamp(ts),
            value: f64::from_bits(bits),
        });
    }
    Some((SensorId(sensor), readings))
}

/// Scan `bytes` (a whole WAL file) and return the longest valid prefix.
pub fn replay(bytes: &[u8]) -> WalReplay {
    let epoch = bytes.get(..WAL_HEADER_LEN).and_then(|h| {
        let (magic, rest) = h.split_at(8);
        if magic == WAL_MAGIC {
            rest.try_into().ok().map(u64::from_le_bytes)
        } else {
            None
        }
    });
    let Some(epoch_v) = epoch else {
        return WalReplay {
            epoch: None,
            records: Vec::new(),
            valid_len: 0,
            torn: !bytes.is_empty(),
        };
    };
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut torn = false;
    loop {
        if pos == bytes.len() {
            break;
        }
        let frame = (|| {
            let len = read_u32(bytes, pos)? as usize;
            let payload_at = pos.checked_add(4)?;
            let payload_end = payload_at.checked_add(len)?;
            let payload = bytes.get(payload_at..payload_end)?;
            let sum = read_u64(bytes, payload_end)?;
            if sum != fnv1a64(payload) {
                return None;
            }
            let rec = parse_payload(payload)?;
            Some((rec, payload_end.checked_add(8)?))
        })();
        match frame {
            Some((rec, next)) => {
                records.push(rec);
                pos = next;
            }
            None => {
                torn = true;
                break;
            }
        }
    }
    WalReplay {
        epoch: Some(epoch_v),
        records,
        valid_len: pos,
        torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(sensor: u32, n: u64) -> (SensorId, Vec<Reading>) {
        let readings: Vec<Reading> = (0..n)
            .map(|i| Reading {
                ts: Timestamp(1000 + i * 10),
                value: 0.5 * i as f64,
            })
            .collect();
        (SensorId(sensor), readings)
    }

    fn wal_with(epoch: u64, batches: &[(SensorId, Vec<Reading>)]) -> Vec<u8> {
        let mut bytes = encode_header(epoch).to_vec();
        for (s, rs) in batches {
            bytes.extend_from_slice(&encode_record(*s, rs));
        }
        bytes
    }

    #[test]
    fn clean_wal_replays_fully() {
        let batches = vec![batch(1, 3), batch(2, 1), batch(1, 5)];
        let bytes = wal_with(7, &batches);
        let rep = replay(&bytes);
        assert_eq!(rep.epoch, Some(7));
        assert!(!rep.torn);
        assert_eq!(rep.valid_len, bytes.len());
        assert_eq!(rep.records.len(), 3);
        for ((s, rs), (es, ers)) in rep.records.iter().zip(batches.iter()) {
            assert_eq!(s, es);
            assert_eq!(rs.len(), ers.len());
            for (a, b) in rs.iter().zip(ers.iter()) {
                assert_eq!(a.ts, b.ts);
                assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
        }
    }

    #[test]
    fn nan_and_negative_zero_survive() {
        let readings = vec![
            Reading {
                ts: Timestamp(1),
                value: f64::from_bits(0x7ff8_0000_0000_beef),
            },
            Reading {
                ts: Timestamp(2),
                value: -0.0,
            },
            Reading {
                ts: Timestamp(3),
                value: f64::NEG_INFINITY,
            },
        ];
        let bytes = wal_with(1, &[(SensorId(9), readings.clone())]);
        let rep = replay(&bytes);
        let (_, got) = &rep.records[0];
        for (a, b) in got.iter().zip(readings.iter()) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn torn_tail_is_reported_with_valid_prefix() {
        let bytes = wal_with(3, &[batch(1, 4), batch(2, 2)]);
        let first_len = wal_with(3, &[batch(1, 4)]).len();
        for cut in first_len + 1..bytes.len() {
            let rep = replay(&bytes[..cut]);
            assert!(rep.torn, "cut {cut} should be torn");
            assert_eq!(rep.valid_len, first_len, "cut {cut}");
            assert_eq!(rep.records.len(), 1, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_terminates_scan() {
        let mut bytes = wal_with(3, &[batch(1, 4), batch(2, 2)]);
        let first_len = wal_with(3, &[batch(1, 4)]).len();
        bytes[first_len + 8] ^= 0xff; // flip a payload byte of the second record
        let rep = replay(&bytes);
        assert!(rep.torn);
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.valid_len, first_len);
    }

    #[test]
    fn bad_or_missing_header_yields_no_epoch() {
        assert_eq!(replay(&[]).epoch, None);
        assert!(!replay(&[]).torn);
        let short = replay(&WAL_MAGIC[..6]);
        assert_eq!(short.epoch, None);
        assert!(short.torn);
        let mut bad = encode_header(1).to_vec();
        bad[0] = b'X';
        let rep = replay(&bad);
        assert_eq!(rep.epoch, None);
        assert!(rep.torn);
    }

    #[test]
    fn header_only_wal_is_clean_and_empty() {
        let rep = replay(&encode_header(42));
        assert_eq!(rep.epoch, Some(42));
        assert!(rep.records.is_empty());
        assert!(!rep.torn);
        assert_eq!(rep.valid_len, WAL_HEADER_LEN);
    }

    #[test]
    fn length_mismatch_inside_payload_is_rejected() {
        // Hand-build a record whose count claims more readings than present,
        // with a valid checksum — parse_payload must reject it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&5u32.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes()); // claims 3 readings
        payload.extend_from_slice(&[0u8; 16]); // provides 1
        let mut bytes = encode_header(1).to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        let rep = replay(&bytes);
        assert!(rep.torn);
        assert!(rep.records.is_empty());
        assert_eq!(rep.valid_len, WAL_HEADER_LEN);
    }
}
