//! The persistent engine: WAL-fronted segment store with recovery,
//! retention and compaction.
//!
//! Write path: accepted readings are framed into checksummed WAL records
//! ([`super::wal`]), appended, and fsync'd every
//! [`EngineConfig::wal_sync_every`] records; the same readings accumulate in
//! an in-memory memtable. When the memtable reaches
//! [`EngineConfig::segment_max_readings`], it is **sealed**: encoded as an
//! immutable raw segment ([`super::segment`]), written atomically as
//! `seg-<seq>.seg`, and the WAL is atomically reset to a bare header whose
//! epoch is `seq + 1`.
//!
//! Recovery ([`PersistentEngine::open`]) lists segment files, drops any that
//! fail verification, then reconciles the WAL against the highest durable
//! segment sequence using the epoch (see [`super::wal`] for the three
//! cases: replay, stale-discard, sequence gap). A torn WAL tail is truncated
//! at the last valid record boundary.
//!
//! Everything here is deterministic: identical operation sequences over
//! identical [`super::fs::StorageFs`] contents produce byte-identical files,
//! and all timing comes from the injected filesystem's logical clock.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use super::fs::{FsError, StorageFs};
use super::segment::{self, Segment, SegmentKind};
use super::wal;
use crate::metrics::{Counter, MetricsRegistry};
use crate::reading::{Reading, Timestamp};
use crate::sensor::SensorId;
use crate::store::{RollupBucket, TimeSeriesStore};

/// Tuning knobs for the persistent engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Memtable readings that trigger sealing a segment.
    pub segment_max_readings: usize,
    /// WAL records between fsyncs (1 = sync every append).
    pub wal_sync_every: usize,
    /// Maximum segments retained; `None` keeps everything. When exceeded,
    /// the oldest segments are expired (deleted) and their per-sensor
    /// reading counts are added to the expiry counters surfaced through
    /// health reporting.
    pub retention_segments: Option<usize>,
    /// Number of newest segments kept raw by [`PersistentEngine::compact`];
    /// everything older is folded into rollup-bucket form.
    pub compact_keep_raw: usize,
    /// Bucket width used when compacting raw segments, milliseconds.
    pub compact_bucket_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            segment_max_readings: 4096,
            wal_sync_every: 8,
            retention_segments: None,
            compact_keep_raw: 2,
            compact_bucket_ms: 60_000,
        }
    }
}

/// What [`PersistentEngine::open`] found and did while recovering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Verified segments loaded.
    pub segments_loaded: usize,
    /// Segment files that failed verification and were ignored.
    pub segments_dropped: usize,
    /// WAL records replayed into the memtable.
    pub wal_records_replayed: usize,
    /// Whether a torn WAL tail was truncated.
    pub wal_truncated: bool,
    /// Whether a stale WAL (epoch at or behind the last durable segment)
    /// was discarded, preventing double-replay after a crash between seal
    /// and WAL reset.
    pub wal_discarded_stale: bool,
    /// Whether the WAL epoch implies at least one segment was lost (e.g. a
    /// lying fsync swallowed a seal). The WAL is still replayed.
    pub sequence_gap: bool,
    /// Total readings recovered (segment totals plus replayed WAL records).
    pub readings_recovered: u64,
    /// Logical-clock nanoseconds consumed by recovery I/O.
    pub recovery_clock_ns: u64,
}

#[derive(Debug, Clone)]
struct SegmentMeta {
    seq: u64,
    file: String,
    kind: SegmentKind,
    min_ts: Timestamp,
    max_ts: Timestamp,
    total_readings: u64,
    sensor_counts: Vec<(SensorId, u64)>,
}

impl SegmentMeta {
    fn of(seg: &Segment, file: String) -> Self {
        SegmentMeta {
            seq: seg.seq,
            file,
            kind: seg.kind(),
            min_ts: seg.min_ts(),
            max_ts: seg.max_ts(),
            total_readings: seg.total_readings(),
            sensor_counts: seg.sensor_counts(),
        }
    }
}

#[derive(Debug, Default)]
struct EngineState {
    memtable: BTreeMap<SensorId, Vec<Reading>>,
    memtable_len: usize,
    segments: Vec<SegmentMeta>,
    wal_epoch: u64,
    wal_unsynced: usize,
    expired: BTreeMap<SensorId, u64>,
}

/// Append-only segment store with a write-ahead log.
pub struct PersistentEngine {
    fs: Arc<dyn StorageFs>,
    cfg: EngineConfig,
    state: Mutex<EngineState>,
    m_wal_appends: Counter,
    m_wal_syncs: Counter,
    m_seals: Counter,
    m_expired: Counter,
    m_compactions: Counter,
}

impl std::fmt::Debug for PersistentEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("PersistentEngine")
            .field("segments", &st.segments.len())
            .field("memtable_len", &st.memtable_len)
            .field("wal_epoch", &st.wal_epoch)
            .finish()
    }
}

impl PersistentEngine {
    /// Open (or create) a store over `fs`, running recovery.
    pub fn open(
        fs: Arc<dyn StorageFs>,
        cfg: EngineConfig,
        metrics: &MetricsRegistry,
    ) -> Result<(Self, RecoveryReport), FsError> {
        let clock_start = fs.clock_ns();
        let mut report = RecoveryReport::default();
        let mut segments: Vec<SegmentMeta> = Vec::new();
        for name in fs.list()? {
            let Some(seq) = segment::parse_file_name(&name) else {
                continue;
            };
            let decoded = fs
                .read(&name)
                .ok()
                .and_then(|bytes| segment::decode(&bytes).ok());
            match decoded {
                Some(seg) if seg.seq == seq => segments.push(SegmentMeta::of(&seg, name)),
                _ => report.segments_dropped += 1,
            }
        }
        segments.sort_by_key(|m| m.seq);
        report.segments_loaded = segments.len();
        let max_seq = segments.last().map(|m| m.seq).unwrap_or(0);

        let mut memtable: BTreeMap<SensorId, Vec<Reading>> = BTreeMap::new();
        let mut memtable_len = 0usize;
        let mut wal_epoch = max_seq + 1;
        match fs.read(wal::WAL_FILE) {
            Err(FsError::NotFound(_)) => {
                fs.write_atomic(wal::WAL_FILE, &wal::encode_header(wal_epoch))?;
            }
            Err(e) => return Err(e),
            Ok(bytes) => {
                let rep = wal::replay(&bytes);
                match rep.epoch {
                    None => {
                        // Header unreadable: nothing salvageable; start a
                        // fresh log for the next segment.
                        report.wal_truncated = rep.torn;
                        fs.write_atomic(wal::WAL_FILE, &wal::encode_header(wal_epoch))?;
                    }
                    Some(epoch) if epoch <= max_seq => {
                        // Seal completed but the reset raced the crash: the
                        // records are already inside segment `epoch`.
                        // Discarding them is what prevents double-replay.
                        report.wal_discarded_stale = true;
                        fs.write_atomic(wal::WAL_FILE, &wal::encode_header(wal_epoch))?;
                    }
                    Some(epoch) => {
                        if epoch > max_seq + 1 {
                            report.sequence_gap = true;
                        }
                        wal_epoch = epoch;
                        for (sensor, readings) in rep.records {
                            memtable_len += readings.len();
                            memtable.entry(sensor).or_default().extend(readings);
                            report.wal_records_replayed += 1;
                        }
                        if rep.torn {
                            report.wal_truncated = true;
                            fs.truncate(wal::WAL_FILE, rep.valid_len as u64)?;
                        }
                    }
                }
            }
        }
        report.readings_recovered =
            segments.iter().map(|m| m.total_readings).sum::<u64>() + memtable_len as u64;
        report.recovery_clock_ns = fs.clock_ns().saturating_sub(clock_start);

        let state = EngineState {
            memtable,
            memtable_len,
            segments,
            wal_epoch,
            wal_unsynced: 0,
            expired: BTreeMap::new(),
        };
        let engine = PersistentEngine {
            fs,
            cfg,
            state: Mutex::new(state),
            m_wal_appends: metrics.counter("storage_wal_appends_total", &[]),
            m_wal_syncs: metrics.counter("storage_wal_syncs_total", &[]),
            m_seals: metrics.counter("storage_segments_sealed_total", &[]),
            m_expired: metrics.counter("storage_readings_expired_total", &[]),
            m_compactions: metrics.counter("storage_segments_compacted_total", &[]),
        };
        Ok((engine, report))
    }

    /// Durably log and buffer a batch of **accepted** readings for `sensor`.
    ///
    /// The caller (the storage backend) must pass only readings the hot
    /// store accepted, so durable history and ring history stay identical.
    pub fn append(&self, sensor: SensorId, readings: &[Reading]) -> Result<(), FsError> {
        if readings.is_empty() {
            return Ok(());
        }
        let mut st = self.state.lock();
        let rec = wal::encode_record(sensor, readings);
        self.fs.append(wal::WAL_FILE, &rec)?;
        self.m_wal_appends.inc();
        st.wal_unsynced += 1;
        if st.wal_unsynced >= self.cfg.wal_sync_every.max(1) {
            self.fs.sync(wal::WAL_FILE)?;
            self.m_wal_syncs.inc();
            st.wal_unsynced = 0;
        }
        st.memtable
            .entry(sensor)
            .or_default()
            .extend_from_slice(readings);
        st.memtable_len += readings.len();
        if st.memtable_len >= self.cfg.segment_max_readings.max(1) {
            self.seal_locked(&mut st)?;
        }
        Ok(())
    }

    /// Fsync any WAL records still buffered below the sync interval.
    pub fn flush(&self) -> Result<(), FsError> {
        let mut st = self.state.lock();
        if st.wal_unsynced > 0 {
            self.fs.sync(wal::WAL_FILE)?;
            self.m_wal_syncs.inc();
            st.wal_unsynced = 0;
        }
        Ok(())
    }

    /// Seal the current memtable into a segment immediately (no-op when the
    /// memtable is empty). Exposed for tests and shutdown paths.
    pub fn seal_now(&self) -> Result<(), FsError> {
        let mut st = self.state.lock();
        self.seal_locked(&mut st)
    }

    fn seal_locked(&self, st: &mut EngineState) -> Result<(), FsError> {
        if st.memtable_len == 0 {
            return Ok(());
        }
        let seq = st.wal_epoch;
        let sensors: Vec<(SensorId, Vec<Reading>)> =
            st.memtable.iter().map(|(s, rs)| (*s, rs.clone())).collect();
        let seg = Segment::raw(seq, sensors);
        let bytes = segment::encode(&seg);
        let name = segment::file_name(seq);
        // Order matters: the segment must be durable before the WAL reset,
        // or a crash in between would lose the records entirely.
        self.fs.write_atomic(&name, &bytes)?;
        st.segments.push(SegmentMeta::of(&seg, name));
        st.memtable.clear();
        st.memtable_len = 0;
        st.wal_epoch = seq + 1;
        self.fs
            .write_atomic(wal::WAL_FILE, &wal::encode_header(st.wal_epoch))?;
        st.wal_unsynced = 0;
        self.m_seals.inc();
        self.retain_locked(st)
    }

    fn retain_locked(&self, st: &mut EngineState) -> Result<(), FsError> {
        let Some(keep) = self.cfg.retention_segments else {
            return Ok(());
        };
        while st.segments.len() > keep.max(1) {
            let meta = st.segments.remove(0);
            for (s, n) in &meta.sensor_counts {
                *st.expired.entry(*s).or_insert(0) += n;
            }
            self.m_expired.add(meta.total_readings);
            match self.fs.remove(&meta.file) {
                Ok(()) | Err(FsError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Deterministically fold cold raw segments (all but the newest
    /// [`EngineConfig::compact_keep_raw`]) into rollup-bucket form, rewriting
    /// each file atomically in place under the same sequence number. Returns
    /// the number of segments compacted.
    pub fn compact(&self) -> Result<usize, FsError> {
        let mut st = self.state.lock();
        let n = st.segments.len();
        let cold = n.saturating_sub(self.cfg.compact_keep_raw);
        let mut done = 0usize;
        for meta in st.segments.iter_mut().take(cold) {
            if meta.kind == SegmentKind::Compacted {
                continue;
            }
            let bytes = self.fs.read(&meta.file)?;
            let Ok(seg) = segment::decode(&bytes) else {
                continue;
            };
            let folded = segment::compact(&seg, self.cfg.compact_bucket_ms.max(1));
            self.fs
                .write_atomic(&meta.file, &segment::encode(&folded))?;
            *meta = SegmentMeta::of(&folded, meta.file.clone());
            done += 1;
            self.m_compactions.inc();
        }
        Ok(done)
    }

    /// Collect raw readings for `sensor` in `[start, end)` from raw segments
    /// and the memtable. Readings that were folded into compacted segments
    /// are no longer individually available (use [`buckets`](Self::buckets)).
    pub fn range_into(
        &self,
        sensor: SensorId,
        start: Timestamp,
        end: Timestamp,
        out: &mut Vec<Reading>,
    ) -> Result<(), FsError> {
        let st = self.state.lock();
        for meta in &st.segments {
            if meta.kind != SegmentKind::Raw || meta.max_ts < start || meta.min_ts >= end {
                continue;
            }
            let bytes = self.fs.read(&meta.file)?;
            if let Ok(seg) = segment::decode(&bytes) {
                seg.readings_for(sensor, start, end, out);
            }
        }
        if let Some(mem) = st.memtable.get(&sensor) {
            for r in mem {
                if r.ts >= start && r.ts < end {
                    out.push(*r);
                }
            }
        }
        Ok(())
    }

    /// Collect rollup buckets for `sensor` whose start lies in `[start, end)`
    /// from compacted segments.
    pub fn buckets(
        &self,
        sensor: SensorId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<RollupBucket>, FsError> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for meta in &st.segments {
            if meta.kind != SegmentKind::Compacted || meta.max_ts < start || meta.min_ts >= end {
                continue;
            }
            let bytes = self.fs.read(&meta.file)?;
            if let Ok(seg) = segment::decode(&bytes) {
                seg.buckets_for(sensor, start, end, &mut out);
            }
        }
        Ok(out)
    }

    /// Replay the durable archive (raw segments in sequence order, then the
    /// memtable) into a hot store. Per-sensor insertion order equals original
    /// acceptance order, so ring and rollup state come back bit-identical
    /// when the durable history is complete. Returns readings inserted.
    pub fn replay_into(&self, store: &TimeSeriesStore) -> Result<u64, FsError> {
        let st = self.state.lock();
        let mut n = 0u64;
        for meta in &st.segments {
            if meta.kind != SegmentKind::Raw {
                continue;
            }
            let bytes = self.fs.read(&meta.file)?;
            if let Ok(Segment {
                blocks: segment::SegmentBlocks::Raw(sensors),
                ..
            }) = segment::decode(&bytes)
            {
                for (sensor, readings) in &sensors {
                    n += store.insert_batch(*sensor, readings) as u64;
                }
            }
        }
        for (sensor, readings) in &st.memtable {
            n += store.insert_batch(*sensor, readings) as u64;
        }
        Ok(n)
    }

    /// Total readings durably stored or represented (segments + memtable).
    pub fn durable_len(&self) -> u64 {
        let st = self.state.lock();
        st.segments.iter().map(|m| m.total_readings).sum::<u64>() + st.memtable_len as u64
    }

    /// Readings expired from `sensor` by segment retention.
    pub fn expired_for(&self, sensor: SensorId) -> u64 {
        self.state.lock().expired.get(&sensor).copied().unwrap_or(0)
    }

    /// Total readings expired by segment retention.
    pub fn expired_total(&self) -> u64 {
        self.state.lock().expired.values().sum()
    }

    /// Number of durable segments, `(raw, compacted)`.
    pub fn segment_counts(&self) -> (usize, usize) {
        let st = self.state.lock();
        let raw = st
            .segments
            .iter()
            .filter(|m| m.kind == SegmentKind::Raw)
            .count();
        (raw, st.segments.len() - raw)
    }

    /// Current WAL epoch (sequence the next seal will use).
    pub fn wal_epoch(&self) -> u64 {
        self.state.lock().wal_epoch
    }

    /// Readings buffered in the memtable (logged but not yet sealed).
    pub fn memtable_len(&self) -> usize {
        self.state.lock().memtable_len
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The filesystem this engine operates over.
    pub fn fs(&self) -> &Arc<dyn StorageFs> {
        &self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::fs::SimFs;

    fn reading(ts: u64, v: f64) -> Reading {
        Reading {
            ts: Timestamp(ts),
            value: v,
        }
    }

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            segment_max_readings: 10,
            wal_sync_every: 2,
            ..EngineConfig::default()
        }
    }

    fn open(fs: &Arc<SimFs>, cfg: EngineConfig) -> (PersistentEngine, RecoveryReport) {
        let fs: Arc<dyn StorageFs> = Arc::clone(fs) as Arc<dyn StorageFs>;
        PersistentEngine::open(fs, cfg, &MetricsRegistry::disabled()).unwrap()
    }

    #[test]
    fn fresh_open_creates_wal_with_epoch_one() {
        let fs = Arc::new(SimFs::new());
        let (engine, report) = open(&fs, small_cfg());
        assert_eq!(
            report,
            RecoveryReport {
                recovery_clock_ns: report.recovery_clock_ns,
                ..Default::default()
            }
        );
        assert_eq!(engine.wal_epoch(), 1);
        assert!(fs.exists(wal::WAL_FILE));
    }

    #[test]
    fn seal_rolls_epoch_and_writes_segment() {
        let fs = Arc::new(SimFs::new());
        let (engine, _) = open(&fs, small_cfg());
        for i in 0..10u64 {
            engine
                .append(SensorId(1), &[reading(i * 100, i as f64)])
                .unwrap();
        }
        assert_eq!(engine.segment_counts(), (1, 0));
        assert_eq!(engine.memtable_len(), 0);
        assert_eq!(engine.wal_epoch(), 2);
        assert!(fs.exists(&segment::file_name(1)));
        let mut out = Vec::new();
        engine
            .range_into(SensorId(1), Timestamp::ZERO, Timestamp::MAX, &mut out)
            .unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn unsynced_wal_tail_is_lost_on_crash_but_synced_prefix_survives() {
        let fs = Arc::new(SimFs::new());
        let (engine, _) = open(&fs, small_cfg());
        // wal_sync_every = 2: records 1-4 synced, record 5 pending.
        for i in 0..5u64 {
            engine
                .append(SensorId(1), &[reading(i * 100, i as f64)])
                .unwrap();
        }
        fs.crash();
        let (engine2, report) = open(&fs, small_cfg());
        assert_eq!(report.wal_records_replayed, 4);
        assert!(!report.wal_discarded_stale);
        assert_eq!(engine2.memtable_len(), 4);
    }

    #[test]
    fn stale_wal_after_seal_is_discarded_not_double_replayed() {
        let fs = Arc::new(SimFs::new());
        let (engine, _) = open(&fs, small_cfg());
        for i in 0..10u64 {
            engine
                .append(SensorId(1), &[reading(i * 100, i as f64)])
                .unwrap();
        }
        // Simulate the crash window between segment write and WAL reset by
        // rewriting the WAL with the pre-seal epoch and stale records.
        let mut stale = wal::encode_header(1).to_vec();
        stale.extend_from_slice(&wal::encode_record(SensorId(1), &[reading(0, 0.0)]));
        fs.write_atomic(wal::WAL_FILE, &stale).unwrap();
        drop(engine);
        let (engine2, report) = open(&fs, small_cfg());
        assert!(report.wal_discarded_stale);
        assert_eq!(report.wal_records_replayed, 0);
        assert_eq!(engine2.memtable_len(), 0);
        assert_eq!(report.readings_recovered, 10);
        assert_eq!(engine2.wal_epoch(), 2);
    }

    #[test]
    fn sequence_gap_is_flagged_when_segment_lost() {
        let fs = Arc::new(SimFs::new());
        let (engine, _) = open(&fs, small_cfg());
        for i in 0..10u64 {
            engine
                .append(SensorId(1), &[reading(i * 100, i as f64)])
                .unwrap();
        }
        engine.append(SensorId(1), &[reading(2000, 1.0)]).unwrap();
        engine.flush().unwrap();
        drop(engine);
        // Lose segment 1 entirely: WAL epoch 2 now exceeds max_seq + 1.
        fs.remove(&segment::file_name(1)).unwrap();
        let (engine2, report) = open(&fs, small_cfg());
        assert!(report.sequence_gap);
        assert_eq!(report.wal_records_replayed, 1);
        assert_eq!(engine2.wal_epoch(), 2);
    }

    #[test]
    fn retention_expires_oldest_and_counts_per_sensor() {
        let fs = Arc::new(SimFs::new());
        let cfg = EngineConfig {
            retention_segments: Some(2),
            ..small_cfg()
        };
        let (engine, _) = open(&fs, cfg);
        for i in 0..40u64 {
            engine
                .append(SensorId(i as u32 % 2), &[reading(i * 100, i as f64)])
                .unwrap();
        }
        assert_eq!(engine.segment_counts().0, 2);
        assert_eq!(engine.expired_total(), 20);
        assert_eq!(engine.expired_for(SensorId(0)), 10);
        assert_eq!(engine.expired_for(SensorId(1)), 10);
        assert!(!fs.exists(&segment::file_name(1)));
    }

    #[test]
    fn compaction_folds_cold_segments_and_preserves_counts() {
        let fs = Arc::new(SimFs::new());
        let (engine, _) = open(&fs, small_cfg());
        for i in 0..40u64 {
            engine
                .append(SensorId(1), &[reading(i * 100, i as f64)])
                .unwrap();
        }
        assert_eq!(engine.segment_counts(), (4, 0));
        let before = engine.durable_len();
        let done = engine.compact().unwrap();
        assert_eq!(done, 2); // keep_raw = 2
        assert_eq!(engine.segment_counts(), (2, 2));
        assert_eq!(engine.durable_len(), before);
        // Compacted data served as buckets, not raw readings.
        let buckets = engine
            .buckets(SensorId(1), Timestamp::ZERO, Timestamp::MAX)
            .unwrap();
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 20);
        // Idempotent.
        assert_eq!(engine.compact().unwrap(), 0);
    }

    #[test]
    fn replay_into_rebuilds_store_identically() {
        let fs = Arc::new(SimFs::new());
        let (engine, _) = open(&fs, small_cfg());
        let reference = TimeSeriesStore::with_capacity(1024);
        for i in 0..25u64 {
            let r = reading(i * 100, (i % 5) as f64);
            engine.append(SensorId(2), &[r]).unwrap();
            reference.insert_batch(SensorId(2), &[r]);
        }
        let recovered = TimeSeriesStore::with_capacity(1024);
        assert_eq!(engine.replay_into(&recovered).unwrap(), 25);
        let a = reference.range(SensorId(2), Timestamp::ZERO, Timestamp::MAX);
        let b = recovered.range(SensorId(2), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ts, y.ts);
            assert_eq!(x.value.to_bits(), y.value.to_bits());
        }
    }
}
