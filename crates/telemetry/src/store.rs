//! The in-memory time-series archive.
//!
//! Production ODA stacks archive near-real-time data in a write-optimised
//! store and serve analytical reads from it. This module provides an
//! in-memory equivalent with the same access pattern:
//!
//! * **writes** are appends of monotonically-timestamped readings to one
//!   sensor's series;
//! * **reads** are contiguous time-range scans of one or more series.
//!
//! Each sensor owns a fixed-capacity **ring buffer**: once full, the oldest
//! readings are overwritten. This matches the "retain the recent operational
//! window, downsample/export for long-term archival" policy of real
//! deployments and gives O(1) ingest with zero steady-state allocation.
//!
//! The store is sharded: sensor ids map round-robin onto `N` shards, each
//! behind its own `parking_lot::RwLock`, so concurrent collectors writing
//! disjoint sensors rarely contend. The shard count is fixed at construction.
//!
//! ## Multi-resolution rollup tiers
//!
//! Alongside its raw ring buffer, each sensor maintains a small set of
//! fixed-width **rollup tiers** (by default 10 s / 1 min / 10 min buckets,
//! see [`RollupConfig`]). Every accepted reading folds into the open bucket
//! of every tier in O(1); each tier keeps a bounded ring of buckets, so
//! memory stays fixed. A [`RollupBucket`] stores `count/sum/min/max` plus
//! the first/last values and timestamps of its bucket — enough to answer
//! the decomposable aggregations (`Mean`/`Min`/`Max`/`Sum`/`Count`/
//! `First`/`Last`) *exactly* without touching raw readings. The query
//! planner ([`crate::query`]) consults the tiers through
//! [`TimeSeriesStore::tier_scan`], which returns summary buckets for the
//! aligned core of a range and raw readings for the unaligned edges — all
//! under one shard lock, with eviction horizons respected so a tier never
//! answers about data the raw buffer no longer retains (tier answers are
//! therefore always identical to a raw rescan). Readings rejected at the
//! door (non-finite, out-of-order) never reach any tier.

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::reading::{Reading, Timestamp};
use crate::sensor::SensorId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Fixed-capacity ring buffer of readings with monotonic timestamps.
///
/// Kept public so analytics code can be tested directly against a buffer
/// without constructing a full store.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<Reading>,
    head: usize,
    len: usize,
    capacity: usize,
    /// Count of readings ever evicted by wrap-around.
    evicted: u64,
    /// Count of readings rejected for an out-of-order timestamp.
    rejected_out_of_order: u64,
    /// Count of readings rejected for a non-finite value.
    rejected_non_finite: u64,
    /// Largest inter-reading gap ever accepted, milliseconds.
    max_gap_ms: u64,
}

impl RingBuffer {
    /// Creates a buffer holding at most `capacity` readings.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            capacity,
            evicted: 0,
            rejected_out_of_order: 0,
            rejected_non_finite: 0,
            max_gap_ms: 0,
        }
    }

    /// Number of readings currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no readings are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Count of readings evicted by wrap-around since creation.
    #[inline]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Count of readings rejected for an out-of-order timestamp.
    #[inline]
    pub fn rejected_out_of_order(&self) -> u64 {
        self.rejected_out_of_order
    }

    /// Count of readings rejected for a non-finite value.
    #[inline]
    pub fn rejected_non_finite(&self) -> u64 {
        self.rejected_non_finite
    }

    /// Largest gap between consecutive accepted readings, milliseconds
    /// (`0` until two readings have been accepted).
    #[inline]
    pub fn max_gap_ms(&self) -> u64 {
        self.max_gap_ms
    }

    /// Appends a reading.
    ///
    /// Returns `false` (and stores nothing) if the reading is non-finite or
    /// older than the newest stored reading — out-of-order data is dropped
    /// rather than silently corrupting the series, mirroring the behaviour
    /// of production collectors.
    ///
    /// **Duplicate-timestamp policy: accept-and-order-stable.** A reading
    /// whose timestamp *equals* the newest stored one is appended, never
    /// merged, deduplicated or replaced — runs of same-ts readings survive
    /// in exact arrival order. Real collectors emit such runs routinely
    /// (two sensors flushed in one batch, a re-sent sample after a
    /// collector hiccup, sub-resolution bursts), and keeping every one is
    /// what makes the pipeline deterministic end to end: the buffer stays
    /// sorted (non-decreasing), so `range_into`'s `partition_point` bounds
    /// pick up a whole same-ts run on the start edge and exclude it on the
    /// end edge, and the rollup tiers fold the duplicates into their
    /// buckets in that same stable order — a tier-served aggregate is
    /// bit-identical to a raw scan even when every reading in the window
    /// shares one timestamp.
    pub fn push(&mut self, r: Reading) -> bool {
        if !r.is_finite() {
            self.rejected_non_finite += 1;
            return false;
        }
        if let Some(last) = self.newest() {
            if r.ts < last.ts {
                self.rejected_out_of_order += 1;
                return false;
            }
            self.max_gap_ms = self.max_gap_ms.max(r.ts.millis_since(last.ts));
        }
        if self.len < self.capacity {
            // Still filling the initial allocation.
            let pos = (self.head + self.len) % self.capacity;
            if pos == self.buf.len() {
                self.buf.push(r);
            } else {
                self.buf[pos] = r;
            }
            self.len += 1;
        } else {
            // Overwrite the oldest slot.
            self.buf[self.head] = r;
            self.head = (self.head + 1) % self.capacity;
            self.evicted += 1;
        }
        true
    }

    /// The oldest stored reading.
    #[inline]
    pub fn oldest(&self) -> Option<Reading> {
        (self.len > 0).then(|| self.buf[self.head])
    }

    /// The newest stored reading.
    #[inline]
    pub fn newest(&self) -> Option<Reading> {
        (self.len > 0).then(|| self.buf[(self.head + self.len - 1) % self.capacity])
    }

    /// Reading at logical position `i` (0 = oldest).
    #[inline]
    fn get(&self, i: usize) -> Reading {
        debug_assert!(i < self.len);
        self.buf[(self.head + i) % self.capacity]
    }

    /// Copies all readings with `start <= ts < end` into `out`, in order.
    ///
    /// Uses binary search over the logically-ordered buffer, so cost is
    /// O(log n + k) for k results.
    pub fn range_into(&self, start: Timestamp, end: Timestamp, out: &mut Vec<Reading>) {
        if self.len == 0 || start >= end {
            return;
        }
        let lo = self.partition_point(|r| r.ts < start);
        let hi = self.partition_point(|r| r.ts < end);
        out.reserve(hi - lo);
        for i in lo..hi {
            out.push(self.get(i));
        }
    }

    /// All readings in chronological order (mostly for tests and snapshots).
    pub fn to_vec(&self) -> Vec<Reading> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// First logical index for which `pred` is false (series is sorted by ts).
    fn partition_point(&self, pred: impl Fn(&Reading) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pred(&self.get(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The most recent `n` readings, oldest-first.
    pub fn last_n(&self, n: usize) -> Vec<Reading> {
        let take = n.min(self.len);
        (self.len - take..self.len).map(|i| self.get(i)).collect()
    }
}

/// One fixed-width summary bucket of a rollup tier.
///
/// The stored statistics are exactly those that compose: two adjacent
/// buckets (or a bucket and a raw-reading edge) merge without loss for the
/// decomposable aggregations, which is what lets the query planner answer
/// from tiers with raw-scan-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RollupBucket {
    /// Bucket start, aligned to the tier width.
    pub start: Timestamp,
    /// Raw readings folded into this bucket.
    pub count: u64,
    /// Sum of folded values.
    pub sum: f64,
    /// Minimum folded value.
    pub min: f64,
    /// Maximum folded value.
    pub max: f64,
    /// Chronologically first folded value.
    pub first: f64,
    /// Chronologically last folded value.
    pub last: f64,
    /// Timestamp of the first folded reading.
    pub first_ts: Timestamp,
    /// Timestamp of the last folded reading.
    pub last_ts: Timestamp,
}

impl RollupBucket {
    fn open(start: Timestamp, r: Reading) -> Self {
        RollupBucket {
            start,
            count: 1,
            sum: r.value,
            min: r.value,
            max: r.value,
            first: r.value,
            last: r.value,
            first_ts: r.ts,
            last_ts: r.ts,
        }
    }

    #[inline]
    fn fold(&mut self, r: Reading) {
        self.count += 1;
        self.sum += r.value;
        self.min = self.min.min(r.value);
        self.max = self.max.max(r.value);
        self.last = r.value;
        self.last_ts = r.ts;
    }
}

/// Width and retention of one rollup tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollupTierSpec {
    /// Bucket width, milliseconds.
    pub bucket_ms: u64,
    /// Maximum buckets retained per sensor (ring; oldest evicted first).
    pub capacity: usize,
}

/// Rollup-tier layout of a store: zero or more strictly-widening tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollupConfig {
    /// Tier specs, strictly increasing in `bucket_ms`.
    pub tiers: Vec<RollupTierSpec>,
}

impl Default for RollupConfig {
    /// 10 s / 1 min / 10 min tiers of 1024 buckets each (≈ 2.8 h / 17 h /
    /// 7 days of summary per sensor, ~90 KiB per sensor total).
    fn default() -> Self {
        RollupConfig {
            tiers: [10_000, 60_000, 600_000]
                .into_iter()
                .map(|bucket_ms| RollupTierSpec {
                    bucket_ms,
                    capacity: 1_024,
                })
                .collect(),
        }
    }
}

impl RollupConfig {
    /// No tiers at all: every query falls back to raw scans (the ablation
    /// baseline).
    pub fn none() -> Self {
        RollupConfig { tiers: Vec::new() }
    }

    fn validate(&self) {
        for (i, t) in self.tiers.iter().enumerate() {
            assert!(t.bucket_ms > 0, "rollup tier width must be positive");
            assert!(t.capacity > 0, "rollup tier capacity must be positive");
            if i > 0 {
                assert!(
                    t.bucket_ms > self.tiers[i - 1].bucket_ms,
                    "rollup tiers must strictly widen (got {} ms after {} ms)",
                    t.bucket_ms,
                    self.tiers[i - 1].bucket_ms
                );
            }
        }
    }
}

/// One sensor's ring of summary buckets at a fixed width.
///
/// Public so rollup maintenance can be tested directly against a tier
/// without a full store, mirroring [`RingBuffer`].
#[derive(Debug, Clone)]
pub struct RollupTier {
    bucket_ms: u64,
    capacity: usize,
    buckets: VecDeque<RollupBucket>,
    evicted: u64,
}

impl RollupTier {
    /// Creates an empty tier from its spec.
    pub fn new(spec: RollupTierSpec) -> Self {
        RollupTier {
            bucket_ms: spec.bucket_ms,
            capacity: spec.capacity,
            buckets: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Bucket width, milliseconds.
    #[inline]
    pub fn bucket_ms(&self) -> u64 {
        self.bucket_ms
    }

    /// Buckets currently retained.
    #[inline]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// `true` when no bucket has been opened yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Buckets evicted by ring wrap-around since creation.
    #[inline]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Start of the oldest retained bucket.
    #[inline]
    pub fn oldest_start(&self) -> Option<Timestamp> {
        self.buckets.front().map(|b| b.start)
    }

    /// Folds one *accepted* reading into the tier. Callers must uphold the
    /// ring-buffer invariant (non-decreasing timestamps, finite values); the
    /// store only calls this after [`RingBuffer::push`] succeeds.
    pub fn observe(&mut self, r: Reading) {
        let start = r.ts.bucket(self.bucket_ms);
        if let Some(open) = self.buckets.back_mut() {
            if open.start == start {
                open.fold(r);
                return;
            }
            debug_assert!(start > open.start, "tier timestamps must be monotone");
        }
        self.buckets.push_back(RollupBucket::open(start, r));
        if self.buckets.len() > self.capacity {
            self.buckets.pop_front();
            self.evicted += 1;
        }
    }

    /// Copies the buckets with `start <= bucket.start < end` into `out`.
    pub fn range_into(&self, start: Timestamp, end: Timestamp, out: &mut Vec<RollupBucket>) {
        let lo = self.buckets.partition_point(|b| b.start < start);
        let hi = self.buckets.partition_point(|b| b.start < end);
        out.extend(self.buckets.iter().skip(lo).take(hi - lo));
    }
}

/// One sensor's archive: the raw ring plus its rollup tiers.
#[derive(Debug, Clone)]
struct SensorSeries {
    raw: RingBuffer,
    tiers: Vec<RollupTier>,
    /// Monotone write-version, bumped once per *accepted* reading (which is
    /// also exactly when every rollup tier folds). Read via
    /// [`TimeSeriesStore::sensor_version`]; result caches compare recorded
    /// versions against current ones, so any raw append or bucket fold
    /// since the cached execution invalidates the entry — and an unchanged
    /// version proves the sensor's visible state is bit-identical.
    version: u64,
}

impl SensorSeries {
    fn new(capacity: usize, rollups: &RollupConfig) -> Self {
        SensorSeries {
            raw: RingBuffer::new(capacity),
            tiers: rollups.tiers.iter().map(|&s| RollupTier::new(s)).collect(),
            version: 0,
        }
    }

    /// Pushes into the raw ring and, only on acceptance, into every tier —
    /// rejected readings (non-finite, out-of-order) never pollute rollups.
    fn push(&mut self, r: Reading) -> bool {
        if !self.raw.push(r) {
            return false;
        }
        for tier in &mut self.tiers {
            tier.observe(r);
        }
        self.version += 1;
        true
    }
}

/// Result of a planner-assisted tier read ([`TimeSeriesStore::tier_scan`]).
#[derive(Debug, Clone)]
pub enum TierScanResult {
    /// No tier could serve any part of the range exactly; scan raw.
    Miss,
    /// The range decomposes into raw edges plus a tier-served core.
    Hit {
        /// Raw readings in `[start, core_start)`.
        head: Vec<Reading>,
        /// Summary buckets covering `[core_start, core_end)`, chronological.
        core: Vec<RollupBucket>,
        /// Raw readings in `[core_end, end)`.
        tail: Vec<Reading>,
        /// Width of the serving tier, milliseconds.
        tier_ms: u64,
        /// Raw readings the core summarises minus the buckets returned —
        /// the scan work the tier saved.
        readings_avoided: u64,
    },
}

struct Shard {
    /// Indexed by `sensor.index() / num_shards`.
    series: Vec<Option<SensorSeries>>,
}

/// Per-shard write-path instruments, created once at store construction so
/// the hot path never touches the registry's maps.
struct ShardMetrics {
    appends: Counter,
    rejects_out_of_order: Counter,
    rejects_non_finite: Counter,
    evictions: Counter,
    lock_hold_ns: Histogram,
    /// Write-lock acquisitions that found the shard lock already held —
    /// the collector-vs-collector (or collector-vs-query) contention the
    /// parallel runtime makes possible. Scheduling telemetry: varies run
    /// to run, excluded from the determinism contract.
    contention: Counter,
}

impl ShardMetrics {
    fn new(metrics: &MetricsRegistry, shard: usize) -> Self {
        let idx = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", idx.as_str())];
        ShardMetrics {
            appends: metrics.counter("store_append_total", labels),
            rejects_out_of_order: metrics.counter("store_reject_out_of_order_total", labels),
            rejects_non_finite: metrics.counter("store_reject_non_finite_total", labels),
            evictions: metrics.counter("store_evict_total", labels),
            lock_hold_ns: metrics.histogram("store_lock_hold_ns", labels),
            contention: metrics.counter("store_shard_contention_total", labels),
        }
    }
}

// Compile-time audit: the store is shared (`Arc`) across runtime workers,
// collectors and query threads; it must stay fully thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TimeSeriesStore>();
};

/// Sharded, thread-safe archive of per-sensor time series.
pub struct TimeSeriesStore {
    shards: Vec<RwLock<Shard>>,
    shard_metrics: Vec<ShardMetrics>,
    metrics: MetricsRegistry,
    per_sensor_capacity: usize,
    rollups: RollupConfig,
}

impl TimeSeriesStore {
    /// Default number of lock shards.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a store where each sensor retains up to `per_sensor_capacity`
    /// readings, with the default shard count. Records into the process-wide
    /// [`MetricsRegistry::global`].
    pub fn with_capacity(per_sensor_capacity: usize) -> Self {
        Self::with_capacity_and_shards(per_sensor_capacity, Self::DEFAULT_SHARDS)
    }

    /// Creates a store with an explicit shard count (ablation benches compare
    /// shard counts; `1` degenerates to a single global lock).
    pub fn with_capacity_and_shards(per_sensor_capacity: usize, shards: usize) -> Self {
        Self::with_capacity_shards_metrics(per_sensor_capacity, shards, MetricsRegistry::global())
    }

    /// Creates a store recording its write-path metrics (`store_append_total`,
    /// `store_reject_*_total`, `store_evict_total`, `store_lock_hold_ns`, all
    /// labeled per shard) into an explicit registry — pass
    /// [`MetricsRegistry::disabled`] for a zero-overhead store.
    pub fn with_capacity_shards_metrics(
        per_sensor_capacity: usize,
        shards: usize,
        metrics: MetricsRegistry,
    ) -> Self {
        Self::with_rollups(
            per_sensor_capacity,
            shards,
            metrics,
            RollupConfig::default(),
        )
    }

    /// Creates a store with an explicit rollup-tier layout. Pass
    /// [`RollupConfig::none`] for a raw-only store (the ablation baseline);
    /// the other constructors use [`RollupConfig::default`].
    ///
    /// # Panics
    /// Panics if `per_sensor_capacity == 0`, `shards == 0`, or `rollups`
    /// has a non-widening or zero-width/zero-capacity tier.
    pub fn with_rollups(
        per_sensor_capacity: usize,
        shards: usize,
        metrics: MetricsRegistry,
        rollups: RollupConfig,
    ) -> Self {
        assert!(
            per_sensor_capacity > 0,
            "per-sensor capacity must be positive"
        );
        assert!(shards > 0, "shard count must be positive");
        rollups.validate();
        TimeSeriesStore {
            shards: (0..shards)
                .map(|_| RwLock::new(Shard { series: Vec::new() }))
                .collect(),
            shard_metrics: (0..shards)
                .map(|i| ShardMetrics::new(&metrics, i))
                .collect(),
            metrics,
            per_sensor_capacity,
            rollups,
        }
    }

    /// The rollup-tier layout every sensor in this store maintains.
    pub fn rollup_config(&self) -> &RollupConfig {
        &self.rollups
    }

    /// The registry this store's write-path instruments record into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    #[inline]
    fn locate(&self, sensor: SensorId) -> (usize, usize) {
        let n = self.shards.len();
        (sensor.index() % n, sensor.index() / n)
    }

    /// Retention capacity per sensor.
    pub fn per_sensor_capacity(&self) -> usize {
        self.per_sensor_capacity
    }

    /// Appends one reading. Returns `false` if it was rejected (non-finite
    /// value or out-of-order timestamp).
    pub fn insert(&self, sensor: SensorId, reading: Reading) -> bool {
        self.insert_batch(sensor, std::slice::from_ref(&reading)) == 1
    }

    /// Appends a batch of readings for one sensor; returns how many were
    /// accepted.
    pub fn insert_batch(&self, sensor: SensorId, readings: &[Reading]) -> usize {
        self.insert_batch_with(sensor, readings, |_| {})
    }

    /// As [`Self::insert_batch`], additionally pushing every *accepted*
    /// reading onto `accepted`, in acceptance order. Durable storage
    /// backends use this to WAL-log exactly the readings the ring admitted.
    pub fn insert_batch_accepted(
        &self,
        sensor: SensorId,
        readings: &[Reading],
        accepted: &mut Vec<Reading>,
    ) -> usize {
        self.insert_batch_with(sensor, readings, |r| accepted.push(r))
    }

    fn insert_batch_with(
        &self,
        sensor: SensorId,
        readings: &[Reading],
        mut on_accept: impl FnMut(Reading),
    ) -> usize {
        let (s, slot) = self.locate(sensor);
        let m = &self.shard_metrics[s];
        let mut shard = match self.shards[s].try_write() {
            Some(guard) => guard,
            None => {
                m.contention.inc();
                self.shards[s].write()
            }
        };
        let timer = m.lock_hold_ns.start_timer();
        if shard.series.len() <= slot {
            shard.series.resize_with(slot + 1, || None);
        }
        let series = shard.series[slot]
            .get_or_insert_with(|| SensorSeries::new(self.per_sensor_capacity, &self.rollups));
        let buf = &series.raw;
        let (ooo0, nf0, ev0) = (
            buf.rejected_out_of_order(),
            buf.rejected_non_finite(),
            buf.evicted(),
        );
        let mut accepted = 0usize;
        for r in readings {
            if series.push(*r) {
                accepted += 1;
                on_accept(*r);
            }
        }
        let buf = &series.raw;
        m.appends.add(accepted as u64);
        m.rejects_out_of_order
            .add(buf.rejected_out_of_order() - ooo0);
        m.rejects_non_finite.add(buf.rejected_non_finite() - nf0);
        m.evictions.add(buf.evicted() - ev0);
        m.lock_hold_ns.observe_timer(timer);
        accepted
    }

    /// Oldest reading still retained in the ring for `sensor`, if any.
    /// Storage backends use this to decide whether the hot ring still
    /// covers a query window or the durable tier must serve it.
    pub fn oldest(&self, sensor: SensorId) -> Option<Reading> {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        match shard.series.get(slot) {
            Some(Some(series)) => series.raw.oldest(),
            _ => None,
        }
    }

    /// Readings for `sensor` with `start <= ts < end`, chronological.
    pub fn range(&self, sensor: SensorId, start: Timestamp, end: Timestamp) -> Vec<Reading> {
        let mut out = Vec::new();
        self.range_into(sensor, start, end, &mut out);
        out
    }

    /// As [`Self::range`], appending into a caller-provided buffer to allow
    /// reuse across queries.
    pub fn range_into(
        &self,
        sensor: SensorId,
        start: Timestamp,
        end: Timestamp,
        out: &mut Vec<Reading>,
    ) {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        if let Some(Some(series)) = shard.series.get(slot) {
            series.raw.range_into(start, end, out);
        }
    }

    /// Plans a tier-assisted read of `[start, end)` for `sensor`.
    ///
    /// `align_ms` is the caller's bucketing requirement: for downsample /
    /// align shapes it is the requested bucket width (only tiers whose
    /// width **divides** it can serve, since both bucket from epoch zero);
    /// for whole-range scalar aggregations pass `None` and any tier may
    /// serve with its own width.
    ///
    /// Picks the **coarsest** eligible tier and decomposes the range into a
    /// raw `head` edge, a tier-served aligned `core`, and a raw `tail` edge
    /// — all captured under one shard read-lock, so the three pieces are a
    /// consistent snapshot. Correctness constraints (either failing → the
    /// core shrinks or the scan degrades to [`TierScanResult::Miss`]):
    ///
    /// * **eviction horizon** — if the raw ring has evicted, the core may
    ///   only start after the oldest retained raw reading, so edges can
    ///   always be re-read from raw and answers equal a raw rescan;
    /// * **tier floor** — if the tier ring has evicted buckets, the core may
    ///   only start at the oldest retained bucket.
    ///
    /// Returns `Miss` when no tier is eligible, the core would be empty, or
    /// the tier saves nothing (`readings_avoided == 0`), in which case the
    /// caller should raw-scan.
    pub fn tier_scan(
        &self,
        sensor: SensorId,
        start: Timestamp,
        end: Timestamp,
        align_ms: Option<u64>,
    ) -> TierScanResult {
        if start >= end {
            return TierScanResult::Miss;
        }
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        let Some(Some(series)) = shard.series.get(slot) else {
            return TierScanResult::Miss;
        };
        // Coarsest tier first: widest buckets summarise the most readings.
        for tier in series.tiers.iter().rev() {
            let tier_ms = tier.bucket_ms();
            if let Some(req) = align_ms {
                if req == 0 || req % tier_ms != 0 {
                    continue;
                }
            }
            if tier.is_empty() {
                continue;
            }
            // Core boundaries must land on the *request* alignment (the
            // caller's bucket width, or the tier's own for scalar reads) so
            // the caller's buckets are each served wholly by tiers or
            // wholly by raw edges — never split.
            let align = align_ms.unwrap_or(tier_ms);
            let Some(mut core_start) = start.as_millis().checked_next_multiple_of(align) else {
                continue;
            };
            let core_end = (end.as_millis() / align) * align;
            // Eviction horizon: the head edge must be fully present in raw.
            if let (true, Some(oldest)) = (series.raw.evicted() > 0, series.raw.oldest()) {
                let Some(horizon) = oldest
                    .ts
                    .as_millis()
                    .checked_add(1)
                    .and_then(|t| t.checked_next_multiple_of(align))
                else {
                    continue;
                };
                core_start = core_start.max(horizon);
            }
            // Tier floor: only retained buckets can serve the core.
            if let (true, Some(floor)) = (tier.evicted() > 0, tier.oldest_start()) {
                let Some(floor) = floor.as_millis().checked_next_multiple_of(align) else {
                    continue;
                };
                core_start = core_start.max(floor);
            }
            if core_start >= core_end {
                continue;
            }
            let core_start = Timestamp::from_millis(core_start);
            let core_end = Timestamp::from_millis(core_end);
            let mut core = Vec::new();
            tier.range_into(core_start, core_end, &mut core);
            let readings_avoided = core
                .iter()
                .map(|b| b.count)
                .sum::<u64>()
                .saturating_sub(core.len() as u64);
            if readings_avoided == 0 {
                continue;
            }
            let mut head = Vec::new();
            series.raw.range_into(start, core_start, &mut head);
            let mut tail = Vec::new();
            series.raw.range_into(core_end, end, &mut tail);
            return TierScanResult::Hit {
                head,
                core,
                tail,
                tier_ms,
                readings_avoided,
            };
        }
        TierScanResult::Miss
    }

    /// Monotone write-version of `sensor`'s series: starts at `0` for a
    /// sensor the store has never accepted a reading for, and increments by
    /// one for every accepted reading — the same event that folds every
    /// rollup tier. Two reads of a sensor bracketed by equal versions are
    /// guaranteed to observe bit-identical raw and tier state, which is the
    /// invalidation contract the serving layer's query-result cache builds
    /// on (see `oda-serve`).
    pub fn sensor_version(&self, sensor: SensorId) -> u64 {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .map(|b| b.version)
            .unwrap_or(0)
    }

    /// The newest reading for `sensor`, if any.
    pub fn latest(&self, sensor: SensorId) -> Option<Reading> {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .and_then(|b| b.raw.newest())
    }

    /// The most recent `n` readings for `sensor`, oldest-first.
    pub fn last_n(&self, sensor: SensorId, n: usize) -> Vec<Reading> {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .map(|b| b.raw.last_n(n))
            .unwrap_or_default()
    }

    /// Number of readings currently retained for `sensor`.
    pub fn series_len(&self, sensor: SensorId) -> usize {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .map(|b| b.raw.len())
            .unwrap_or(0)
    }

    /// Ingest health of one sensor's series, if the sensor ever reached the
    /// store.
    pub fn sensor_health(&self, sensor: SensorId) -> Option<crate::health::SensorHealth> {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .map(|b| Self::health_row(sensor, &b.raw))
    }

    /// Point-in-time health roll-up across every sensor that has reached
    /// the store, ordered by sensor index. Includes per-tier rollup
    /// occupancy aggregated over all sensors.
    pub fn health_report(&self) -> crate::health::HealthReport {
        let n = self.shards.len();
        let mut sensors = Vec::new();
        let mut rollups: Vec<crate::health::TierOccupancy> = self
            .rollups
            .tiers
            .iter()
            .map(|t| crate::health::TierOccupancy {
                bucket_ms: t.bucket_ms,
                capacity: t.capacity,
                buckets: 0,
                evicted: 0,
            })
            .collect();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let shard = shard.read();
            for (slot, series) in shard.series.iter().enumerate() {
                if let Some(series) = series {
                    let sensor = SensorId((slot * n + shard_idx) as u32);
                    sensors.push(Self::health_row(sensor, &series.raw));
                    for (occ, tier) in rollups.iter_mut().zip(&series.tiers) {
                        occ.buckets += tier.len() as u64;
                        occ.evicted += tier.evicted();
                    }
                }
            }
        }
        sensors.sort_by_key(|h| h.sensor.index());
        crate::health::HealthReport { sensors, rollups }
    }

    fn health_row(sensor: SensorId, buf: &RingBuffer) -> crate::health::SensorHealth {
        crate::health::SensorHealth {
            sensor,
            len: buf.len(),
            last_seen: buf.newest().map(|r| r.ts),
            evicted: buf.evicted(),
            rejected_out_of_order: buf.rejected_out_of_order(),
            rejected_non_finite: buf.rejected_non_finite(),
            max_gap_ms: buf.max_gap_ms(),
        }
    }

    /// Total readings retained across all sensors (diagnostic).
    pub fn total_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .series
                    .iter()
                    .flatten()
                    .map(|b| b.raw.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ts: u64, v: f64) -> Reading {
        Reading::new(Timestamp::from_millis(ts), v)
    }

    #[test]
    fn ring_buffer_fills_then_wraps() {
        let mut b = RingBuffer::new(3);
        assert!(b.push(r(0, 0.0)));
        assert!(b.push(r(1, 1.0)));
        assert!(b.push(r(2, 2.0)));
        assert_eq!(b.len(), 3);
        assert_eq!(b.evicted(), 0);
        assert!(b.push(r(3, 3.0)));
        assert_eq!(b.len(), 3);
        assert_eq!(b.evicted(), 1);
        assert_eq!(b.oldest().unwrap().value, 1.0);
        assert_eq!(b.newest().unwrap().value, 3.0);
        assert_eq!(
            b.to_vec().iter().map(|x| x.value).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn ring_buffer_rejects_out_of_order_and_nan() {
        let mut b = RingBuffer::new(4);
        assert!(b.push(r(10, 1.0)));
        assert!(!b.push(r(5, 2.0)), "older timestamp must be rejected");
        assert!(b.push(r(10, 3.0)), "equal timestamp is allowed");
        assert!(!b.push(r(11, f64::NAN)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn ring_buffer_range_binary_search() {
        let mut b = RingBuffer::new(8);
        for t in 0..8 {
            b.push(r(t * 10, t as f64));
        }
        let mut out = Vec::new();
        b.range_into(
            Timestamp::from_millis(20),
            Timestamp::from_millis(50),
            &mut out,
        );
        assert_eq!(
            out.iter().map(|x| x.value).collect::<Vec<_>>(),
            vec![2.0, 3.0, 4.0]
        );

        // Range across the wrap point.
        for t in 8..12 {
            b.push(r(t * 10, t as f64));
        }
        out.clear();
        b.range_into(Timestamp::from_millis(0), Timestamp::MAX, &mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(out[0].value, 4.0);
        assert_eq!(out[7].value, 11.0);
    }

    #[test]
    fn ring_buffer_empty_and_inverted_ranges() {
        let b = RingBuffer::new(4);
        let mut out = Vec::new();
        b.range_into(Timestamp::ZERO, Timestamp::MAX, &mut out);
        assert!(out.is_empty());

        let mut b = RingBuffer::new(4);
        b.push(r(0, 1.0));
        b.range_into(
            Timestamp::from_millis(5),
            Timestamp::from_millis(5),
            &mut out,
        );
        assert!(out.is_empty());
        b.range_into(
            Timestamp::from_millis(9),
            Timestamp::from_millis(3),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn ring_buffer_last_n() {
        let mut b = RingBuffer::new(4);
        for t in 0..6 {
            b.push(r(t, t as f64));
        }
        assert_eq!(
            b.last_n(2).iter().map(|x| x.value).collect::<Vec<_>>(),
            vec![4.0, 5.0]
        );
        assert_eq!(b.last_n(10).len(), 4);
    }

    #[test]
    fn store_basic_insert_query() {
        let store = TimeSeriesStore::with_capacity(16);
        let a = SensorId(0);
        let b = SensorId(17); // lands in shard 1 with 16 shards
        for t in 0..10u64 {
            assert!(store.insert(a, r(t * 100, t as f64)));
            assert!(store.insert(b, r(t * 100, -(t as f64))));
        }
        assert_eq!(store.series_len(a), 10);
        assert_eq!(store.latest(b).unwrap().value, -9.0);
        let ra = store.range(a, Timestamp::from_millis(200), Timestamp::from_millis(500));
        assert_eq!(ra.len(), 3);
        assert_eq!(store.total_len(), 20);
    }

    #[test]
    fn store_batch_insert_counts_accepted() {
        let store = TimeSeriesStore::with_capacity(16);
        let s = SensorId(3);
        let batch = vec![
            r(0, 1.0),
            r(10, 2.0),
            r(5, 3.0),
            r(20, f64::NAN),
            r(30, 4.0),
        ];
        // r(5,..) is out of order, NaN is rejected.
        assert_eq!(store.insert_batch(s, &batch), 3);
        assert_eq!(store.series_len(s), 3);
    }

    #[test]
    fn store_unknown_sensor_is_empty() {
        let store = TimeSeriesStore::with_capacity(4);
        assert!(store.latest(SensorId(99)).is_none());
        assert!(store
            .range(SensorId(99), Timestamp::ZERO, Timestamp::MAX)
            .is_empty());
        assert_eq!(store.series_len(SensorId(99)), 0);
    }

    #[test]
    fn store_single_shard_still_works() {
        let store = TimeSeriesStore::with_capacity_and_shards(8, 1);
        for i in 0..5u32 {
            store.insert(SensorId(i), r(0, i as f64));
        }
        for i in 0..5u32 {
            assert_eq!(store.latest(SensorId(i)).unwrap().value, i as f64);
        }
    }

    #[test]
    fn ring_buffer_counts_rejections_and_gaps() {
        let mut b = RingBuffer::new(4);
        assert!(b.push(r(1_000, 1.0)));
        assert!(b.push(r(3_500, 2.0)));
        assert!(!b.push(r(100, 3.0)));
        assert!(!b.push(r(4_000, f64::INFINITY)));
        assert!(b.push(r(4_000, 4.0)));
        assert_eq!(b.rejected_out_of_order(), 1);
        assert_eq!(b.rejected_non_finite(), 1);
        assert_eq!(b.max_gap_ms(), 2_500);
    }

    #[test]
    fn health_report_rolls_up_per_sensor_state() {
        let store = TimeSeriesStore::with_capacity(4);
        let a = SensorId(0);
        let b = SensorId(17);
        for t in 0..6u64 {
            store.insert(a, r(t * 1_000, t as f64));
        }
        store.insert(b, r(500, 1.0));
        store.insert(b, r(400, 2.0)); // out of order
        store.insert(b, r(600, f64::NAN));
        let rep = store.health_report();
        assert_eq!(rep.sensor_count(), 2);
        let ha = rep.sensor(a).unwrap();
        assert_eq!(ha.len, 4);
        assert_eq!(ha.evicted, 2);
        assert_eq!(ha.last_seen, Some(Timestamp::from_millis(5_000)));
        assert_eq!(ha.max_gap_ms, 1_000);
        let hb = rep.sensor(b).unwrap();
        assert_eq!(hb.rejected_out_of_order, 1);
        assert_eq!(hb.rejected_non_finite, 1);
        assert_eq!(rep.total_rejected(), 2);
        assert_eq!(rep.total_evicted(), 2);
        // Sensor b has been silent since t=500ms.
        let stale = rep.stale_sensors(Timestamp::from_millis(5_000), 1_500);
        assert_eq!(stale, vec![b]);
        assert_eq!(store.sensor_health(a).unwrap(), *ha);
        assert!(store.sensor_health(SensorId(99)).is_none());
    }

    #[test]
    fn store_write_path_records_per_shard_metrics() {
        let m = MetricsRegistry::new();
        let store = TimeSeriesStore::with_capacity_shards_metrics(2, 1, m.clone());
        let s = SensorId(0);
        store.insert(s, r(0, 1.0));
        store.insert(s, r(10, 2.0));
        store.insert(s, r(5, 3.0)); // out of order → rejected
        store.insert(s, r(20, f64::NAN)); // non-finite → rejected
        store.insert(s, r(20, 4.0)); // accepted, evicts the oldest
        let snap = m.snapshot();
        assert_eq!(snap.counter("store_append_total{shard=\"0\"}"), Some(3));
        assert_eq!(
            snap.counter("store_reject_out_of_order_total{shard=\"0\"}"),
            Some(1)
        );
        assert_eq!(
            snap.counter("store_reject_non_finite_total{shard=\"0\"}"),
            Some(1)
        );
        assert_eq!(snap.counter("store_evict_total{shard=\"0\"}"), Some(1));
        let hold = snap.histogram("store_lock_hold_ns{shard=\"0\"}").unwrap();
        assert_eq!(hold.count, 5, "one lock-hold sample per insert");
    }

    #[test]
    fn store_with_disabled_metrics_records_nothing() {
        let store =
            TimeSeriesStore::with_capacity_shards_metrics(4, 2, MetricsRegistry::disabled());
        store.insert(SensorId(0), r(0, 1.0));
        assert!(!store.metrics().is_enabled());
        assert!(store.metrics().snapshot().counters.is_empty());
        assert_eq!(store.series_len(SensorId(0)), 1);
    }

    #[test]
    // 8 threads x 1000 inserts is a thread-stress test, not a memory-model
    // probe: under Miri's interpreter it runs for minutes. The TSan lane
    // covers the same interleavings at native speed.
    #[cfg_attr(miri, ignore)]
    fn store_concurrent_writers_disjoint_sensors() {
        use std::sync::Arc;
        let store = Arc::new(TimeSeriesStore::with_capacity(1024));
        let mut handles = Vec::new();
        for w in 0..8u32 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let s = SensorId(w);
                for t in 0..1000u64 {
                    store.insert(s, r(t, t as f64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for w in 0..8u32 {
            assert_eq!(store.series_len(SensorId(w)), 1000);
        }
    }

    #[test]
    fn rollup_tier_folds_and_wraps() {
        let mut t = RollupTier::new(RollupTierSpec {
            bucket_ms: 1_000,
            capacity: 2,
        });
        t.observe(r(100, 1.0));
        t.observe(r(900, 3.0));
        assert_eq!(t.len(), 1);
        let mut out = Vec::new();
        t.range_into(Timestamp::ZERO, Timestamp::MAX, &mut out);
        let b = out[0];
        assert_eq!(b.start, Timestamp::ZERO);
        assert_eq!(b.count, 2);
        assert_eq!(b.sum, 4.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 3.0);
        assert_eq!(b.first, 1.0);
        assert_eq!(b.last, 3.0);
        assert_eq!(b.first_ts, Timestamp::from_millis(100));
        assert_eq!(b.last_ts, Timestamp::from_millis(900));
        // Third bucket evicts the first (capacity 2).
        t.observe(r(1_500, 5.0));
        t.observe(r(2_500, 7.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted(), 1);
        assert_eq!(t.oldest_start(), Some(Timestamp::from_millis(1_000)));
    }

    #[test]
    fn rejected_readings_do_not_pollute_rollups() {
        let store = TimeSeriesStore::with_rollups(
            16,
            1,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![RollupTierSpec {
                    bucket_ms: 1_000,
                    capacity: 8,
                }],
            },
        );
        let s = SensorId(0);
        store.insert(s, r(100, 1.0));
        store.insert(s, r(200, f64::NAN)); // rejected: non-finite
        store.insert(s, r(300, 2.0));
        store.insert(s, r(50, 99.0)); // rejected: out of order
        match store.tier_scan(s, Timestamp::ZERO, Timestamp::from_millis(1_000), None) {
            TierScanResult::Hit { core, .. } => {
                assert_eq!(core.len(), 1);
                assert_eq!(core[0].count, 2, "rejected readings must not be folded");
                assert_eq!(core[0].sum, 3.0);
            }
            TierScanResult::Miss => panic!("expected a tier hit"),
        }
    }

    #[test]
    fn tier_scan_decomposes_into_head_core_tail() {
        let store = TimeSeriesStore::with_rollups(
            64,
            1,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![RollupTierSpec {
                    bucket_ms: 1_000,
                    capacity: 64,
                }],
            },
        );
        let s = SensorId(0);
        for t in 0..40u64 {
            store.insert(s, r(t * 100, t as f64)); // 10 readings per bucket
        }
        // [250, 3_250): head = [250,1_000), core = [1_000,3_000), tail = [3_000,3_250)
        match store.tier_scan(
            s,
            Timestamp::from_millis(250),
            Timestamp::from_millis(3_250),
            None,
        ) {
            TierScanResult::Hit {
                head,
                core,
                tail,
                tier_ms,
                readings_avoided,
            } => {
                assert_eq!(tier_ms, 1_000);
                assert_eq!(
                    head.iter().map(|x| x.value).collect::<Vec<_>>(),
                    vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
                );
                assert_eq!(core.len(), 2);
                assert_eq!(core[0].start, Timestamp::from_millis(1_000));
                assert_eq!(core[0].count, 10);
                assert_eq!(core[1].start, Timestamp::from_millis(2_000));
                assert_eq!(
                    tail.iter().map(|x| x.value).collect::<Vec<_>>(),
                    vec![30.0, 31.0, 32.0]
                );
                assert_eq!(readings_avoided, 18);
            }
            TierScanResult::Miss => panic!("expected a tier hit"),
        }
    }

    #[test]
    fn tier_scan_honours_alignment_divisibility() {
        let store = TimeSeriesStore::with_rollups(
            64,
            1,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![RollupTierSpec {
                    bucket_ms: 1_000,
                    capacity: 64,
                }],
            },
        );
        let s = SensorId(0);
        for t in 0..30u64 {
            store.insert(s, r(t * 100, t as f64));
        }
        // 2_000 is a multiple of the 1_000 ms tier → eligible.
        assert!(matches!(
            store.tier_scan(
                s,
                Timestamp::ZERO,
                Timestamp::from_millis(3_000),
                Some(2_000)
            ),
            TierScanResult::Hit { .. }
        ));
        // 1_500 is not → must miss.
        assert!(matches!(
            store.tier_scan(
                s,
                Timestamp::ZERO,
                Timestamp::from_millis(3_000),
                Some(1_500)
            ),
            TierScanResult::Miss
        ));
    }

    #[test]
    fn tier_scan_respects_raw_eviction_horizon() {
        // Raw retains only the last 12 readings; tiers remember everything.
        let store = TimeSeriesStore::with_rollups(
            12,
            1,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![RollupTierSpec {
                    bucket_ms: 1_000,
                    capacity: 64,
                }],
            },
        );
        let s = SensorId(0);
        for t in 0..40u64 {
            store.insert(s, r(t * 100, t as f64));
        }
        // Raw now holds ts 2_800..=3_900; bucket 3_000 is the only one whose
        // readings are all still retained.
        let oldest = store.range(s, Timestamp::ZERO, Timestamp::MAX)[0].ts;
        assert_eq!(oldest, Timestamp::from_millis(2_800));
        match store.tier_scan(s, Timestamp::ZERO, Timestamp::from_millis(4_000), None) {
            TierScanResult::Hit {
                head, core, tail, ..
            } => {
                for b in &core {
                    assert!(
                        b.start > oldest,
                        "core bucket at {:?} reaches behind the raw eviction horizon",
                        b.start
                    );
                }
                assert_eq!(core.len(), 1);
                assert_eq!(core[0].start, Timestamp::from_millis(3_000));
                // Everything served must re-compose to exactly the raw scan.
                let raw = store.range(s, Timestamp::ZERO, Timestamp::from_millis(4_000));
                let served = head.len() as u64
                    + core.iter().map(|b| b.count).sum::<u64>()
                    + tail.len() as u64;
                assert_eq!(served, raw.len() as u64);
                assert_eq!(
                    head.iter().map(|x| x.value).collect::<Vec<_>>(),
                    vec![28.0, 29.0]
                );
            }
            TierScanResult::Miss => panic!("expected a hit for the fully-retained trailing bucket"),
        }

        // A range whose only complete buckets reach behind the horizon must
        // miss rather than answer from summarised-but-evicted data.
        assert!(matches!(
            store.tier_scan(s, Timestamp::ZERO, Timestamp::from_millis(2_000), None),
            TierScanResult::Miss
        ));
    }

    #[test]
    fn tier_scan_misses_without_tiers_or_savings() {
        let store =
            TimeSeriesStore::with_rollups(16, 1, MetricsRegistry::disabled(), RollupConfig::none());
        let s = SensorId(0);
        store.insert(s, r(0, 1.0));
        assert!(matches!(
            store.tier_scan(s, Timestamp::ZERO, Timestamp::MAX, None),
            TierScanResult::Miss
        ));

        // One reading per bucket → zero savings → miss.
        let sparse = TimeSeriesStore::with_rollups(
            16,
            1,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![RollupTierSpec {
                    bucket_ms: 1_000,
                    capacity: 8,
                }],
            },
        );
        sparse.insert(s, r(500, 1.0));
        sparse.insert(s, r(1_500, 2.0));
        assert!(matches!(
            sparse.tier_scan(s, Timestamp::ZERO, Timestamp::from_millis(2_000), None),
            TierScanResult::Miss
        ));
    }

    #[test]
    fn health_report_surfaces_tier_occupancy() {
        let store = TimeSeriesStore::with_rollups(
            64,
            2,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![
                    RollupTierSpec {
                        bucket_ms: 1_000,
                        capacity: 2,
                    },
                    RollupTierSpec {
                        bucket_ms: 10_000,
                        capacity: 8,
                    },
                ],
            },
        );
        for sensor in 0..2u32 {
            for t in 0..40u64 {
                store.insert(SensorId(sensor), r(t * 100, t as f64)); // 4 buckets @1s
            }
        }
        let rep = store.health_report();
        assert_eq!(rep.rollups.len(), 2);
        assert_eq!(rep.rollups[0].bucket_ms, 1_000);
        assert_eq!(rep.rollups[0].capacity, 2);
        assert_eq!(rep.rollups[0].buckets, 4, "2 sensors × 2 retained buckets");
        assert_eq!(rep.rollups[0].evicted, 4, "2 sensors × 2 evicted buckets");
        assert_eq!(rep.rollups[1].buckets, 2, "2 sensors × 1 wide bucket");
        assert_eq!(rep.rollups[1].evicted, 0);
    }

    #[test]
    #[should_panic(expected = "strictly widen")]
    fn rollup_config_rejects_non_widening_tiers() {
        let _ = TimeSeriesStore::with_rollups(
            4,
            1,
            MetricsRegistry::disabled(),
            RollupConfig {
                tiers: vec![
                    RollupTierSpec {
                        bucket_ms: 1_000,
                        capacity: 4,
                    },
                    RollupTierSpec {
                        bucket_ms: 1_000,
                        capacity: 4,
                    },
                ],
            },
        );
    }
}
