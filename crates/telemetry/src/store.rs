//! The in-memory time-series archive.
//!
//! Production ODA stacks archive near-real-time data in a write-optimised
//! store and serve analytical reads from it. This module provides an
//! in-memory equivalent with the same access pattern:
//!
//! * **writes** are appends of monotonically-timestamped readings to one
//!   sensor's series;
//! * **reads** are contiguous time-range scans of one or more series.
//!
//! Each sensor owns a fixed-capacity **ring buffer**: once full, the oldest
//! readings are overwritten. This matches the "retain the recent operational
//! window, downsample/export for long-term archival" policy of real
//! deployments and gives O(1) ingest with zero steady-state allocation.
//!
//! The store is sharded: sensor ids map round-robin onto `N` shards, each
//! behind its own `parking_lot::RwLock`, so concurrent collectors writing
//! disjoint sensors rarely contend. The shard count is fixed at construction.

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::reading::{Reading, Timestamp};
use crate::sensor::SensorId;
use parking_lot::RwLock;

/// Fixed-capacity ring buffer of readings with monotonic timestamps.
///
/// Kept public so analytics code can be tested directly against a buffer
/// without constructing a full store.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<Reading>,
    head: usize,
    len: usize,
    capacity: usize,
    /// Count of readings ever evicted by wrap-around.
    evicted: u64,
    /// Count of readings rejected for an out-of-order timestamp.
    rejected_out_of_order: u64,
    /// Count of readings rejected for a non-finite value.
    rejected_non_finite: u64,
    /// Largest inter-reading gap ever accepted, milliseconds.
    max_gap_ms: u64,
}

impl RingBuffer {
    /// Creates a buffer holding at most `capacity` readings.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            capacity,
            evicted: 0,
            rejected_out_of_order: 0,
            rejected_non_finite: 0,
            max_gap_ms: 0,
        }
    }

    /// Number of readings currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no readings are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Count of readings evicted by wrap-around since creation.
    #[inline]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Count of readings rejected for an out-of-order timestamp.
    #[inline]
    pub fn rejected_out_of_order(&self) -> u64 {
        self.rejected_out_of_order
    }

    /// Count of readings rejected for a non-finite value.
    #[inline]
    pub fn rejected_non_finite(&self) -> u64 {
        self.rejected_non_finite
    }

    /// Largest gap between consecutive accepted readings, milliseconds
    /// (`0` until two readings have been accepted).
    #[inline]
    pub fn max_gap_ms(&self) -> u64 {
        self.max_gap_ms
    }

    /// Appends a reading.
    ///
    /// Returns `false` (and stores nothing) if the reading is non-finite or
    /// older than the newest stored reading — out-of-order data is dropped
    /// rather than silently corrupting the series, mirroring the behaviour
    /// of production collectors. Equal timestamps are accepted, replacing
    /// nothing (multiple same-ts readings are legal and preserved in arrival
    /// order).
    pub fn push(&mut self, r: Reading) -> bool {
        if !r.is_finite() {
            self.rejected_non_finite += 1;
            return false;
        }
        if let Some(last) = self.newest() {
            if r.ts < last.ts {
                self.rejected_out_of_order += 1;
                return false;
            }
            self.max_gap_ms = self.max_gap_ms.max(r.ts.millis_since(last.ts));
        }
        if self.len < self.capacity {
            // Still filling the initial allocation.
            let pos = (self.head + self.len) % self.capacity;
            if pos == self.buf.len() {
                self.buf.push(r);
            } else {
                self.buf[pos] = r;
            }
            self.len += 1;
        } else {
            // Overwrite the oldest slot.
            self.buf[self.head] = r;
            self.head = (self.head + 1) % self.capacity;
            self.evicted += 1;
        }
        true
    }

    /// The oldest stored reading.
    #[inline]
    pub fn oldest(&self) -> Option<Reading> {
        (self.len > 0).then(|| self.buf[self.head])
    }

    /// The newest stored reading.
    #[inline]
    pub fn newest(&self) -> Option<Reading> {
        (self.len > 0).then(|| self.buf[(self.head + self.len - 1) % self.capacity])
    }

    /// Reading at logical position `i` (0 = oldest).
    #[inline]
    fn get(&self, i: usize) -> Reading {
        debug_assert!(i < self.len);
        self.buf[(self.head + i) % self.capacity]
    }

    /// Copies all readings with `start <= ts < end` into `out`, in order.
    ///
    /// Uses binary search over the logically-ordered buffer, so cost is
    /// O(log n + k) for k results.
    pub fn range_into(&self, start: Timestamp, end: Timestamp, out: &mut Vec<Reading>) {
        if self.len == 0 || start >= end {
            return;
        }
        let lo = self.partition_point(|r| r.ts < start);
        let hi = self.partition_point(|r| r.ts < end);
        out.reserve(hi - lo);
        for i in lo..hi {
            out.push(self.get(i));
        }
    }

    /// All readings in chronological order (mostly for tests and snapshots).
    pub fn to_vec(&self) -> Vec<Reading> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// First logical index for which `pred` is false (series is sorted by ts).
    fn partition_point(&self, pred: impl Fn(&Reading) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pred(&self.get(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The most recent `n` readings, oldest-first.
    pub fn last_n(&self, n: usize) -> Vec<Reading> {
        let take = n.min(self.len);
        (self.len - take..self.len).map(|i| self.get(i)).collect()
    }
}

struct Shard {
    /// Indexed by `sensor.index() / num_shards`.
    series: Vec<Option<RingBuffer>>,
}

/// Per-shard write-path instruments, created once at store construction so
/// the hot path never touches the registry's maps.
struct ShardMetrics {
    appends: Counter,
    rejects_out_of_order: Counter,
    rejects_non_finite: Counter,
    evictions: Counter,
    lock_hold_ns: Histogram,
}

impl ShardMetrics {
    fn new(metrics: &MetricsRegistry, shard: usize) -> Self {
        let idx = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", idx.as_str())];
        ShardMetrics {
            appends: metrics.counter("store_append_total", labels),
            rejects_out_of_order: metrics.counter("store_reject_out_of_order_total", labels),
            rejects_non_finite: metrics.counter("store_reject_non_finite_total", labels),
            evictions: metrics.counter("store_evict_total", labels),
            lock_hold_ns: metrics.histogram("store_lock_hold_ns", labels),
        }
    }
}

/// Sharded, thread-safe archive of per-sensor time series.
pub struct TimeSeriesStore {
    shards: Vec<RwLock<Shard>>,
    shard_metrics: Vec<ShardMetrics>,
    metrics: MetricsRegistry,
    per_sensor_capacity: usize,
}

impl TimeSeriesStore {
    /// Default number of lock shards.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a store where each sensor retains up to `per_sensor_capacity`
    /// readings, with the default shard count. Records into the process-wide
    /// [`MetricsRegistry::global`].
    pub fn with_capacity(per_sensor_capacity: usize) -> Self {
        Self::with_capacity_and_shards(per_sensor_capacity, Self::DEFAULT_SHARDS)
    }

    /// Creates a store with an explicit shard count (ablation benches compare
    /// shard counts; `1` degenerates to a single global lock).
    pub fn with_capacity_and_shards(per_sensor_capacity: usize, shards: usize) -> Self {
        Self::with_capacity_shards_metrics(per_sensor_capacity, shards, MetricsRegistry::global())
    }

    /// Creates a store recording its write-path metrics (`store_append_total`,
    /// `store_reject_*_total`, `store_evict_total`, `store_lock_hold_ns`, all
    /// labeled per shard) into an explicit registry — pass
    /// [`MetricsRegistry::disabled`] for a zero-overhead store.
    pub fn with_capacity_shards_metrics(
        per_sensor_capacity: usize,
        shards: usize,
        metrics: MetricsRegistry,
    ) -> Self {
        assert!(per_sensor_capacity > 0, "per-sensor capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        TimeSeriesStore {
            shards: (0..shards)
                .map(|_| RwLock::new(Shard { series: Vec::new() }))
                .collect(),
            shard_metrics: (0..shards).map(|i| ShardMetrics::new(&metrics, i)).collect(),
            metrics,
            per_sensor_capacity,
        }
    }

    /// The registry this store's write-path instruments record into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    #[inline]
    fn locate(&self, sensor: SensorId) -> (usize, usize) {
        let n = self.shards.len();
        (sensor.index() % n, sensor.index() / n)
    }

    /// Retention capacity per sensor.
    pub fn per_sensor_capacity(&self) -> usize {
        self.per_sensor_capacity
    }

    /// Appends one reading. Returns `false` if it was rejected (non-finite
    /// value or out-of-order timestamp).
    pub fn insert(&self, sensor: SensorId, reading: Reading) -> bool {
        self.insert_batch(sensor, std::slice::from_ref(&reading)) == 1
    }

    /// Appends a batch of readings for one sensor; returns how many were
    /// accepted.
    pub fn insert_batch(&self, sensor: SensorId, readings: &[Reading]) -> usize {
        let (s, slot) = self.locate(sensor);
        let m = &self.shard_metrics[s];
        let mut shard = self.shards[s].write();
        let timer = m.lock_hold_ns.start_timer();
        if shard.series.len() <= slot {
            shard.series.resize_with(slot + 1, || None);
        }
        let buf = shard.series[slot].get_or_insert_with(|| RingBuffer::new(self.per_sensor_capacity));
        let (ooo0, nf0, ev0) = (buf.rejected_out_of_order(), buf.rejected_non_finite(), buf.evicted());
        let accepted = readings.iter().filter(|r| buf.push(**r)).count();
        m.appends.add(accepted as u64);
        m.rejects_out_of_order.add(buf.rejected_out_of_order() - ooo0);
        m.rejects_non_finite.add(buf.rejected_non_finite() - nf0);
        m.evictions.add(buf.evicted() - ev0);
        m.lock_hold_ns.observe_timer(timer);
        accepted
    }

    /// Readings for `sensor` with `start <= ts < end`, chronological.
    pub fn range(&self, sensor: SensorId, start: Timestamp, end: Timestamp) -> Vec<Reading> {
        let mut out = Vec::new();
        self.range_into(sensor, start, end, &mut out);
        out
    }

    /// As [`Self::range`], appending into a caller-provided buffer to allow
    /// reuse across queries.
    pub fn range_into(
        &self,
        sensor: SensorId,
        start: Timestamp,
        end: Timestamp,
        out: &mut Vec<Reading>,
    ) {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        if let Some(Some(buf)) = shard.series.get(slot) {
            buf.range_into(start, end, out);
        }
    }

    /// The newest reading for `sensor`, if any.
    pub fn latest(&self, sensor: SensorId) -> Option<Reading> {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard.series.get(slot).and_then(|b| b.as_ref()).and_then(|b| b.newest())
    }

    /// The most recent `n` readings for `sensor`, oldest-first.
    pub fn last_n(&self, sensor: SensorId, n: usize) -> Vec<Reading> {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .map(|b| b.last_n(n))
            .unwrap_or_default()
    }

    /// Number of readings currently retained for `sensor`.
    pub fn series_len(&self, sensor: SensorId) -> usize {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .map(|b| b.len())
            .unwrap_or(0)
    }

    /// Ingest health of one sensor's series, if the sensor ever reached the
    /// store.
    pub fn sensor_health(&self, sensor: SensorId) -> Option<crate::health::SensorHealth> {
        let (s, slot) = self.locate(sensor);
        let shard = self.shards[s].read();
        shard
            .series
            .get(slot)
            .and_then(|b| b.as_ref())
            .map(|b| Self::health_row(sensor, b))
    }

    /// Point-in-time health roll-up across every sensor that has reached
    /// the store, ordered by sensor index.
    pub fn health_report(&self) -> crate::health::HealthReport {
        let n = self.shards.len();
        let mut sensors = Vec::new();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let shard = shard.read();
            for (slot, buf) in shard.series.iter().enumerate() {
                if let Some(buf) = buf {
                    let sensor = SensorId((slot * n + shard_idx) as u32);
                    sensors.push(Self::health_row(sensor, buf));
                }
            }
        }
        sensors.sort_by_key(|h| h.sensor.index());
        crate::health::HealthReport { sensors }
    }

    fn health_row(sensor: SensorId, buf: &RingBuffer) -> crate::health::SensorHealth {
        crate::health::SensorHealth {
            sensor,
            len: buf.len(),
            last_seen: buf.newest().map(|r| r.ts),
            evicted: buf.evicted(),
            rejected_out_of_order: buf.rejected_out_of_order(),
            rejected_non_finite: buf.rejected_non_finite(),
            max_gap_ms: buf.max_gap_ms(),
        }
    }

    /// Total readings retained across all sensors (diagnostic).
    pub fn total_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .series
                    .iter()
                    .flatten()
                    .map(|b| b.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ts: u64, v: f64) -> Reading {
        Reading::new(Timestamp::from_millis(ts), v)
    }

    #[test]
    fn ring_buffer_fills_then_wraps() {
        let mut b = RingBuffer::new(3);
        assert!(b.push(r(0, 0.0)));
        assert!(b.push(r(1, 1.0)));
        assert!(b.push(r(2, 2.0)));
        assert_eq!(b.len(), 3);
        assert_eq!(b.evicted(), 0);
        assert!(b.push(r(3, 3.0)));
        assert_eq!(b.len(), 3);
        assert_eq!(b.evicted(), 1);
        assert_eq!(b.oldest().unwrap().value, 1.0);
        assert_eq!(b.newest().unwrap().value, 3.0);
        assert_eq!(
            b.to_vec().iter().map(|x| x.value).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn ring_buffer_rejects_out_of_order_and_nan() {
        let mut b = RingBuffer::new(4);
        assert!(b.push(r(10, 1.0)));
        assert!(!b.push(r(5, 2.0)), "older timestamp must be rejected");
        assert!(b.push(r(10, 3.0)), "equal timestamp is allowed");
        assert!(!b.push(r(11, f64::NAN)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn ring_buffer_range_binary_search() {
        let mut b = RingBuffer::new(8);
        for t in 0..8 {
            b.push(r(t * 10, t as f64));
        }
        let mut out = Vec::new();
        b.range_into(Timestamp::from_millis(20), Timestamp::from_millis(50), &mut out);
        assert_eq!(out.iter().map(|x| x.value).collect::<Vec<_>>(), vec![2.0, 3.0, 4.0]);

        // Range across the wrap point.
        for t in 8..12 {
            b.push(r(t * 10, t as f64));
        }
        out.clear();
        b.range_into(Timestamp::from_millis(0), Timestamp::MAX, &mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(out[0].value, 4.0);
        assert_eq!(out[7].value, 11.0);
    }

    #[test]
    fn ring_buffer_empty_and_inverted_ranges() {
        let b = RingBuffer::new(4);
        let mut out = Vec::new();
        b.range_into(Timestamp::ZERO, Timestamp::MAX, &mut out);
        assert!(out.is_empty());

        let mut b = RingBuffer::new(4);
        b.push(r(0, 1.0));
        b.range_into(Timestamp::from_millis(5), Timestamp::from_millis(5), &mut out);
        assert!(out.is_empty());
        b.range_into(Timestamp::from_millis(9), Timestamp::from_millis(3), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ring_buffer_last_n() {
        let mut b = RingBuffer::new(4);
        for t in 0..6 {
            b.push(r(t, t as f64));
        }
        assert_eq!(b.last_n(2).iter().map(|x| x.value).collect::<Vec<_>>(), vec![4.0, 5.0]);
        assert_eq!(b.last_n(10).len(), 4);
    }

    #[test]
    fn store_basic_insert_query() {
        let store = TimeSeriesStore::with_capacity(16);
        let a = SensorId(0);
        let b = SensorId(17); // lands in shard 1 with 16 shards
        for t in 0..10u64 {
            assert!(store.insert(a, r(t * 100, t as f64)));
            assert!(store.insert(b, r(t * 100, -(t as f64))));
        }
        assert_eq!(store.series_len(a), 10);
        assert_eq!(store.latest(b).unwrap().value, -9.0);
        let ra = store.range(a, Timestamp::from_millis(200), Timestamp::from_millis(500));
        assert_eq!(ra.len(), 3);
        assert_eq!(store.total_len(), 20);
    }

    #[test]
    fn store_batch_insert_counts_accepted() {
        let store = TimeSeriesStore::with_capacity(16);
        let s = SensorId(3);
        let batch = vec![r(0, 1.0), r(10, 2.0), r(5, 3.0), r(20, f64::NAN), r(30, 4.0)];
        // r(5,..) is out of order, NaN is rejected.
        assert_eq!(store.insert_batch(s, &batch), 3);
        assert_eq!(store.series_len(s), 3);
    }

    #[test]
    fn store_unknown_sensor_is_empty() {
        let store = TimeSeriesStore::with_capacity(4);
        assert!(store.latest(SensorId(99)).is_none());
        assert!(store.range(SensorId(99), Timestamp::ZERO, Timestamp::MAX).is_empty());
        assert_eq!(store.series_len(SensorId(99)), 0);
    }

    #[test]
    fn store_single_shard_still_works() {
        let store = TimeSeriesStore::with_capacity_and_shards(8, 1);
        for i in 0..5u32 {
            store.insert(SensorId(i), r(0, i as f64));
        }
        for i in 0..5u32 {
            assert_eq!(store.latest(SensorId(i)).unwrap().value, i as f64);
        }
    }

    #[test]
    fn ring_buffer_counts_rejections_and_gaps() {
        let mut b = RingBuffer::new(4);
        assert!(b.push(r(1_000, 1.0)));
        assert!(b.push(r(3_500, 2.0)));
        assert!(!b.push(r(100, 3.0)));
        assert!(!b.push(r(4_000, f64::INFINITY)));
        assert!(b.push(r(4_000, 4.0)));
        assert_eq!(b.rejected_out_of_order(), 1);
        assert_eq!(b.rejected_non_finite(), 1);
        assert_eq!(b.max_gap_ms(), 2_500);
    }

    #[test]
    fn health_report_rolls_up_per_sensor_state() {
        let store = TimeSeriesStore::with_capacity(4);
        let a = SensorId(0);
        let b = SensorId(17);
        for t in 0..6u64 {
            store.insert(a, r(t * 1_000, t as f64));
        }
        store.insert(b, r(500, 1.0));
        store.insert(b, r(400, 2.0)); // out of order
        store.insert(b, r(600, f64::NAN));
        let rep = store.health_report();
        assert_eq!(rep.sensor_count(), 2);
        let ha = rep.sensor(a).unwrap();
        assert_eq!(ha.len, 4);
        assert_eq!(ha.evicted, 2);
        assert_eq!(ha.last_seen, Some(Timestamp::from_millis(5_000)));
        assert_eq!(ha.max_gap_ms, 1_000);
        let hb = rep.sensor(b).unwrap();
        assert_eq!(hb.rejected_out_of_order, 1);
        assert_eq!(hb.rejected_non_finite, 1);
        assert_eq!(rep.total_rejected(), 2);
        assert_eq!(rep.total_evicted(), 2);
        // Sensor b has been silent since t=500ms.
        let stale = rep.stale_sensors(Timestamp::from_millis(5_000), 1_500);
        assert_eq!(stale, vec![b]);
        assert_eq!(store.sensor_health(a).unwrap(), *ha);
        assert!(store.sensor_health(SensorId(99)).is_none());
    }

    #[test]
    fn store_write_path_records_per_shard_metrics() {
        let m = MetricsRegistry::new();
        let store = TimeSeriesStore::with_capacity_shards_metrics(2, 1, m.clone());
        let s = SensorId(0);
        store.insert(s, r(0, 1.0));
        store.insert(s, r(10, 2.0));
        store.insert(s, r(5, 3.0)); // out of order → rejected
        store.insert(s, r(20, f64::NAN)); // non-finite → rejected
        store.insert(s, r(20, 4.0)); // accepted, evicts the oldest
        let snap = m.snapshot();
        assert_eq!(snap.counter("store_append_total{shard=\"0\"}"), Some(3));
        assert_eq!(snap.counter("store_reject_out_of_order_total{shard=\"0\"}"), Some(1));
        assert_eq!(snap.counter("store_reject_non_finite_total{shard=\"0\"}"), Some(1));
        assert_eq!(snap.counter("store_evict_total{shard=\"0\"}"), Some(1));
        let hold = snap.histogram("store_lock_hold_ns{shard=\"0\"}").unwrap();
        assert_eq!(hold.count, 5, "one lock-hold sample per insert");
    }

    #[test]
    fn store_with_disabled_metrics_records_nothing() {
        let store =
            TimeSeriesStore::with_capacity_shards_metrics(4, 2, MetricsRegistry::disabled());
        store.insert(SensorId(0), r(0, 1.0));
        assert!(!store.metrics().is_enabled());
        assert!(store.metrics().snapshot().counters.is_empty());
        assert_eq!(store.series_len(SensorId(0)), 1);
    }

    #[test]
    fn store_concurrent_writers_disjoint_sensors() {
        use std::sync::Arc;
        let store = Arc::new(TimeSeriesStore::with_capacity(1024));
        let mut handles = Vec::new();
        for w in 0..8u32 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let s = SensorId(w);
                for t in 0..1000u64 {
                    store.insert(s, r(t, t as f64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for w in 0..8u32 {
            assert_eq!(store.series_len(SensorId(w)), 1000);
        }
    }
}
