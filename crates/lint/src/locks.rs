//! Per-function lock summaries: acquisition sites, guard lifetimes, and
//! what happens *while a guard is live* — further acquisitions, blocking
//! operations, calls into other functions.
//!
//! Guard-lifetime tracking is lexical, mirroring Rust's drop rules at the
//! fidelity a token-level analysis can support:
//!
//! * `let g = path.lock();` (optionally through `.unwrap()` / `.expect()`
//!   / `.unwrap_or_else(..)`) — the guard lives to the end of the
//!   enclosing block, or to an explicit `drop(g)`;
//! * `if let Ok(g) = path.lock() { .. }` / `while let` / `match` arms —
//!   the guard lives for the bound block;
//! * a lock call whose result keeps being method-chained
//!   (`path.read().len()`) or that is never bound — a temporary, dropped
//!   at the end of its statement.

use crate::lexer::{Tok, TokKind};
use crate::parse::{FieldInfo, FnItem};
use crate::rules::matching_idx;
use std::collections::BTreeMap;

/// Methods that acquire a lock by blocking until it is available.
const BLOCKING_ACQUIRE: &[&str] = &["lock", "read", "write"];
/// Methods that acquire a lock without blocking (still produce a guard).
const TRY_ACQUIRE: &[&str] = &["try_lock", "try_read", "try_write"];

/// The operations the `guard-across-blocking` rule treats as blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlockKind {
    /// `.send(..)` on a *bounded* channel sender (blocks when full).
    SendBounded,
    /// `.recv()` / `.recv_timeout(..)` on any channel receiver.
    Recv,
    /// `.join()` on a thread handle.
    Join,
    /// `.flush()` / `.sync_all()` — synchronous I/O barriers.
    Flush,
    /// `Server::poll()` — the serving readiness loop.
    Poll,
    /// `.await` — reserved for future async support.
    Await,
}

impl BlockKind {
    /// Human name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            BlockKind::SendBounded => "send on a bounded channel",
            BlockKind::Recv => "recv",
            BlockKind::Join => "join",
            BlockKind::Flush => "flush/sync_all",
            BlockKind::Poll => "Server::poll",
            BlockKind::Await => "await point",
        }
    }
}

/// One lock acquisition inside a function.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Canonical lock identity (see [`LockResolver::resolve`]).
    pub lock: String,
    /// Token index of the method name (`lock`/`read`/...).
    pub tok: usize,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed source column.
    pub col: u32,
    /// Whether the acquisition blocks (`lock()` vs `try_lock()`).
    pub blocking: bool,
    /// Token range `[start, end]` the guard is live over.
    pub extent: (usize, usize),
}

/// A potentially-blocking operation site.
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// What kind of operation.
    pub kind: BlockKind,
    /// Receiver path segments (`["h", "tx"]` for `h.tx.send(..)`) — used
    /// to resolve the channel behind sends and recvs.
    pub recv_path: Vec<String>,
    /// Token index of the op.
    pub tok: usize,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee method/function name.
    pub name: String,
    /// Receiver base type, when resolvable (`self.archive.flush()` →
    /// `StorageBackend`); `None` for free calls or unresolved receivers.
    pub recv_ty: Option<String>,
    /// Explicit path qualifier for `Type::method(..)` calls.
    pub qual_ty: Option<String>,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-indexed line.
    pub line: u32,
}

/// Everything the concurrency rules need to know about one function.
#[derive(Debug, Default, Clone)]
pub struct FnSummary {
    /// Lock acquisitions with guard extents.
    pub acquires: Vec<Acquire>,
    /// Blocking-operation sites.
    pub blocks: Vec<BlockSite>,
    /// Call sites.
    pub calls: Vec<CallSite>,
}

/// Resolves receiver paths to canonical lock identities and base types
/// using the parsed field tables.
pub struct LockResolver<'a> {
    /// `(owner type, field)` → field info, merged across the workspace.
    pub fields: &'a BTreeMap<(String, String), FieldInfo>,
}

impl LockResolver<'_> {
    /// Base type of `path`'s root within `item`: `self` → the impl type,
    /// a parameter → its declared base type, else unknown.
    fn root_type(&self, item: &FnItem, root: &str) -> Option<String> {
        if root == "self" {
            return item.self_ty.clone();
        }
        item.params
            .iter()
            .find(|p| p.name == root)
            .map(|p| p.ty.clone())
    }

    /// Walks `path` segments through the field tables, returning the base
    /// type at the end, as far as it can be followed.
    pub fn type_of_path(&self, item: &FnItem, segs: &[String]) -> Option<String> {
        let mut ty = self.root_type(item, segs.first()?)?;
        for seg in &segs[1..] {
            let seg = seg.trim_end_matches("[_]");
            match self.fields.get(&(ty.clone(), seg.to_string())) {
                Some(info) => ty = info.base_ty.clone(),
                None => return None,
            }
        }
        Some(ty)
    }

    /// Canonical identity for the lock behind `segs` (the receiver path of
    /// a `.lock()`-style call) inside `item`.
    ///
    /// `self.state` in `impl ClusterCoordinator` → `ClusterCoordinator.state`;
    /// `shared.queues[_]` with `shared: Arc<PoolShared>` →
    /// `PoolShared.queues[_]`; unresolvable roots are qualified by the
    /// function so distinct locals never alias across functions.
    pub fn resolve(&self, item: &FnItem, segs: &[String]) -> String {
        if segs.len() >= 2 {
            // Resolve the owner of the *last* segment (the lock field).
            let owner_segs = &segs[..segs.len() - 1];
            if let Some(owner_ty) = self.type_of_path(item, owner_segs) {
                return format!("{}.{}", owner_ty, segs[segs.len() - 1]);
            }
        }
        if segs.len() == 1 {
            if let Some(ty) = self.root_type(item, &segs[0]) {
                return format!("{}.{}", ty, segs[0]);
            }
        }
        format!("{}::{}", item.qual, segs.join("."))
    }
}

fn txt(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Reads the receiver path ending just before token `dot` (which must be
/// the `.` of a method call): returns path segments, innermost-first
/// reversed into source order. Indexing groups collapse to `[_]`; a call
/// group `(..)` ends the walk (method-call results are not named paths).
pub(crate) fn receiver_path(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut i = dot; // points at `.`
    loop {
        // Before the `.` there may be an index group to fold into the
        // previous segment.
        let mut suffix = String::new();
        let mut j = i; // token index just before `.`
        loop {
            if j == 0 {
                break;
            }
            let prev = j - 1;
            if txt(toks, prev) == "]" {
                // Scan back to the matching `[`.
                let mut depth = 1i64;
                let mut k = prev;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match txt(toks, k) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                suffix = format!("[_]{suffix}");
                j = k;
                continue;
            }
            break;
        }
        if j == 0 {
            break;
        }
        let name_idx = j - 1;
        let t = &toks[name_idx];
        if t.kind != TokKind::Ident || t.text == "await" {
            break;
        }
        segs.push(format!("{}{}", t.text, suffix));
        if name_idx == 0 {
            break;
        }
        match txt(toks, name_idx - 1) {
            "." => i = name_idx - 1,
            "::" => {
                // A path-qualified root (`Type::CONST.lock()`): fold the
                // qualifier into the root segment and stop.
                if name_idx >= 2 && toks[name_idx - 2].kind == TokKind::Ident {
                    let root = segs.pop().unwrap_or_default();
                    segs.push(format!("{}::{}", toks[name_idx - 2].text, root));
                }
                break;
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// True when the token at `i` opens an *empty* argument list `()`.
fn empty_args(toks: &[Tok], i: usize) -> bool {
    txt(toks, i) == "(" && txt(toks, i + 1) == ")"
}

/// Statement end: the next `;` at the current brace depth, or the end of
/// the enclosing block.
fn statement_end(toks: &[Tok], from: usize, block_end: usize) -> usize {
    let mut depth = 0i64;
    let mut i = from;
    while i < block_end {
        match txt(toks, i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    block_end
}

/// Statement start: walk back to just after the previous `;`, `{` or `}`
/// at the current depth.
pub(crate) fn statement_start(toks: &[Tok], from: usize, block_start: usize) -> usize {
    let mut depth = 0i64;
    let mut i = from;
    while i > block_start {
        let prev = i - 1;
        match txt(toks, prev) {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" if depth > 0 => depth -= 1,
            "(" | "[" | "{" => return i,
            ";" if depth == 0 => return i,
            _ => {}
        }
        i = prev;
    }
    block_start
}

/// End index of the block enclosing token `at` within the body
/// `[body_open, body_close]`: the matching `}` of the innermost `{`
/// containing `at`.
fn enclosing_block_end(toks: &[Tok], at: usize, body_open: usize, body_close: usize) -> usize {
    // Walk outward: find the innermost unmatched `{` before `at`.
    let mut depth = 0i64;
    let mut i = at;
    while i > body_open {
        let prev = i - 1;
        match txt(toks, prev) {
            "}" => depth += 1,
            "{" if depth > 0 => depth -= 1,
            "{" => return matching_idx(toks, prev).min(body_close),
            _ => {}
        }
        i = prev;
    }
    body_close
}

/// Computes the guard extent for a lock call at `[dot, close_paren]`.
///
/// Returns `(start, end)` token indexes the guard is live over.
fn guard_extent(
    toks: &[Tok],
    dot: usize,
    close_paren: usize,
    body_open: usize,
    body_close: usize,
) -> (usize, usize) {
    // Follow the method chain after the call: `.unwrap()`, `.expect(..)`,
    // `.unwrap_or_else(..)` preserve the guard; anything else consumes it
    // into a temporary.
    let mut chain_end = close_paren;
    let mut preserved = true;
    loop {
        if txt(toks, chain_end + 1) != "." {
            break;
        }
        let m = txt(toks, chain_end + 2);
        if txt(toks, chain_end + 3) != "(" {
            preserved = false;
            break;
        }
        let c = matching_idx(toks, chain_end + 3);
        if matches!(m, "unwrap" | "expect" | "unwrap_or_else") {
            chain_end = c;
        } else {
            preserved = false;
            break;
        }
    }

    let stmt_start = statement_start(toks, dot, body_open);
    let stmt_end = statement_end(toks, close_paren, body_close);

    // Binding detection.
    let mut bound: Option<String> = None;
    let mut binding_block_end = body_close;
    if txt(toks, stmt_start) == "let" {
        // `let [pattern] = ...` — find the bound name: the last ident
        // before `=` that is not a pattern keyword.
        let mut j = stmt_start + 1;
        let mut name = None;
        while j < dot && txt(toks, j) != "=" {
            if toks[j].kind == TokKind::Ident
                && !matches!(txt(toks, j), "mut" | "ref" | "Ok" | "Some" | "Err" | "None")
            {
                name = Some(toks[j].text.clone());
            }
            j += 1;
        }
        // The guard escapes into the binding when the chain preserved it,
        // or when the initializer is a block form (`match`/`if`) that the
        // lock call sits inside (e.g. the try-then-block-on upgrade
        // pattern in `TelemetryBus::publish`).
        let init_is_block = matches!(txt(toks, j + 1), "match" | "if");
        if preserved || init_is_block {
            bound = name;
            binding_block_end = enclosing_block_end(toks, stmt_start, body_open, body_close);
        }
    } else {
        // `if let Ok(g) = path.lock() {` / `while let ...` — guard lives
        // for the conditional's block.
        let is_cond_let =
            matches!(txt(toks, stmt_start), "if" | "while") && txt(toks, stmt_start + 1) == "let";
        if is_cond_let && preserved {
            // Find the block opened by this conditional: first `{` after
            // the chain at depth 0.
            let mut j = chain_end + 1;
            let mut depth = 0i64;
            while j < body_close {
                match txt(toks, j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth <= 0 => {
                        return (dot, matching_idx(toks, j).min(body_close));
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }

    match bound {
        Some(name) => {
            // Live until `drop(name)` in the same block, else block end.
            let mut j = stmt_end;
            while j < binding_block_end {
                if txt(toks, j) == "drop"
                    && txt(toks, j + 1) == "("
                    && txt(toks, j + 2) == name.as_str()
                    && txt(toks, j + 3) == ")"
                {
                    return (dot, j);
                }
                j += 1;
            }
            (dot, binding_block_end)
        }
        None => (dot, stmt_end),
    }
}

/// Builds the [`FnSummary`] for one function.
///
/// Argument groups of calls named `spawn` are skipped entirely: a closure
/// handed to `thread::Builder::spawn` runs on *another* thread, so its
/// blocking ops and calls must not be attributed to the spawning
/// function (the spawn call itself is still recorded).
pub fn summarize(toks: &[Tok], item: &FnItem, resolver: &LockResolver<'_>) -> FnSummary {
    let (open, close) = item.body;
    let mut out = FnSummary::default();
    if open >= close {
        return out;
    }
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "spawn" && txt(toks, i + 1) == "(" {
            if txt(toks, i.wrapping_sub(1)) == "." {
                let segs = receiver_path(toks, i - 1);
                let recv_ty = if segs.is_empty() {
                    None
                } else {
                    resolver.type_of_path(item, &segs)
                };
                out.calls.push(CallSite {
                    name: t.text.clone(),
                    recv_ty,
                    qual_ty: None,
                    tok: i,
                    line: t.line,
                });
            } else {
                let qual_ty = if txt(toks, i.wrapping_sub(1)) == "::"
                    && toks.get(i.wrapping_sub(2)).map(|t| t.kind) == Some(TokKind::Ident)
                {
                    Some(toks[i - 2].text.clone())
                } else {
                    None
                };
                out.calls.push(CallSite {
                    name: t.text.clone(),
                    recv_ty: None,
                    qual_ty,
                    tok: i,
                    line: t.line,
                });
            }
            i = matching_idx(toks, i + 1) + 1;
            continue;
        }
        if t.kind == TokKind::Ident && txt(toks, i.wrapping_sub(1)) == "." {
            let name = t.text.as_str();
            let is_blocking_acq = BLOCKING_ACQUIRE.contains(&name);
            let is_try_acq = TRY_ACQUIRE.contains(&name);
            if (is_blocking_acq || is_try_acq) && empty_args(toks, i + 1) {
                let segs = receiver_path(toks, i - 1);
                if !segs.is_empty() {
                    let lock = resolver.resolve(item, &segs);
                    let extent = guard_extent(toks, i - 1, i + 2, open, close);
                    out.acquires.push(Acquire {
                        lock,
                        tok: i,
                        line: t.line,
                        col: t.col,
                        blocking: is_blocking_acq,
                        extent,
                    });
                    i += 1;
                    continue;
                }
            }
            // Blocking operations.
            let block = match name {
                "send" if txt(toks, i + 1) == "(" && !empty_args(toks, i + 1) => {
                    Some(BlockKind::SendBounded)
                }
                "recv" if empty_args(toks, i + 1) => Some(BlockKind::Recv),
                "recv_timeout" if txt(toks, i + 1) == "(" => Some(BlockKind::Recv),
                "join" if empty_args(toks, i + 1) => Some(BlockKind::Join),
                "flush" if empty_args(toks, i + 1) => Some(BlockKind::Flush),
                "sync_all" if empty_args(toks, i + 1) => Some(BlockKind::Flush),
                "poll" if empty_args(toks, i + 1) => Some(BlockKind::Poll),
                _ => None,
            };
            if let Some(kind) = block {
                out.blocks.push(BlockSite {
                    kind,
                    recv_path: receiver_path(toks, i - 1),
                    tok: i,
                    line: t.line,
                    col: t.col,
                });
            }
            // `.await` postfix (reserved rule).
            if name == "await" {
                out.blocks.push(BlockSite {
                    kind: BlockKind::Await,
                    recv_path: Vec::new(),
                    tok: i,
                    line: t.line,
                    col: t.col,
                });
            }
            // Method call site.
            if txt(toks, i + 1) == "(" {
                let segs = receiver_path(toks, i - 1);
                let recv_ty = if segs.is_empty() {
                    None
                } else {
                    resolver.type_of_path(item, &segs)
                };
                out.calls.push(CallSite {
                    name: t.text.clone(),
                    recv_ty,
                    qual_ty: None,
                    tok: i,
                    line: t.line,
                });
            }
        } else if t.kind == TokKind::Ident
            && txt(toks, i + 1) == "("
            && txt(toks, i.wrapping_sub(1)) != "fn"
        {
            // Free or path-qualified call `foo(..)` / `Type::foo(..)`.
            let qual_ty = if txt(toks, i.wrapping_sub(1)) == "::"
                && toks.get(i.wrapping_sub(2)).map(|t| t.kind) == Some(TokKind::Ident)
            {
                Some(toks[i - 2].text.clone())
            } else {
                None
            };
            out.calls.push(CallSite {
                name: t.text.clone(),
                recv_ty: None,
                qual_ty,
                tok: i,
                line: t.line,
            });
        }
        i += 1;
    }
    out
}
