//! Channel topology: creation sites, boundedness, and which names alias
//! each channel's sender/receiver endpoints.
//!
//! Creation sites are `channel()` / `sync_channel(n)` (std `mpsc`) and
//! `bounded(n)` / `unbounded()` (crossbeam-style) calls. Endpoint aliases
//! start at the `let (tx, rx) = ctor(..)` destructuring and propagate two
//! ways the workspace actually uses:
//!
//! * **struct literals** in the creating function — `ShardHandle { tx, .. }`
//!   or `ShardCmd::Query { reply, .. }` make `(Type, field)` a global
//!   alias of the endpoint;
//! * **call arguments** — `run(id, &rx, ..)` makes the callee's matching
//!   parameter a local alias inside the callee.
//!
//! Lookups fall back to a *unique* bare-field-name match (`h.tx` where
//! `h`'s type is unknown but exactly one channel has a field alias named
//! `tx`); an ambiguous bare name resolves to nothing, so an unresolvable
//! send is never guessed bounded.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::parse::ParsedFile;
use crate::rules::matching_idx;
use std::collections::BTreeMap;

/// Which end of a channel an alias names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The sending half.
    Sender,
    /// The receiving half.
    Receiver,
}

/// An alias resolution: which channel, which end.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    /// Index into [`ChannelMap::sites`].
    pub chan: usize,
    /// Which half the alias names.
    pub role: Role,
}

/// One channel creation site (the report's channel inventory entry).
#[derive(Debug, Clone)]
pub struct ChannelSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line of the constructor call.
    pub line: u32,
    /// Constructor name (`channel`, `sync_channel`, `bounded`, `unbounded`).
    pub ctor: String,
    /// Whether sends can block (bounded capacity).
    pub bounded: bool,
    /// Capacity expression text for bounded channels.
    pub capacity: Option<String>,
}

/// The workspace channel topology.
#[derive(Debug, Default)]
pub struct ChannelMap {
    /// Creation sites, in (file, line) order of discovery.
    pub sites: Vec<ChannelSite>,
    /// `(file index, fn qual, local name)` → endpoint.
    local: BTreeMap<(usize, String, String), Endpoint>,
    /// `(owner type, field name)` → endpoint.
    global: BTreeMap<(String, String), Endpoint>,
}

fn txt(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Boundedness by constructor name; `None` for non-channel idents.
fn ctor_kind(name: &str) -> Option<bool> {
    match name {
        "bounded" | "sync_channel" => Some(true),
        "channel" | "unbounded" => Some(false),
        _ => None,
    }
}

impl ChannelMap {
    /// Registers a local endpoint alias inside `(file, fn_qual)`.
    pub fn add_local(&mut self, file: usize, fn_qual: &str, name: &str, ep: Endpoint) {
        self.local
            .insert((file, fn_qual.to_string(), name.to_string()), ep);
    }

    /// Registers a `(type, field)` global endpoint alias.
    pub fn add_global(&mut self, owner: &str, field: &str, ep: Endpoint) {
        self.global
            .insert((owner.to_string(), field.to_string()), ep);
    }

    /// Local alias lookup.
    pub fn local_of(&self, file: usize, fn_qual: &str, name: &str) -> Option<Endpoint> {
        self.local
            .get(&(file, fn_qual.to_string(), name.to_string()))
            .copied()
    }

    /// Resolves the receiver path of a send/recv site to an endpoint.
    ///
    /// `owner_ty` is the resolved base type of the path *minus its last
    /// segment* (when the lock/type resolver could follow it). Resolution
    /// order: fn-local alias, `(owner type, field)`, then a bare-name
    /// fallback that only fires when every field alias with that name
    /// agrees on the channel.
    pub fn resolve(
        &self,
        file: usize,
        fn_qual: &str,
        segs: &[String],
        owner_ty: Option<&str>,
    ) -> Option<Endpoint> {
        let last = segs.last()?;
        if segs.len() == 1 {
            if let Some(ep) = self.local_of(file, fn_qual, last) {
                return Some(ep);
            }
        }
        if let Some(owner) = owner_ty {
            if let Some(ep) = self.global.get(&(owner.to_string(), last.clone())) {
                return Some(*ep);
            }
        }
        let mut candidates = self
            .global
            .iter()
            .filter(|((_, f), _)| f == last)
            .map(|(_, ep)| *ep);
        let first = candidates.next()?;
        if candidates.all(|ep| ep.chan == first.chan) {
            Some(first)
        } else {
            None
        }
    }

    /// Whether `ep` belongs to a bounded channel.
    pub fn is_bounded(&self, ep: Endpoint) -> bool {
        self.sites.get(ep.chan).map(|s| s.bounded).unwrap_or(false)
    }
}

/// Scans one function body for channel constructors and `let (a, b) =`
/// destructurings, then for struct literals that promote local aliases to
/// `(type, field)` globals.
fn scan_fn(
    toks: &[Tok],
    file_idx: usize,
    rel: &str,
    fn_qual: &str,
    body: (usize, usize),
    map: &mut ChannelMap,
) {
    let (open, close) = body;
    if open >= close {
        return;
    }
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind == TokKind::Ident && !txt(toks, i + 1).is_empty() {
            if let Some(bounded) = ctor_kind(&t.text) {
                // Not a definition (`fn bounded`) and not a method call on
                // some unrelated receiver (`x.channel()`).
                let prev = txt(toks, i.wrapping_sub(1));
                if prev != "fn" && prev != "." {
                    // Optional turbofish, then the argument list.
                    let mut j = i + 1;
                    if txt(toks, j) == "::" && txt(toks, j + 1) == "<" {
                        let mut depth = 0i64;
                        j += 1;
                        while j < close {
                            match txt(toks, j) {
                                "<" => depth += 1,
                                ">" => depth -= 1,
                                _ => {}
                            }
                            j += 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    if txt(toks, j) == "(" {
                        let args_close = matching_idx(toks, j);
                        let capacity = if bounded && args_close > j + 1 {
                            Some(
                                toks[j + 1..args_close]
                                    .iter()
                                    .map(|t| t.text.as_str())
                                    .collect::<Vec<_>>()
                                    .join(" "),
                            )
                        } else {
                            None
                        };
                        let chan = map.sites.len();
                        map.sites.push(ChannelSite {
                            file: rel.to_string(),
                            line: t.line,
                            ctor: t.text.clone(),
                            bounded,
                            capacity,
                        });
                        // `let ( a , b ) = ctor(..)` endpoint binding.
                        let stmt = crate::locks::statement_start(toks, i, open);
                        if txt(toks, stmt) == "let"
                            && txt(toks, stmt + 1) == "("
                            && toks.get(stmt + 2).map(|t| t.kind) == Some(TokKind::Ident)
                            && txt(toks, stmt + 3) == ","
                            && toks.get(stmt + 4).map(|t| t.kind) == Some(TokKind::Ident)
                            && txt(toks, stmt + 5) == ")"
                        {
                            map.add_local(
                                file_idx,
                                fn_qual,
                                &toks[stmt + 2].text.clone(),
                                Endpoint {
                                    chan,
                                    role: Role::Sender,
                                },
                            );
                            map.add_local(
                                file_idx,
                                fn_qual,
                                &toks[stmt + 4].text.clone(),
                                Endpoint {
                                    chan,
                                    role: Role::Receiver,
                                },
                            );
                        }
                        i = args_close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }

    // Struct-literal promotion: `Type { field: alias, shorthand, .. }`
    // (including `Enum::Variant { .. }`, keyed by the enum name to match
    // the field tables).
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        let starts_upper = t.kind == TokKind::Ident
            && t.text
                .chars()
                .next()
                .map(char::is_uppercase)
                .unwrap_or(false);
        if starts_upper {
            let owner = t.text.clone();
            let mut j = i + 1;
            // `Enum::Variant` — the owner stays the first segment.
            while txt(toks, j) == "::" && toks.get(j + 1).map(|t| t.kind) == Some(TokKind::Ident) {
                j += 2;
            }
            if txt(toks, j) == "{" {
                let body_close = matching_idx(toks, j);
                let mut k = j + 1;
                let mut depth = 0i64;
                while k < body_close {
                    match txt(toks, k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                    if depth == 0 && toks[k].kind == TokKind::Ident {
                        let (field, value) = if txt(toks, k + 1) == ":"
                            && toks.get(k + 2).map(|t| t.kind) == Some(TokKind::Ident)
                            && matches!(txt(toks, k + 3), "," | "}")
                        {
                            (toks[k].text.clone(), toks[k + 2].text.clone())
                        } else if matches!(txt(toks, k + 1), "," | "}")
                            && matches!(txt(toks, k.wrapping_sub(1)), "{" | ",")
                        {
                            (toks[k].text.clone(), toks[k].text.clone())
                        } else {
                            k += 1;
                            continue;
                        };
                        if let Some(ep) = map.local_of(file_idx, fn_qual, &value) {
                            map.add_global(&owner, &field, ep);
                        }
                    }
                    k += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Builds the channel map over every analyzed file: constructor scan,
/// destructuring bindings, and struct-literal alias promotion. Call-arg
/// propagation needs the function index and is layered on by the driver
/// (see [`crate::callgraph`]).
pub fn build(files: &[(usize, &str, &Lexed, &ParsedFile)]) -> ChannelMap {
    let mut map = ChannelMap::default();
    for &(file_idx, rel, lexed, parsed) in files {
        for item in &parsed.fns {
            if item.in_test {
                continue;
            }
            scan_fn(&lexed.toks, file_idx, rel, &item.qual, item.body, &mut map);
        }
    }
    map
}
