#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # odalint — workspace static analysis for the ODA determinism contract
//!
//! The runtime's core guarantee — bit-identical `PipelineRun` /
//! `output_digest` replay at any worker count — is enforced dynamically by
//! replay digests and proptests. Those can only catch a nondeterminism
//! source once a seed happens to hit it. `odalint` enforces the invariants
//! *statically*, at the source level, before any test runs:
//!
//! * **determinism** — no wall-clock, ambient environment, unseeded RNG,
//!   or `HashMap`/`HashSet` in the digest-bearing crates;
//! * **panic-safety** — no `unwrap()`/`expect()`/direct indexing on the
//!   capability-execution, bus, and store hot paths;
//! * **float-soundness** — no `==`/`!=` against float literals, no
//!   `partial_cmp().unwrap()`;
//! * **unsafe-audit** — every `unsafe` carries a `// SAFETY:` comment and
//!   every crate without unsafe declares `#![forbid(unsafe_code)]`;
//! * **API-hygiene** — the removed pre-0.2 delegate APIs stay removed.
//!
//! Rules are deny-by-default. Intentional exceptions use the inline escape
//! hatch on (or on the line above) the flagged line:
//!
//! ```text
//! // odalint: allow(wall-clock) -- feeds scheduling telemetry only
//! ```
//!
//! or a file-scoped entry in the committed `odalint.allow` at the repo
//! root. Both *must* carry a justification and *must* suppress at least
//! one real finding — stale allows are themselves violations
//! (`allow-hygiene`), so the allowlist can only shrink or stay honest.

pub mod callgraph;
pub mod channels;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod report;
pub mod rules;

use rules::{FileClass, Finding};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed file-scoped allowlist at the workspace root.
pub const ALLOWLIST_FILE: &str = "odalint.allow";
/// Default report path, relative to the workspace root.
pub const REPORT_FILE: &str = "LINT_report.json";
/// Tool version stamped into the report (kept literal for byte-stability).
pub const VERSION: &str = "0.1.0";

/// Scope configuration: which files the per-scope rule families apply to.
///
/// Paths are workspace-root-relative with `/` separators.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes of digest-bearing code (determinism rules).
    pub digest_prefixes: Vec<String>,
    /// Exact files forming the capability/bus/store hot paths (panic rules).
    pub hot_path_files: Vec<String>,
    /// Path prefixes of vendored shims (only unsafe-audit rules apply).
    pub shim_prefixes: Vec<String>,
    /// Path prefixes never scanned at all.
    pub skip_prefixes: Vec<String>,
    /// File-scoped allow entries (usually parsed from [`ALLOWLIST_FILE`]).
    pub allowlist: Vec<AllowEntry>,
}

impl Config {
    /// The scope map for this workspace.
    pub fn workspace_default() -> Self {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            digest_prefixes: s(&[
                "crates/core/src/",
                "crates/analytics/src/",
                "crates/telemetry/src/",
            ]),
            hot_path_files: s(&[
                "crates/core/src/capability.rs",
                "crates/core/src/pipeline.rs",
                "crates/core/src/runtime.rs",
                "crates/telemetry/src/bus.rs",
                "crates/telemetry/src/cluster/coordinator.rs",
                "crates/telemetry/src/cluster/placement.rs",
                "crates/telemetry/src/cluster/shard.rs",
                "crates/telemetry/src/query.rs",
                "crates/telemetry/src/store.rs",
                "crates/telemetry/src/storage/mod.rs",
                "crates/telemetry/src/storage/engine.rs",
                "crates/telemetry/src/storage/wal.rs",
                "crates/serve/src/cache.rs",
                "crates/serve/src/fanout.rs",
                "crates/serve/src/http.rs",
                "crates/serve/src/net.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/tenant.rs",
            ]),
            shim_prefixes: s(&["shims/"]),
            skip_prefixes: s(&[
                "target/",
                ".git/",
                "crates/lint/tests/fixtures/",
                "experiments_out/",
            ]),
            allowlist: Vec::new(),
        }
    }

    fn classify(&self, rel: &str) -> FileClass {
        FileClass {
            digest: self.digest_prefixes.iter().any(|p| rel.starts_with(p)),
            hot: self.hot_path_files.iter().any(|p| p == rel),
            test_file: rel.starts_with("tests/") || rel.contains("/tests/"),
            shim: self.shim_prefixes.iter().any(|p| rel.starts_with(p)),
        }
    }
}

/// One file-scoped allowlist entry: `<rule> <path> -- <justification>`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id being allowed.
    pub rule: String,
    /// Workspace-relative file the allow applies to.
    pub file: String,
    /// Mandatory human justification.
    pub justification: String,
    /// Line in [`ALLOWLIST_FILE`] (for allow-hygiene diagnostics).
    pub line: u32,
}

/// A confirmed violation (no allow matched).
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

/// A finding that an inline or file-scoped allow suppressed.
#[derive(Debug, Clone)]
pub struct Allowed {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line of the suppressed finding.
    pub line: u32,
    /// Justification carried by the allow.
    pub justification: String,
}

/// An `unsafe` occurrence, workspace-qualified.
#[derive(Debug, Clone)]
pub struct InventoryEntry {
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Whether a `// SAFETY:` comment covers it.
    pub safety_comment: bool,
}

/// The cross-procedural analysis artifacts exported in the v2 report's
/// `concurrency` section.
#[derive(Debug, Default)]
pub struct ConcurrencySummary {
    /// The full lock-acquisition-order edge list (cycles are violations;
    /// the acyclic remainder documents the workspace's lock hierarchy).
    pub lock_order_edges: Vec<callgraph::LockOrderEdge>,
    /// Every channel creation site with boundedness.
    pub channels: Vec<channels::ChannelSite>,
}

/// Result of linting a whole workspace (or one file via [`lint_source`]).
#[derive(Debug, Default)]
pub struct Outcome {
    /// Unallowed findings, sorted by (file, line, col, rule).
    pub violations: Vec<Violation>,
    /// Findings suppressed by a justified allow.
    pub allowed: Vec<Allowed>,
    /// Every `unsafe` in the tree.
    pub unsafe_inventory: Vec<InventoryEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Allowlist entries with their used-flag resolved.
    pub allowlist_used: Vec<(AllowEntry, bool)>,
    /// [`ALLOWLIST_FILE`] line numbers of entries that fired.
    pub allowlist_hits: Vec<u32>,
    /// Lock-order edges and channel inventory from the concurrency pass.
    pub concurrency: ConcurrencySummary,
}

impl Outcome {
    fn sort(&mut self) {
        let key = |v: &Violation| (v.file.clone(), v.line, v.col, v.rule.clone());
        self.violations.sort_by_key(key);
        self.allowed
            .sort_by_key(|a| (a.file.clone(), a.line, a.rule.clone()));
        self.unsafe_inventory
            .sort_by_key(|u| (u.file.clone(), u.line, u.col));
    }
}

/// An inline `// odalint: allow(<rule>) -- <justification>` comment.
#[derive(Debug)]
struct InlineAllow {
    rule: String,
    justification: String,
    /// Line the comment sits on.
    line: u32,
    /// Lines a finding may sit on for this allow to apply.
    targets: Vec<u32>,
    used: bool,
    malformed: Option<&'static str>,
}

/// Parses inline allows out of a file's comments.
fn parse_inline_allows(lexed: &lexer::Lexed) -> Vec<InlineAllow> {
    let code_lines = lexed.code_lines();
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Doc comments are prose (rule documentation quotes the allow
        // syntax); only plain `//` / `/*` comments can carry an allow.
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") {
            continue;
        }
        let Some(at) = c.text.find("odalint:") else {
            continue;
        };
        let rest = c.text[at + "odalint:".len()..].trim_start();
        let mut allow = InlineAllow {
            rule: String::new(),
            justification: String::new(),
            line: c.line,
            targets: vec![c.line],
            used: false,
            malformed: None,
        };
        if !c.trailing {
            // A whole-line allow covers the next line that has code.
            if let Some(&next) = code_lines.iter().find(|&&l| l > c.line) {
                allow.targets.push(next);
            }
        }
        let ok = rest.strip_prefix("allow(").and_then(|r| {
            let close = r.find(')')?;
            let rule = r[..close].trim().to_string();
            let tail = r[close + 1..].trim();
            let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
            Some((rule, justification.to_string()))
        });
        match ok {
            Some((rule, j)) if !rule.is_empty() && !j.is_empty() => {
                allow.rule = rule;
                allow.justification = j;
            }
            Some(_) => allow.malformed = Some("missing rule or `-- <justification>`"),
            None => allow.malformed = Some("expected `odalint: allow(<rule>) -- <justification>`"),
        }
        out.push(allow);
    }
    out
}

/// Lints one in-memory source file. Inline allows are honoured; the
/// file-scoped allowlist in `cfg` is honoured too. This is the unit the
/// fixture tests drive directly. The concurrency rules run over the
/// single file (a one-file workspace).
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Outcome {
    lint_sources(&[(rel, src)], cfg)
}

/// Lints a set of in-memory source files as one workspace: per-file
/// pattern rules, then the cross-procedural concurrency analysis over
/// every non-shim, non-test file, then allow application over the merged
/// findings (so an inline allow can suppress an interprocedural finding
/// landing on its line).
pub fn lint_sources(files: &[(&str, &str)], cfg: &Config) -> Outcome {
    let mut out = Outcome {
        files_scanned: files.len(),
        ..Outcome::default()
    };

    // Pass 1: lex, classify, pattern-scan, parse.
    let mut lexed_files = Vec::with_capacity(files.len());
    for (rel, src) in files {
        let lexed = lexer::lex(src);
        let class = cfg.classify(rel);
        lexed_files.push((*rel, lexed, class));
    }
    let mut findings_per_file: Vec<Vec<Finding>> = Vec::with_capacity(files.len());
    let mut unsafe_per_file = Vec::with_capacity(files.len());
    for (_, lexed, class) in &lexed_files {
        let (findings, unsafe_sites) = rules::scan(lexed, *class);
        findings_per_file.push(findings);
        unsafe_per_file.push(unsafe_sites);
    }

    // Pass 2: concurrency analysis over the eligible files.
    let parsed: Vec<Option<parse::ParsedFile>> = lexed_files
        .iter()
        .map(|(_, lexed, class)| {
            if class.shim || class.test_file {
                None
            } else {
                Some(parse::parse(lexed))
            }
        })
        .collect();
    let inputs: Vec<(usize, &str, &lexer::Lexed, &parse::ParsedFile)> = lexed_files
        .iter()
        .zip(parsed.iter())
        .enumerate()
        .filter_map(|(i, ((rel, lexed, _), p))| p.as_ref().map(|p| (i, *rel, lexed, p)))
        .collect();
    let analysis = callgraph::analyze(&inputs);
    for (file_id, f) in analysis.findings {
        findings_per_file[file_id].push(f);
    }
    out.concurrency = ConcurrencySummary {
        lock_order_edges: analysis.edges,
        channels: analysis.channels,
    };

    // Pass 3: allow application and allow hygiene, per file.
    for (i, (rel, lexed, _)) in lexed_files.iter().enumerate() {
        let mut allows = parse_inline_allows(lexed);
        let findings = std::mem::take(&mut findings_per_file[i]);
        let hits = apply_allows(rel, findings, &mut allows, cfg, &mut out);
        out.allowlist_hits.extend(hits);
        for a in &allows {
            if let Some(why) = a.malformed {
                out.violations.push(Violation {
                    rule: "allow-hygiene".into(),
                    file: (*rel).into(),
                    line: a.line,
                    col: 1,
                    message: format!("malformed odalint allow: {why}"),
                });
            } else if !a.used {
                out.violations.push(Violation {
                    rule: "allow-hygiene".into(),
                    file: (*rel).into(),
                    line: a.line,
                    col: 1,
                    message: format!("allow({}) suppresses nothing — remove it", a.rule),
                });
            }
        }
        for u in std::mem::take(&mut unsafe_per_file[i]) {
            out.unsafe_inventory.push(InventoryEntry {
                file: (*rel).into(),
                line: u.line,
                col: u.col,
                safety_comment: u.safety_comment,
            });
        }
    }
    out.sort();
    out
}

/// Routes each finding to violations or allowed, consuming allows.
/// Returns the [`ALLOWLIST_FILE`] line numbers of entries that fired.
fn apply_allows(
    rel: &str,
    findings: Vec<Finding>,
    allows: &mut [InlineAllow],
    cfg: &Config,
    out: &mut Outcome,
) -> Vec<u32> {
    let mut hits = Vec::new();
    for f in findings {
        if let Some(a) = allows
            .iter_mut()
            .find(|a| a.malformed.is_none() && a.rule == f.rule && a.targets.contains(&f.line))
        {
            a.used = true;
            out.allowed.push(Allowed {
                rule: f.rule.into(),
                file: rel.into(),
                line: f.line,
                justification: a.justification.clone(),
            });
            continue;
        }
        if let Some(e) = cfg
            .allowlist
            .iter()
            .find(|e| e.rule == f.rule && e.file == rel)
        {
            hits.push(e.line);
            out.allowed.push(Allowed {
                rule: f.rule.into(),
                file: rel.into(),
                line: f.line,
                justification: e.justification.clone(),
            });
            continue;
        }
        out.violations.push(Violation {
            rule: f.rule.into(),
            file: rel.into(),
            line: f.line,
            col: f.col,
            message: f.message,
        });
    }
    hits
}

/// Parses [`ALLOWLIST_FILE`] content. Format, one entry per line:
///
/// ```text
/// # comment
/// <rule> <path> -- <justification>
/// ```
pub fn parse_allowlist(content: &str) -> Result<Vec<AllowEntry>, String> {
    let known: Vec<&str> = rules::RULES.iter().map(|r| r.id).collect();
    let mut out = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = (i + 1) as u32;
        let (head, justification) = line
            .split_once(" -- ")
            .ok_or_else(|| format!("{ALLOWLIST_FILE}:{lineno}: missing ` -- <justification>`"))?;
        let mut parts = head.split_whitespace();
        let (rule, file) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(f), None) => (r, f),
            _ => {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{lineno}: expected `<rule> <path> -- <justification>`"
                ))
            }
        };
        if !known.contains(&rule) {
            return Err(format!("{ALLOWLIST_FILE}:{lineno}: unknown rule `{rule}`"));
        }
        if justification.trim().is_empty() {
            return Err(format!("{ALLOWLIST_FILE}:{lineno}: empty justification"));
        }
        out.push(AllowEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            justification: justification.trim().to_string(),
            line: lineno,
        });
    }
    Ok(out)
}

/// Collects every `.rs` file under `root` (sorted, workspace-relative,
/// `/`-separated), honouring `skip_prefixes`.
fn collect_rs_files(root: &Path, cfg: &Config) -> io::Result<Vec<(String, PathBuf)>> {
    let mut stack = vec![root.to_path_buf()];
    let mut out = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let is_dir = entry.file_type()?.is_dir();
            let prefix_probe = if is_dir {
                format!("{rel}/")
            } else {
                rel.clone()
            };
            if cfg
                .skip_prefixes
                .iter()
                .any(|p| prefix_probe.starts_with(p))
            {
                continue;
            }
            if is_dir {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The crate dir a file belongs to: longest `<dir>` with `<dir>/src/lib.rs`
/// among `lib_roots` that prefixes the file, else the root crate `""`.
fn crate_of<'a>(rel: &str, crate_dirs: &'a [String]) -> &'a str {
    crate_dirs
        .iter()
        .filter(|d| !d.is_empty() && rel.starts_with(&format!("{d}/")))
        .max_by_key(|d| d.len())
        .map(String::as_str)
        .unwrap_or("")
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Outcome> {
    let files = collect_rs_files(root, cfg)?;
    let mut out = Outcome::default();
    let mut crate_dirs: Vec<String> = files
        .iter()
        .filter_map(|(rel, _)| rel.strip_suffix("/src/lib.rs").map(str::to_string))
        .collect();
    if files.iter().any(|(rel, _)| rel == "src/lib.rs") {
        crate_dirs.push(String::new());
    }
    crate_dirs.sort();

    let mut crate_unsafe: BTreeMap<String, bool> = BTreeMap::new();
    let mut crate_root_toks: BTreeMap<String, lexer::Lexed> = BTreeMap::new();
    let mut allowlist_hits: BTreeMap<u32, bool> = BTreeMap::new();
    for e in &cfg.allowlist {
        allowlist_hits.insert(e.line, false);
    }

    // Read everything up front: the concurrency pass needs the whole
    // workspace at once (call edges and channel aliases cross files).
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, path) in &files {
        sources.push((rel.clone(), fs::read_to_string(path)?));
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, src)| (rel.as_str(), src.as_str()))
        .collect();
    let mut all = lint_sources(&refs, cfg);
    for line in &all.allowlist_hits {
        allowlist_hits.insert(*line, true);
    }
    for (rel, src) in &sources {
        let crate_dir = crate_of(rel, &crate_dirs).to_string();
        let has_unsafe = all.unsafe_inventory.iter().any(|u| &u.file == rel);
        *crate_unsafe.entry(crate_dir.clone()).or_insert(false) |= has_unsafe;
        let lib_rel = if crate_dir.is_empty() {
            "src/lib.rs".to_string()
        } else {
            format!("{crate_dir}/src/lib.rs")
        };
        if *rel == lib_rel {
            crate_root_toks.insert(crate_dir, lexer::lex(src));
        }
    }
    out.files_scanned = all.files_scanned;
    out.violations.append(&mut all.violations);
    out.allowed.append(&mut all.allowed);
    out.unsafe_inventory.append(&mut all.unsafe_inventory);
    out.concurrency = all.concurrency;

    // forbid-unsafe: crate-level policy check on each crate root.
    for (crate_dir, lexed) in &crate_root_toks {
        let has_unsafe = crate_unsafe.get(crate_dir).copied().unwrap_or(false);
        let texts: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        let has_attr = |word: &str| {
            texts
                .windows(3)
                .any(|w| w[0] == word && w[1] == "(" && w[2] == "unsafe_code")
        };
        let lib_rel = if crate_dir.is_empty() {
            "src/lib.rs".to_string()
        } else {
            format!("{crate_dir}/src/lib.rs")
        };
        let finding = if !has_unsafe && !has_attr("forbid") {
            Some("crate has no unsafe code but lib.rs lacks #![forbid(unsafe_code)]")
        } else if has_unsafe && !has_attr("deny") && !has_attr("forbid") {
            Some("crate contains unsafe code but lib.rs lacks #![deny(unsafe_code)]")
        } else {
            None
        };
        if let Some(msg) = finding {
            let f = Finding {
                rule: "forbid-unsafe",
                line: 1,
                col: 1,
                message: msg.to_owned(),
            };
            // File-scoped allowlist still applies (no inline form here).
            for line in apply_allows(&lib_rel, vec![f], &mut [], cfg, &mut out) {
                allowlist_hits.insert(line, true);
            }
        }
    }

    // allow-hygiene over the file-scoped allowlist: stale entries fail.
    for e in &cfg.allowlist {
        let used = allowlist_hits.get(&e.line).copied().unwrap_or(false);
        out.allowlist_used.push((e.clone(), used));
        if !used {
            out.violations.push(Violation {
                rule: "allow-hygiene".into(),
                file: ALLOWLIST_FILE.into(),
                line: e.line,
                col: 1,
                message: format!(
                    "allowlist entry `{} {}` suppresses nothing — remove it",
                    e.rule, e.file
                ),
            });
        }
    }

    out.sort();
    Ok(out)
}
