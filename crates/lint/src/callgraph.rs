//! The intra-workspace call graph and the cross-procedural concurrency
//! rules built on top of it.
//!
//! Call edges are resolved heuristically, in strictness order: receiver
//! type + method name (from the field/param tables), explicit
//! `Type::method` qualifiers, same-file free functions, then a
//! workspace-unique bare name. An ambiguous callee resolves to *nothing*
//! — a missing edge can only lose a finding, never invent one.
//!
//! Two interprocedural fixpoints feed the rules:
//!
//! * `locks_in(f)` — every lock `f` may blocking-acquire, transitively,
//!   with a witness call chain (drives `lock-order` edges and cycles);
//! * `blocks_in(f)` — every blocking operation `f` may perform,
//!   transitively (drives `guard-across-blocking` through calls).

use crate::channels::{self, ChannelMap, ChannelSite, Role};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::locks::{self, BlockKind, FnSummary, LockResolver};
use crate::parse::{FieldInfo, FnItem, ParsedFile};
use crate::rules::{matching_idx, Finding};
use std::collections::BTreeMap;

/// One edge of the interprocedural lock-acquisition-order graph:
/// a guard on `from` was live while `to` was acquired.
#[derive(Debug, Clone)]
pub struct LockOrderEdge {
    /// Lock held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File of the acquisition site (direct) or call site (indirect).
    pub file: String,
    /// 1-indexed line of that site.
    pub line: u32,
    /// Witness call chain, `holder -> callee -> acquirer`.
    pub via: String,
}

/// Everything the concurrency analysis produces.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Rule findings, keyed by the caller-supplied file id.
    pub findings: Vec<(usize, Finding)>,
    /// The full lock-order edge list (reported even when acyclic).
    pub edges: Vec<LockOrderEdge>,
    /// Channel inventory.
    pub channels: Vec<ChannelSite>,
}

/// A blocking-op witness: where it happens and through which calls.
#[derive(Debug, Clone)]
struct Witness {
    /// Call chain of fn quals, caller first.
    chain: Vec<String>,
    /// File of the ultimate site.
    file: String,
    /// 1-indexed line of the ultimate site.
    line: u32,
}

struct Node<'a> {
    /// Caller-supplied file id (for finding attribution).
    file_id: usize,
    /// Position in the input slice (for channel-alias scoping).
    file_pos: usize,
    rel: &'a str,
    toks: &'a [Tok],
    item: &'a FnItem,
    summary: FnSummary,
}

fn uniq(v: Option<&Vec<usize>>) -> Option<usize> {
    match v {
        Some(v) if v.len() == 1 => v.first().copied(),
        _ => None,
    }
}

struct Index {
    by_method: BTreeMap<(String, String), Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
    free_in_file: BTreeMap<(usize, String), Vec<usize>>,
}

impl Index {
    fn build(nodes: &[Node<'_>]) -> Index {
        let mut by_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_in_file: BTreeMap<(usize, String), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.item.name.clone()).or_default().push(i);
            match &n.item.self_ty {
                Some(ty) => by_method
                    .entry((ty.clone(), n.item.name.clone()))
                    .or_default()
                    .push(i),
                None => free_in_file
                    .entry((n.file_pos, n.item.name.clone()))
                    .or_default()
                    .push(i),
            }
        }
        Index {
            by_method,
            by_name,
            free_in_file,
        }
    }

    /// Resolves a call site from `caller_pos` to a node index, or `None`
    /// when ambiguous/unknown.
    fn resolve(
        &self,
        caller_pos: usize,
        name: &str,
        recv_ty: Option<&str>,
        qual_ty: Option<&str>,
    ) -> Option<usize> {
        if let Some(ty) = recv_ty {
            return uniq(self.by_method.get(&(ty.to_string(), name.to_string())));
        }
        if let Some(ty) = qual_ty {
            return uniq(self.by_method.get(&(ty.to_string(), name.to_string())));
        }
        if let Some(i) = uniq(self.free_in_file.get(&(caller_pos, name.to_string()))) {
            return Some(i);
        }
        uniq(self.by_name.get(name))
    }
}

fn txt(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Propagates channel-endpoint aliases through call arguments:
/// `run(id, &rx, ..)` gives `run`'s second parameter the alias of `rx`.
/// Scans raw body tokens (closures handed to `spawn` included — that is
/// exactly how worker loops receive their receivers).
fn propagate_call_args(nodes: &[Node<'_>], index: &Index, chans: &mut ChannelMap) {
    for _round in 0..3 {
        let mut changed = false;
        for n in nodes {
            let (open, close) = n.item.body;
            if open >= close {
                continue;
            }
            let toks = n.toks;
            let mut i = open + 1;
            while i < close {
                let is_call = toks[i].kind == TokKind::Ident
                    && txt(toks, i + 1) == "("
                    && txt(toks, i.wrapping_sub(1)) != "fn"
                    && txt(toks, i.wrapping_sub(1)) != ".";
                if !is_call {
                    i += 1;
                    continue;
                }
                let qual_ty = if txt(toks, i.wrapping_sub(1)) == "::"
                    && toks.get(i.wrapping_sub(2)).map(|t| t.kind) == Some(TokKind::Ident)
                {
                    Some(toks[i - 2].text.clone())
                } else {
                    None
                };
                let Some(callee) =
                    index.resolve(n.file_pos, &toks[i].text, None, qual_ty.as_deref())
                else {
                    i += 1;
                    continue;
                };
                let args_close = matching_idx(toks, i + 1);
                // Split the argument list on top-level commas.
                let mut arg_pos = 0usize;
                let mut j = i + 2;
                let mut arg_start = j;
                while j <= args_close {
                    let end_of_arg = j == args_close || {
                        match txt(toks, j) {
                            "(" | "[" | "{" => {
                                j = matching_idx(toks, j);
                                false
                            }
                            "," => true,
                            _ => false,
                        }
                    };
                    if end_of_arg {
                        // `[&[mut]] name` exactly.
                        let mut p = arg_start;
                        while p < j && matches!(txt(toks, p), "&" | "&&" | "mut") {
                            p += 1;
                        }
                        if p + 1 == j && toks[p].kind == TokKind::Ident {
                            if let Some(ep) =
                                chans.local_of(n.file_pos, &n.item.qual, &toks[p].text)
                            {
                                let cn = &nodes[callee];
                                if let Some(param) = cn.item.params.get(arg_pos) {
                                    if chans
                                        .local_of(cn.file_pos, &cn.item.qual, &param.name)
                                        .is_none()
                                    {
                                        chans.add_local(
                                            cn.file_pos,
                                            &cn.item.qual,
                                            &param.name,
                                            ep,
                                        );
                                        changed = true;
                                    }
                                }
                            }
                        }
                        arg_pos += 1;
                        arg_start = j + 1;
                    }
                    j += 1;
                }
                i += 1;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Kind set of a blocks_in entry rendered for diagnostics.
fn kinds_of(map: &BTreeMap<BlockKind, Witness>) -> String {
    map.keys().map(|k| k.name()).collect::<Vec<_>>().join(", ")
}

/// Runs the whole concurrency analysis over the eligible files.
///
/// Input tuples are `(file id, rel path, lexed, parsed)`; the file id is
/// echoed back on findings so the driver can route them to the right
/// file's allow handling.
pub fn analyze(files: &[(usize, &str, &Lexed, &ParsedFile)]) -> Analysis {
    // Merged field tables: `(type, field)` collisions across files are
    // last-writer-wins, which is fine for a heuristic resolver.
    let mut fields: BTreeMap<(String, String), FieldInfo> = BTreeMap::new();
    for (_, _, _, parsed) in files {
        for (k, v) in &parsed.fields {
            fields.insert(k.clone(), v.clone());
        }
    }
    let resolver = LockResolver { fields: &fields };

    let mut nodes: Vec<Node<'_>> = Vec::new();
    for (pos, &(file_id, rel, lexed, parsed)) in files.iter().enumerate() {
        for item in &parsed.fns {
            if item.in_test {
                continue;
            }
            nodes.push(Node {
                file_id,
                file_pos: pos,
                rel,
                toks: &lexed.toks,
                item,
                summary: locks::summarize(&lexed.toks, item, &resolver),
            });
        }
    }
    let index = Index::build(&nodes);

    // Channel topology: ctor scan + struct-literal promotion, then
    // call-argument propagation over the call graph.
    let inputs: Vec<(usize, &str, &Lexed, &ParsedFile)> = files
        .iter()
        .enumerate()
        .map(|(pos, &(_, rel, lexed, parsed))| (pos, rel, lexed, parsed))
        .collect();
    let mut chans = channels::build(&inputs);
    propagate_call_args(&nodes, &index, &mut chans);

    // Resolve every call site once.
    let resolved: Vec<Vec<(usize, usize)>> = nodes
        .iter()
        .map(|n| {
            n.summary
                .calls
                .iter()
                .enumerate()
                .filter_map(|(ci, c)| {
                    index
                        .resolve(
                            n.file_pos,
                            &c.name,
                            c.recv_ty.as_deref(),
                            c.qual_ty.as_deref(),
                        )
                        .map(|callee| (ci, callee))
                })
                .collect()
        })
        .collect();

    // Resolve every send/recv block site to a channel endpoint.
    let block_endpoints: Vec<Vec<Option<channels::Endpoint>>> = nodes
        .iter()
        .map(|n| {
            n.summary
                .blocks
                .iter()
                .map(|b| {
                    if b.recv_path.is_empty() {
                        return None;
                    }
                    let owner_ty = if b.recv_path.len() >= 2 {
                        resolver.type_of_path(n.item, &b.recv_path[..b.recv_path.len() - 1])
                    } else {
                        None
                    };
                    chans.resolve(n.file_pos, &n.item.qual, &b.recv_path, owner_ty.as_deref())
                })
                .collect()
        })
        .collect();

    // A direct block site "counts" when it can actually block: sends only
    // on channels proven bounded, everything else unconditionally.
    let site_blocks = |ni: usize, bi: usize| -> Option<BlockKind> {
        let b = &nodes[ni].summary.blocks[bi];
        match b.kind {
            BlockKind::SendBounded => match block_endpoints[ni][bi] {
                Some(ep) if chans.is_bounded(ep) => Some(BlockKind::SendBounded),
                _ => None,
            },
            BlockKind::Await => None, // handled by its own rule, not propagated
            k => Some(k),
        }
    };

    // ---- fixpoint: transitive blocking lock acquisitions ----------------
    let mut locks_in: Vec<BTreeMap<String, Witness>> = nodes
        .iter()
        .map(|n| {
            let mut m = BTreeMap::new();
            for a in &n.summary.acquires {
                if a.blocking {
                    m.entry(a.lock.clone()).or_insert(Witness {
                        chain: vec![n.item.qual.clone()],
                        file: n.rel.to_string(),
                        line: a.line,
                    });
                }
            }
            m
        })
        .collect();
    loop {
        let mut changed = false;
        for ni in 0..nodes.len() {
            for &(_, callee) in &resolved[ni] {
                if callee == ni {
                    continue;
                }
                let additions: Vec<(String, Witness)> = locks_in[callee]
                    .iter()
                    .filter(|(lock, _)| !locks_in[ni].contains_key(*lock))
                    .map(|(lock, w)| {
                        let mut chain = vec![nodes[ni].item.qual.clone()];
                        chain.extend(w.chain.iter().cloned());
                        (
                            lock.clone(),
                            Witness {
                                chain,
                                file: w.file.clone(),
                                line: w.line,
                            },
                        )
                    })
                    .collect();
                if !additions.is_empty() {
                    changed = true;
                    locks_in[ni].extend(additions);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- fixpoint: transitive blocking operations -----------------------
    let mut blocks_in: Vec<BTreeMap<BlockKind, Witness>> = nodes
        .iter()
        .enumerate()
        .map(|(ni, n)| {
            let mut m = BTreeMap::new();
            for bi in 0..n.summary.blocks.len() {
                if let Some(kind) = site_blocks(ni, bi) {
                    let b = &n.summary.blocks[bi];
                    m.entry(kind).or_insert(Witness {
                        chain: vec![n.item.qual.clone()],
                        file: n.rel.to_string(),
                        line: b.line,
                    });
                }
            }
            m
        })
        .collect();
    loop {
        let mut changed = false;
        for ni in 0..nodes.len() {
            for &(_, callee) in &resolved[ni] {
                if callee == ni {
                    continue;
                }
                let additions: Vec<(BlockKind, Witness)> = blocks_in[callee]
                    .iter()
                    .filter(|(kind, _)| !blocks_in[ni].contains_key(*kind))
                    .map(|(kind, w)| {
                        let mut chain = vec![nodes[ni].item.qual.clone()];
                        chain.extend(w.chain.iter().cloned());
                        (
                            *kind,
                            Witness {
                                chain,
                                file: w.file.clone(),
                                line: w.line,
                            },
                        )
                    })
                    .collect();
                if !additions.is_empty() {
                    changed = true;
                    blocks_in[ni].extend(additions);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Analysis {
        channels: chans.sites.clone(),
        ..Analysis::default()
    };

    // ---- lock-order edges ----------------------------------------------
    // Self-edges are skipped by design: indexed lock arrays
    // (`shards[_]`) normalize to one identity, so `A -> A` would flag
    // every sharded structure that touches two slots.
    struct EdgeInfo {
        file_id: usize,
        file: String,
        line: u32,
        col: u32,
        via: String,
    }
    let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
    for (ni, n) in nodes.iter().enumerate() {
        for a in &n.summary.acquires {
            let (start, end) = a.extent;
            for b in &n.summary.acquires {
                if b.tok > a.tok && b.tok > start && b.tok < end && b.lock != a.lock {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert(EdgeInfo {
                            file_id: n.file_id,
                            file: n.rel.to_string(),
                            line: b.line,
                            col: b.col,
                            via: n.item.qual.clone(),
                        });
                }
            }
            for (ci, callee) in &resolved[ni] {
                let c = &n.summary.calls[*ci];
                if c.tok <= a.tok || c.tok <= start || c.tok >= end {
                    continue;
                }
                for (lock, w) in &locks_in[*callee] {
                    if *lock == a.lock {
                        continue;
                    }
                    let mut chain = vec![n.item.qual.clone()];
                    chain.extend(w.chain.iter().cloned());
                    edges
                        .entry((a.lock.clone(), lock.clone()))
                        .or_insert(EdgeInfo {
                            file_id: n.file_id,
                            file: n.rel.to_string(),
                            line: c.line,
                            col: n.toks.get(c.tok).map(|t| t.col).unwrap_or(1),
                            via: chain.join(" -> "),
                        });
                }
            }
        }
    }
    for ((from, to), info) in &edges {
        out.edges.push(LockOrderEdge {
            from: from.clone(),
            to: to.clone(),
            file: info.file.clone(),
            line: info.line,
            via: info.via.clone(),
        });
    }

    // ---- rule: lock-order (cycle detection) -----------------------------
    let adj: BTreeMap<&String, Vec<&String>> = {
        let mut m: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            m.entry(from).or_default().push(to);
        }
        m
    };
    // BFS path from -> to over edges; returns the edge sequence.
    let path = |from: &String, to: &String| -> Option<Vec<(String, String)>> {
        let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            if u == to {
                let mut rev = Vec::new();
                let mut cur = u;
                while cur != from {
                    let p = prev[cur];
                    rev.push((p.clone(), cur.clone()));
                    cur = p;
                }
                rev.reverse();
                return Some(rev);
            }
            for &v in adj.get(u).into_iter().flatten() {
                if v != from && !prev.contains_key(v) {
                    prev.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        None
    };
    let describe = |seq: &[(String, String)]| -> String {
        seq.iter()
            .map(|k| {
                let e = &edges[k];
                format!("{} -> {} at {}:{} (in {})", k.0, k.1, e.file, e.line, e.via)
            })
            .collect::<Vec<_>>()
            .join("; ")
    };
    for (from, to) in edges.keys() {
        if from >= to {
            continue; // one violation per unordered lock pair
        }
        if let Some(back) = path(to, from) {
            let fwd = vec![(from.clone(), to.clone())];
            let info = &edges[&(from.clone(), to.clone())];
            out.findings.push((
                info.file_id,
                Finding {
                    rule: "lock-order",
                    line: info.line,
                    col: info.col,
                    message: format!(
                        "lock-order cycle between `{from}` and `{to}`: forward witness \
                         {f}; reverse witness {b} — these paths deadlock when \
                         interleaved",
                        f = describe(&fwd),
                        b = describe(&back),
                    ),
                },
            ));
        }
    }

    // ---- rules: guard-across-blocking / guard-across-await-point --------
    for (ni, n) in nodes.iter().enumerate() {
        for a in &n.summary.acquires {
            let (start, end) = a.extent;
            let mut seen_sites: Vec<usize> = Vec::new();
            for bi in 0..n.summary.blocks.len() {
                let b = &n.summary.blocks[bi];
                if b.tok <= start || b.tok >= end {
                    continue;
                }
                if b.kind == BlockKind::Await {
                    out.findings.push((
                        n.file_id,
                        Finding {
                            rule: "guard-across-await-point",
                            line: b.line,
                            col: b.col,
                            message: format!(
                                "guard on `{}` (acquired line {}) is live across an \
                                 .await point",
                                a.lock, a.line
                            ),
                        },
                    ));
                    continue;
                }
                if let Some(kind) = site_blocks(ni, bi) {
                    seen_sites.push(b.tok);
                    out.findings.push((
                        n.file_id,
                        Finding {
                            rule: "guard-across-blocking",
                            line: b.line,
                            col: b.col,
                            message: format!(
                                "guard on `{}` (acquired line {}) is live across a \
                                 blocking {}",
                                a.lock,
                                a.line,
                                kind.name()
                            ),
                        },
                    ));
                }
            }
            for (ci, callee) in &resolved[ni] {
                let c = &n.summary.calls[*ci];
                if c.tok <= start || c.tok >= end || seen_sites.contains(&c.tok) {
                    continue;
                }
                let Some((_, w)) = blocks_in[*callee].iter().next() else {
                    continue;
                };
                let mut chain = vec![n.item.qual.clone()];
                chain.extend(w.chain.iter().cloned());
                out.findings.push((
                    n.file_id,
                    Finding {
                        rule: "guard-across-blocking",
                        line: c.line,
                        col: n.toks.get(c.tok).map(|t| t.col).unwrap_or(1),
                        message: format!(
                            "guard on `{}` (acquired line {}) is live across a call to \
                             `{}`, which may block on {} ({} at {}:{})",
                            a.lock,
                            a.line,
                            nodes[*callee].item.qual,
                            kinds_of(&blocks_in[*callee]),
                            chain.join(" -> "),
                            w.file,
                            w.line,
                        ),
                    },
                ));
            }
        }
    }

    // ---- rule: channel-cycle --------------------------------------------
    // For each bounded channel: a send reachable (via calls) from the
    // channel's own consumer means the consumer can block on its own
    // queue and never drain it.
    let call_adj: Vec<Vec<usize>> = resolved
        .iter()
        .map(|calls| calls.iter().map(|&(_, callee)| callee).collect())
        .collect();
    for chan in 0..chans.sites.len() {
        if !chans.sites[chan].bounded {
            continue;
        }
        let mut consumers: Vec<usize> = Vec::new();
        let mut senders: Vec<(usize, usize)> = Vec::new(); // (node, block idx)
        for (ni, n) in nodes.iter().enumerate() {
            for (bi, b) in n.summary.blocks.iter().enumerate() {
                let Some(ep) = block_endpoints[ni][bi] else {
                    continue;
                };
                if ep.chan != chan {
                    continue;
                }
                match b.kind {
                    BlockKind::Recv if ep.role == Role::Receiver => consumers.push(ni),
                    BlockKind::SendBounded if ep.role == Role::Sender => senders.push((ni, bi)),
                    _ => {}
                }
            }
        }
        if consumers.is_empty() || senders.is_empty() {
            continue;
        }
        for &(si, bi) in &senders {
            // BFS from each consumer to the sending fn (reflexive).
            let mut witness: Option<Vec<String>> = None;
            for &start in &consumers {
                let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
                let mut queue = std::collections::VecDeque::new();
                queue.push_back(start);
                let mut found = start == si;
                while let Some(u) = queue.pop_front() {
                    if u == si {
                        found = true;
                        break;
                    }
                    for &v in &call_adj[u] {
                        if v != start && !prev.contains_key(&v) {
                            prev.insert(v, u);
                            queue.push_back(v);
                        }
                    }
                }
                if found {
                    let mut rev = vec![si];
                    let mut cur = si;
                    while cur != start {
                        match prev.get(&cur) {
                            Some(&p) => {
                                rev.push(p);
                                cur = p;
                            }
                            None => break,
                        }
                    }
                    rev.reverse();
                    witness = Some(rev.iter().map(|&i| nodes[i].item.qual.clone()).collect());
                    break;
                }
            }
            if let Some(chain) = witness {
                let n = &nodes[si];
                let b = &n.summary.blocks[bi];
                let site = &chans.sites[chan];
                out.findings.push((
                    n.file_id,
                    Finding {
                        rule: "channel-cycle",
                        line: b.line,
                        col: b.col,
                        message: format!(
                            "send on the bounded channel created at {}:{} is reachable \
                             from its own consumer ({}): when the queue fills, the \
                             consumer blocks on itself",
                            site.file,
                            site.line,
                            chain.join(" -> "),
                        ),
                    },
                ));
            }
        }
    }

    out
}
