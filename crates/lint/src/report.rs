//! `LINT_report.json` rendering.
//!
//! Hand-rolled JSON (the lint is dependency-free) with a hard guarantee:
//! the output is **byte-stable** — same tree in, same bytes out. No
//! timestamps, no host paths, every collection sorted before rendering.

use crate::rules::RULES;
use crate::{Outcome, VERSION};

/// JSON-escapes `s` into `out`.
fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the full report. Violations, allows, the allowlist and the
/// unsafe inventory are all included; `summary.violations == 0` is the
/// machine-checkable "tree is clean" signal CI gates on.
pub fn render(outcome: &Outcome) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str("  \"schema\": \"odalint-report/v2\",\n");
    s.push_str(&format!(
        "  \"tool\": {{\"name\": \"odalint\", \"version\": \"{VERSION}\"}},\n"
    ));
    s.push_str(&format!(
        "  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"allowed\": {}, \
         \"unsafe_blocks\": {}}},\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.allowed.len(),
        outcome.unsafe_inventory.len()
    ));

    s.push_str("  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        s.push_str("    {\"id\": ");
        esc(r.id, &mut s);
        s.push_str(", \"description\": ");
        esc(r.description, &mut s);
        s.push_str(", \"scope\": ");
        esc(r.scope, &mut s);
        s.push('}');
        if i + 1 < RULES.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");

    s.push_str("  \"violations\": [\n");
    for (i, v) in outcome.violations.iter().enumerate() {
        s.push_str("    {\"rule\": ");
        esc(&v.rule, &mut s);
        s.push_str(", \"file\": ");
        esc(&v.file, &mut s);
        s.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"message\": ",
            v.line, v.col
        ));
        esc(&v.message, &mut s);
        s.push('}');
        if i + 1 < outcome.violations.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");

    s.push_str("  \"allowed\": [\n");
    for (i, a) in outcome.allowed.iter().enumerate() {
        s.push_str("    {\"rule\": ");
        esc(&a.rule, &mut s);
        s.push_str(", \"file\": ");
        esc(&a.file, &mut s);
        s.push_str(&format!(", \"line\": {}, \"justification\": ", a.line));
        esc(&a.justification, &mut s);
        s.push('}');
        if i + 1 < outcome.allowed.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");

    s.push_str("  \"allowlist\": [\n");
    for (i, (e, used)) in outcome.allowlist_used.iter().enumerate() {
        s.push_str("    {\"rule\": ");
        esc(&e.rule, &mut s);
        s.push_str(", \"file\": ");
        esc(&e.file, &mut s);
        s.push_str(", \"justification\": ");
        esc(&e.justification, &mut s);
        s.push_str(&format!(", \"used\": {used}}}"));
        if i + 1 < outcome.allowlist_used.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");

    s.push_str("  \"unsafe_inventory\": [\n");
    for (i, u) in outcome.unsafe_inventory.iter().enumerate() {
        s.push_str("    {\"file\": ");
        esc(&u.file, &mut s);
        s.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"safety_comment\": {}}}",
            u.line, u.col, u.safety_comment
        ));
        if i + 1 < outcome.unsafe_inventory.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");

    // v2: the concurrency section — the interprocedural lock-order edge
    // list (the workspace's observed lock hierarchy) and the channel
    // inventory. Both are pre-sorted by the analysis for byte-stability.
    s.push_str("  \"concurrency\": {\n");
    s.push_str("    \"lock_order_edges\": [\n");
    let edges = &outcome.concurrency.lock_order_edges;
    for (i, e) in edges.iter().enumerate() {
        s.push_str("      {\"from\": ");
        esc(&e.from, &mut s);
        s.push_str(", \"to\": ");
        esc(&e.to, &mut s);
        s.push_str(", \"file\": ");
        esc(&e.file, &mut s);
        s.push_str(&format!(", \"line\": {}, \"via\": ", e.line));
        esc(&e.via, &mut s);
        s.push('}');
        if i + 1 < edges.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("    ],\n");
    s.push_str("    \"channels\": [\n");
    let chans = &outcome.concurrency.channels;
    for (i, c) in chans.iter().enumerate() {
        s.push_str("      {\"file\": ");
        esc(&c.file, &mut s);
        s.push_str(&format!(", \"line\": {}, \"ctor\": ", c.line));
        esc(&c.ctor, &mut s);
        s.push_str(&format!(", \"bounded\": {}, \"capacity\": ", c.bounded));
        match &c.capacity {
            Some(cap) => esc(cap, &mut s),
            None => s.push_str("null"),
        }
        s.push('}');
        if i + 1 < chans.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("    ]\n");
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}
