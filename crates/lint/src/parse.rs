//! Item-level parsing for the cross-procedural concurrency analysis.
//!
//! The lexer ([`crate::lexer`]) gives a flat token stream; this module
//! recovers just enough *structure* for the v2 rules without pulling in a
//! real Rust parser: `impl` blocks (so methods know their receiver type),
//! `fn` items with parameter names and base types (so `shared.queues` can
//! be resolved to `PoolShared.queues`), and `struct`/`enum` field types
//! (so `self.state` resolves through `RwLock<State>` and `ShardHandle.tx`
//! is known to be a channel `Sender`).
//!
//! Everything here is heuristic-by-design, like the token rules: the goal
//! is resolving the patterns this workspace actually writes, with the
//! inline-allow escape hatch covering anything the heuristics misjudge.

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeMap;

/// One function parameter: binding name and *base* type (references,
/// `mut`, and smart-pointer wrappers stripped — `&Arc<PoolShared>` →
/// `PoolShared`).
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name.
    pub name: String,
    /// Base type name (final path segment, wrappers stripped).
    pub ty: String,
}

/// One parsed function (free or method), with its body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Qualified name: `Type::name` for methods, `name` for free fns.
    pub qual: String,
    /// Receiver type for methods (the `impl` target).
    pub self_ty: Option<String>,
    /// Parameters (excluding `self`).
    pub params: Vec<Param>,
    /// Token-index range of the body: `[open_brace, close_brace]`.
    pub body: (usize, usize),
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is `async`.
    pub is_async: bool,
    /// Whether every body token is test-only code.
    pub in_test: bool,
}

/// A named field of a struct or enum variant.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Base type of the field with wrappers stripped (`Arc<RwLock<State>>`
    /// → `State`).
    pub base_ty: String,
    /// `Some(inner)` when the field type contains `Mutex<inner>` /
    /// `RwLock<inner>` — the field is a lock.
    pub is_lock: bool,
    /// `Some("Sender"|"Receiver")` when the field is a channel endpoint.
    pub chan_endpoint: Option<&'static str>,
}

/// Parsed view of one file: its functions plus workspace-relevant field
/// type information, keyed `(owner type, field name)`.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// `(type name, field name)` → field info, for structs *and* enum
    /// variants (variant fields are keyed by the enum name).
    pub fields: BTreeMap<(String, String), FieldInfo>,
}

fn txt(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Index just past a balanced `<...>` group starting at `open` (which must
/// be `<`). Tolerates `>>`-style closers being lexed as single tokens.
fn skip_generics(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        match txt(toks, i) {
            "<" => depth += 1,
            ">" => depth -= 1,
            ">=" => depth -= 1,
            "->" | ";" | "{" => {
                // A stray arrow/semicolon/brace means this `<` was a
                // comparison, not generics — bail out where we started.
                return open + 1;
            }
            _ => {}
        }
        i += 1;
        if depth == 0 {
            return i;
        }
    }
    i
}

/// Index of the token after the balanced bracket group opening at `open`.
fn skip_group(toks: &[Tok], open: usize) -> usize {
    let close = crate::rules::matching_idx(toks, open);
    close.saturating_add(1)
}

/// Extracts the base type name from a type token slice: strips `&`,
/// `mut`, `dyn`, `impl`, and descends through `Arc<..>` / `Rc<..>` /
/// `Box<..>` / `Option<..>` wrappers; returns the final path segment of
/// what remains (before any `<`).
pub fn base_type(toks: &[Tok], start: usize, end: usize) -> String {
    let mut i = start;
    loop {
        while i < end && matches!(txt(toks, i), "&" | "&&" | "mut" | "dyn" | "impl" | "'") {
            i += 1;
        }
        // Skip a lifetime token if present.
        if i < end && toks[i].kind == TokKind::Lifetime {
            i += 1;
            continue;
        }
        if i < end
            && matches!(txt(toks, i), "Arc" | "Rc" | "Box" | "Option")
            && txt(toks, i + 1) == "<"
        {
            i += 2;
            continue;
        }
        break;
    }
    // Walk the path `a::b::C`, keeping the last segment.
    let mut last = String::new();
    while i < end {
        if toks[i].kind == TokKind::Ident {
            last = toks[i].text.clone();
            i += 1;
            if txt(toks, i) == "::" {
                i += 1;
                continue;
            }
        }
        break;
    }
    last
}

/// Scans a type token slice for `Mutex<` / `RwLock<` and channel
/// endpoints.
fn field_info(toks: &[Tok], start: usize, end: usize) -> FieldInfo {
    let mut is_lock = false;
    let mut chan_endpoint = None;
    for i in start..end {
        if toks[i].kind == TokKind::Ident && txt(toks, i + 1) == "<" {
            match txt(toks, i) {
                "Mutex" | "RwLock" => is_lock = true,
                "Sender" | "SyncSender" => chan_endpoint = Some("Sender"),
                "Receiver" => chan_endpoint = Some("Receiver"),
                _ => {}
            }
        }
    }
    FieldInfo {
        base_ty: base_type(toks, start, end),
        is_lock,
        chan_endpoint,
    }
}

/// Parses `lexed` into functions and field tables.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.toks[..];
    let mut out = ParsedFile::default();
    parse_items(toks, 0, toks.len(), None, &mut out);
    out
}

/// Parses items in `[i, end)`; `self_ty` is the enclosing impl target.
fn parse_items(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    self_ty: Option<&str>,
    out: &mut ParsedFile,
) {
    while i < end {
        match txt(toks, i) {
            "impl" => {
                let mut j = i + 1;
                if txt(toks, j) == "<" {
                    j = skip_generics(toks, j);
                }
                // Type path; may be `Trait for Type`.
                let (mut ty, mut k) = read_type_name(toks, j);
                if txt(toks, k) == "for" {
                    let (t2, k2) = read_type_name(toks, k + 1);
                    ty = t2;
                    k = k2;
                }
                // Skip a where clause to the opening brace.
                while k < end && txt(toks, k) != "{" && txt(toks, k) != ";" {
                    k += 1;
                }
                if txt(toks, k) == "{" {
                    let close = crate::rules::matching_idx(toks, k);
                    parse_items(toks, k + 1, close, Some(&ty), out);
                    i = close + 1;
                } else {
                    i = k + 1;
                }
            }
            "struct" | "union" => {
                let name = txt(toks, i + 1).to_string();
                let mut j = i + 2;
                if txt(toks, j) == "<" {
                    j = skip_generics(toks, j);
                }
                while j < end && !matches!(txt(toks, j), "{" | "(" | ";") {
                    j += 1;
                }
                if txt(toks, j) == "{" {
                    let close = crate::rules::matching_idx(toks, j);
                    parse_fields(toks, j + 1, close, &name, out);
                    i = close + 1;
                } else if txt(toks, j) == "(" {
                    i = skip_group(toks, j);
                } else {
                    i = j + 1;
                }
            }
            "enum" => {
                let name = txt(toks, i + 1).to_string();
                let mut j = i + 2;
                if txt(toks, j) == "<" {
                    j = skip_generics(toks, j);
                }
                while j < end && txt(toks, j) != "{" {
                    j += 1;
                }
                if txt(toks, j) == "{" {
                    let close = crate::rules::matching_idx(toks, j);
                    // Variants: named-field groups contribute to the enum's
                    // field table (how `ShardCmd::Query { reply }` resolves).
                    let mut v = j + 1;
                    while v < close {
                        if txt(toks, v) == "{" {
                            let vc = crate::rules::matching_idx(toks, v);
                            parse_fields(toks, v + 1, vc, &name, out);
                            v = vc + 1;
                        } else if txt(toks, v) == "(" {
                            v = skip_group(toks, v);
                        } else {
                            v += 1;
                        }
                    }
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                let is_async = i >= 1 && txt(toks, i - 1) == "async";
                if let Some((item, next)) = parse_fn(toks, i, self_ty, is_async) {
                    out.fns.push(item);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "mod" => {
                // Inline module: recurse into its body with no impl target.
                let mut j = i + 1;
                while j < end && !matches!(txt(toks, j), "{" | ";") {
                    j += 1;
                }
                if txt(toks, j) == "{" {
                    let close = crate::rules::matching_idx(toks, j);
                    parse_items(toks, j + 1, close, None, out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            _ => i += 1,
        }
    }
}

/// Reads a type path at `i`, returning its final segment and the index
/// after the path (generics skipped).
fn read_type_name(toks: &[Tok], mut i: usize) -> (String, usize) {
    let mut last = String::new();
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && !matches!(txt(toks, i), "for" | "where") {
            last = toks[i].text.clone();
            i += 1;
            if txt(toks, i) == "<" {
                i = skip_generics(toks, i);
            }
            if txt(toks, i) == "::" {
                i += 1;
                continue;
            }
        }
        break;
    }
    (last, i)
}

/// Parses named fields `name: Type, ...` in `[i, end)` into `out.fields`.
fn parse_fields(toks: &[Tok], mut i: usize, end: usize, owner: &str, out: &mut ParsedFile) {
    while i < end {
        // Field name is an ident directly followed by `:` (skip
        // attributes and visibility).
        if txt(toks, i) == "#" && txt(toks, i + 1) == "[" {
            i = skip_group(toks, i + 1);
            continue;
        }
        if txt(toks, i) == "pub" {
            i += 1;
            if txt(toks, i) == "(" {
                i = skip_group(toks, i);
            }
            continue;
        }
        if toks[i].kind == TokKind::Ident && txt(toks, i + 1) == ":" {
            let name = toks[i].text.clone();
            let ty_start = i + 2;
            // Type runs to the next top-level comma.
            let mut j = ty_start;
            let mut depth = 0i64;
            while j < end {
                match txt(toks, j) {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "(" | "[" | "{" => {
                        j = crate::rules::matching_idx(toks, j);
                    }
                    "," if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            out.fields
                .insert((owner.to_string(), name), field_info(toks, ty_start, j));
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Parses one `fn` starting at the `fn` keyword; returns the item and the
/// index after its body (or signature, for trait methods without one).
fn parse_fn(
    toks: &[Tok],
    at: usize,
    self_ty: Option<&str>,
    is_async: bool,
) -> Option<(FnItem, usize)> {
    let name = toks.get(at + 1)?.text.clone();
    if toks.get(at + 1)?.kind != TokKind::Ident {
        return None;
    }
    let line = toks[at].line;
    let mut j = at + 2;
    if txt(toks, j) == "<" {
        j = skip_generics(toks, j);
    }
    if txt(toks, j) != "(" {
        return None;
    }
    let params_close = crate::rules::matching_idx(toks, j);
    let params = parse_params(toks, j + 1, params_close);
    // Scan to the body `{` or a `;` (trait method signature).
    let mut k = params_close + 1;
    while k < toks.len() && !matches!(txt(toks, k), "{" | ";") {
        if txt(toks, k) == "<" {
            k = skip_generics(toks, k);
            continue;
        }
        k += 1;
    }
    if txt(toks, k) != "{" {
        let item = FnItem {
            name: name.clone(),
            qual: qualify(self_ty, &name),
            self_ty: self_ty.map(str::to_string),
            params,
            body: (k, k),
            line,
            is_async,
            in_test: toks[at].in_test,
        };
        return Some((item, k + 1));
    }
    let close = crate::rules::matching_idx(toks, k);
    let item = FnItem {
        name: name.clone(),
        qual: qualify(self_ty, &name),
        self_ty: self_ty.map(str::to_string),
        params,
        body: (k, close),
        line,
        is_async,
        in_test: toks[at].in_test,
    };
    Some((item, close + 1))
}

fn qualify(self_ty: Option<&str>, name: &str) -> String {
    match self_ty {
        Some(t) => format!("{t}::{name}"),
        None => name.to_string(),
    }
}

/// Parses a parameter list `[i, end)` into `(name, base type)` pairs,
/// skipping `self` receivers and pattern parameters it cannot name.
fn parse_params(toks: &[Tok], mut i: usize, end: usize) -> Vec<Param> {
    let mut out = Vec::new();
    while i < end {
        // One parameter runs to the next top-level comma.
        let mut j = i;
        let mut depth = 0i64;
        while j < end {
            match txt(toks, j) {
                "<" => depth += 1,
                ">" => depth -= 1,
                "(" | "[" | "{" => {
                    j = crate::rules::matching_idx(toks, j);
                }
                "," if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        // Pattern: `[mut] name : Type` (skip `self` in any form).
        let mut p = i;
        while p < j && matches!(txt(toks, p), "&" | "&&" | "mut") {
            p += 1;
        }
        if p < j && toks[p].kind == TokKind::Lifetime {
            p += 1;
            while p < j && txt(toks, p) == "mut" {
                p += 1;
            }
        }
        if p < j
            && txt(toks, p) != "self"
            && toks[p].kind == TokKind::Ident
            && txt(toks, p + 1) == ":"
        {
            out.push(Param {
                name: toks[p].text.clone(),
                ty: base_type(toks, p + 2, j),
            });
        }
        i = j + 1;
    }
    out
}
