//! `odalint` — the workspace static-analysis gate.
//!
//! ```text
//! odalint [--root <dir>] [--report <path>] [--quiet]
//! ```
//!
//! Walks every `.rs` file under the workspace root (auto-detected by
//! searching upward for a `Cargo.toml` containing `[workspace]`), applies
//! the rule catalogue, honours `// odalint: allow(..)` comments and the
//! committed `odalint.allow` file, writes `LINT_report.json`, prints each
//! violation as `file:line:col: rule: message`, and exits nonzero when any
//! unallowed violation remains.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--quiet" | "-q" => quiet = true,
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("odalint: --explain requires a rule id");
                    return ExitCode::from(2);
                };
                let Some(r) = lint::rules::RULES.iter().find(|r| r.id == id) else {
                    eprintln!("odalint: unknown rule `{id}`; known rules:");
                    for r in lint::rules::RULES {
                        eprintln!("  {}", r.id);
                    }
                    return ExitCode::from(2);
                };
                println!("{}", r.id);
                println!("  scope: {}", r.scope);
                println!("  rationale: {}", r.description);
                println!("  example:");
                for line in r.example.lines() {
                    println!("    {line}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: odalint [--root <dir>] [--report <path>] [--quiet] \
                     [--explain <rule>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("odalint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("odalint: could not locate workspace root (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    let mut cfg = lint::Config::workspace_default();
    let allow_path = root.join(lint::ALLOWLIST_FILE);
    if let Ok(content) = std::fs::read_to_string(&allow_path) {
        match lint::parse_allowlist(&content) {
            Ok(entries) => cfg.allowlist = entries,
            Err(e) => {
                eprintln!("odalint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let outcome = match lint::lint_workspace(&root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("odalint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let report = lint::report::render(&outcome);
    let out_path = report_path.unwrap_or_else(|| root.join(lint::REPORT_FILE));
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("odalint: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }

    if !quiet {
        for v in &outcome.violations {
            println!("{}:{}:{}: {}: {}", v.file, v.line, v.col, v.rule, v.message);
        }
        println!(
            "odalint: {} files, {} violation(s), {} allowed, {} unsafe block(s); report: {}",
            outcome.files_scanned,
            outcome.violations.len(),
            outcome.allowed.len(),
            outcome.unsafe_inventory.len(),
            out_path.display()
        );
    }
    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
