//! The odalint rule catalogue.
//!
//! Every rule is a deny-by-default token-pattern pass over one lexed file.
//! Rules are deliberately conservative-textual (no type inference): each
//! one matches a pattern that is either always suspect in its scope, or
//! cheap for a human to justify with an inline
//! `// odalint: allow(<rule>) -- <why>` when the pattern is intentional.

use crate::lexer::{Lexed, Tok, TokKind};

/// Scope classification of one file, derived from [`crate::Config`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// File belongs to a digest-bearing crate (core/analytics/telemetry):
    /// its outputs feed `output_digest` replay, so ambient inputs and
    /// unordered iteration are banned.
    pub digest: bool,
    /// File is on the capability-execution / bus / store hot path:
    /// panicking operators are banned.
    pub hot: bool,
    /// File is test-only (under a `tests/` directory).
    pub test_file: bool,
    /// File is a vendored shim (mirror of an external crate's API): only
    /// the unsafe-audit rules apply.
    pub shim: bool,
}

/// A raw rule hit, before allow processing.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

/// One `unsafe` occurrence, for the report's unsafe inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Whether a `// SAFETY:` comment covers the block.
    pub safety_comment: bool,
}

/// Static description of a rule, surfaced in `LINT_report.json` and by
/// `odalint --explain <rule>`.
pub struct RuleMeta {
    /// Stable rule id, used in allows and the report.
    pub id: &'static str,
    /// What the rule bans and why.
    pub description: &'static str,
    /// Which files the rule applies to.
    pub scope: &'static str,
    /// A minimal flagged snippet, printed by `--explain`.
    pub example: &'static str,
}

/// The full catalogue, in report order.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: "wall-clock",
        description: "no SystemTime::now()/Instant::now() in digest-bearing crates; \
                      ambient time breaks bit-identical replay — thread time through \
                      CapabilityContext / the simulated clock",
        scope: "digest crates (core, analytics, telemetry), non-test code",
        example: "let t = Instant::now();   // ambient clock feeds a digest",
    },
    RuleMeta {
        id: "ambient-env",
        description: "no env!()/option_env!()/std::env::var-style ambient inputs in \
                      digest-bearing crates",
        scope: "digest crates, non-test code",
        example: "let path = std::env::var(\"ODA_DIR\");   // ambient input",
    },
    RuleMeta {
        id: "unseeded-rng",
        description: "no thread_rng()/from_entropy()/OsRng/rand::random() — all \
                      randomness must come from an explicit seed",
        scope: "digest crates, non-test code",
        example: "let jitter: f64 = rand::random();   // entropy outside the seed chain",
    },
    RuleMeta {
        id: "hash-iter",
        description: "no HashMap/HashSet in digest-bearing crates: iteration order is \
                      nondeterministic and silently feeds ordered output — use \
                      BTreeMap/BTreeSet, or justify pure-membership use with an allow",
        scope: "digest crates, non-test code",
        example: "let mut by_name: HashMap<String, u64> = HashMap::new();",
    },
    RuleMeta {
        id: "panic-unwrap",
        description: "no .unwrap()/.expect() on the capability-execution / bus / store \
                      hot paths — convert to typed errors or justify the invariant",
        scope: "hot-path files, non-test code",
        example: "let v = series.last().unwrap();   // panics on an empty series",
    },
    RuleMeta {
        id: "panic-index",
        description: "no direct slice/array indexing on hot paths — use get()/get_mut() \
                      or justify the bound (e.g. index is modulo-capacity)",
        scope: "hot-path files, non-test code",
        example: "let r = readings[i];   // panics when i is out of bounds",
    },
    RuleMeta {
        id: "float-eq",
        description: "no ==/!= against float literals — exact float equality is almost \
                      always a bug; use an epsilon or justify the exact-zero guard",
        scope: "workspace (non-shim), non-test code",
        example: "if mean == 0.5 { .. }   // exact float equality",
    },
    RuleMeta {
        id: "float-ord",
        description: "no partial_cmp().unwrap()/.expect() — panics on NaN, and NaN \
                      bursts are a first-class fault here; use f64::total_cmp",
        scope: "workspace (non-shim), non-test code",
        example: "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());   // panics on NaN",
    },
    RuleMeta {
        id: "unsafe-block",
        description: "every `unsafe` requires a `// SAFETY:` comment on or within three \
                      lines above it",
        scope: "workspace including shims and tests",
        example: "unsafe { ptr.read() }   // no // SAFETY: comment above",
    },
    RuleMeta {
        id: "forbid-unsafe",
        description: "a crate containing no unsafe code must declare \
                      #![forbid(unsafe_code)] in its lib.rs; a crate with audited \
                      unsafe must declare #![deny(unsafe_code)]",
        scope: "every workspace crate root (including shims)",
        example: "// lib.rs without #![forbid(unsafe_code)] in an unsafe-free crate",
    },
    RuleMeta {
        id: "deprecated-api",
        description: "the pre-0.2 delegate APIs (QueryEngine method zoo, positional \
                      TelemetryBus::subscribe) are removed — no #[deprecated] shims, \
                      no #[allow(deprecated)], no calls to the removed names",
        scope: "workspace (non-shim)",
        example: "bus.subscribe(pattern, 64);   // removed positional API",
    },
    RuleMeta {
        id: "lock-order",
        description: "cycle in the interprocedural lock-acquisition-order graph: two \
                      paths acquire the same locks in opposite orders, a classic \
                      deadlock. Both witness acquisition paths are printed; break the \
                      cycle by scoping one guard or imposing a global order",
        scope: "workspace (non-shim), non-test code",
        example: "fn a(&self) { let g = self.x.lock(); self.take_y(); }\n\
                  fn b(&self) { let g = self.y.lock(); self.take_x(); }",
    },
    RuleMeta {
        id: "guard-across-blocking",
        description: "a lock guard is live across a blocking operation (send on a \
                      bounded channel, recv, join, flush/sync_all, or Server::poll), \
                      directly or through a call chain — the collector-holding-a-lock-\
                      while-its-consumer-needs-it deadlock shape. Drop or scope the \
                      guard before blocking, or justify why the blocked-on party can \
                      never need the lock",
        scope: "workspace (non-shim), non-test code",
        example: "let state = self.state.read();\n\
                  tx.send(cmd);   // bounded: blocks while holding `state`",
    },
    RuleMeta {
        id: "guard-across-await-point",
        description: "a lock guard is live across an .await point — the future can be \
                      parked indefinitely (or moved threads) with the lock held. \
                      Reserved: the workspace is currently sync-only, but the rule is \
                      fully evaluated so the first async code inherits it",
        scope: "workspace (non-shim), non-test code",
        example: "let g = self.state.lock();\n\
                  socket.read_frame().await;   // parked with the lock held",
    },
    RuleMeta {
        id: "channel-cycle",
        description: "a send on a bounded channel is reachable (via the call graph) \
                      from that channel's own consumer: when the channel fills, the \
                      consumer blocks on its own queue and can never drain it — the \
                      push/pull hierarchy feedback deadlock",
        scope: "workspace (non-shim), non-test code",
        example: "fn consume(rx: &Receiver<Job>, tx: &Sender<Job>) {\n\
                      while let Ok(j) = rx.recv() { tx.send(retry(j)); }\n\
                  }",
    },
    RuleMeta {
        id: "allow-hygiene",
        description: "every odalint allow must carry a justification and suppress at \
                      least one real finding; stale or malformed allows are violations",
        scope: "workspace",
        example: "// odalint: allow(wall-clock) -- (on a line that no longer fires)",
    },
];

/// Keywords that legitimately precede `[` (slice patterns, array types in
/// expressions) and must not count as indexing.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "match", "if", "while", "loop", "for", "else", "mut", "ref", "move",
    "as", "box", "yield", "static", "const", "dyn", "impl", "where",
];

fn t(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Index of the matching close for the open delimiter at `open` (which
/// must be `(`, `[` or `{`); `toks.len()` when unbalanced. Shared with
/// the item parser and the concurrency analysis.
pub fn matching_idx(toks: &[Tok], open: usize) -> usize {
    matching(toks, open)
}

/// Index of the matching close for the open delimiter at `open` (which
/// must be `(`, `[` or `{`); `toks.len()` when unbalanced.
fn matching(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match t(toks, open) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            if toks[i].text == o {
                depth += 1;
            } else if toks[i].text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    toks.len()
}

/// Runs every pattern rule applicable to `class` over `lexed`, returning
/// raw findings plus the file's unsafe inventory.
pub fn scan(lexed: &Lexed, class: FileClass) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let mut out = Vec::new();
    let toks = &lexed.toks[..];
    let determinism = class.digest && !class.test_file && !class.shim;
    let hot = class.hot && !class.test_file && !class.shim;
    let float = !class.shim && !class.test_file;
    let hygiene = !class.shim;

    for i in 0..toks.len() {
        let tok = &toks[i];
        let here = |rule: &'static str, message: String| Finding {
            rule,
            line: tok.line,
            col: tok.col,
            message,
        };
        let skip_test_tok = tok.in_test;

        if tok.kind == TokKind::Ident {
            match tok.text.as_str() {
                // ---- determinism rules ------------------------------------
                "Instant" | "SystemTime"
                    if determinism
                        && !skip_test_tok
                        && t(toks, i + 1) == "::"
                        && t(toks, i + 2) == "now" =>
                {
                    out.push(here(
                        "wall-clock",
                        format!("`{}::now()` is ambient wall-clock input", tok.text),
                    ));
                }
                "env" | "option_env" if determinism && !skip_test_tok => {
                    if t(toks, i + 1) == "!" {
                        out.push(here(
                            "ambient-env",
                            format!("`{}!` reads the build/ambient environment", tok.text),
                        ));
                    } else if tok.text == "env"
                        && t(toks, i + 1) == "::"
                        && matches!(
                            t(toks, i + 2),
                            "var" | "var_os" | "vars" | "args" | "args_os"
                        )
                    {
                        out.push(here(
                            "ambient-env",
                            format!("`env::{}` reads the process environment", t(toks, i + 2)),
                        ));
                    }
                }
                "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng"
                    if determinism && !skip_test_tok =>
                {
                    out.push(here(
                        "unseeded-rng",
                        format!("`{}` draws entropy outside the seed chain", tok.text),
                    ));
                }
                "rand"
                    if determinism
                        && !skip_test_tok
                        && t(toks, i + 1) == "::"
                        && t(toks, i + 2) == "random" =>
                {
                    out.push(here(
                        "unseeded-rng",
                        "`rand::random` draws entropy outside the seed chain".to_owned(),
                    ));
                }
                "HashMap" | "HashSet" if determinism && !skip_test_tok => {
                    out.push(here(
                        "hash-iter",
                        format!(
                            "`{}` has nondeterministic iteration order in a digest-bearing \
                             crate; use the BTree equivalent or justify membership-only use",
                            tok.text
                        ),
                    ));
                }
                // ---- float-ord --------------------------------------------
                "partial_cmp" if float && !skip_test_tok && t(toks, i + 1) == "(" => {
                    let close = matching(toks, i + 1);
                    if t(toks, close + 1) == "."
                        && matches!(t(toks, close + 2), "unwrap" | "expect")
                    {
                        out.push(here(
                            "float-ord",
                            format!(
                                "`partial_cmp().{}()` panics on NaN; use f64::total_cmp",
                                t(toks, close + 2)
                            ),
                        ));
                    }
                }
                // ---- deprecated-api ---------------------------------------
                "aggregate_many" if hygiene => {
                    out.push(here(
                        "deprecated-api",
                        "`aggregate_many` was a pre-0.2 QueryEngine delegate; use \
                         `Query::sensors(..).aggregate(..).run(..).scalars()`"
                            .to_owned(),
                    ));
                }
                // Positional legacy call `.subscribe(pattern, buffer)`;
                // the builder finisher `.subscribe()` is fine.
                "subscribe"
                    if hygiene && t(toks, i.wrapping_sub(1)) == "." && t(toks, i + 1) == "(" =>
                {
                    let close = matching(toks, i + 1);
                    if close > i + 2 {
                        out.push(here(
                            "deprecated-api",
                            "positional `subscribe(pattern, buffer)` was removed; use \
                             `bus.subscription(pattern).capacity(n).subscribe()`"
                                .to_owned(),
                        ));
                    }
                }
                // `#[deprecated ...]` — introducing new deprecated shims
                // is banned; delete the API instead.
                "deprecated"
                    if hygiene
                        && t(toks, i.wrapping_sub(1)) == "["
                        && t(toks, i.wrapping_sub(2)) == "#" =>
                {
                    out.push(here(
                        "deprecated-api",
                        "do not add #[deprecated] delegate shims; delete the old API \
                         and migrate callers in the same PR"
                            .to_owned(),
                    ));
                }
                // `#[allow(deprecated)]` silences the rustc gate.
                "allow" if hygiene && t(toks, i + 1) == "(" => {
                    let close = matching(toks, i + 1);
                    let in_attr = t(toks, i.wrapping_sub(1)) == "[";
                    if in_attr
                        && toks[i + 1..close]
                            .iter()
                            .any(|x| x.kind == TokKind::Ident && x.text == "deprecated")
                    {
                        out.push(here(
                            "deprecated-api",
                            "#[allow(deprecated)] defeats the deprecation gate".to_owned(),
                        ));
                    }
                }
                _ => {}
            }
        }

        if tok.kind == TokKind::Punct {
            match tok.text.as_str() {
                // ---- panic-unwrap -----------------------------------------
                "." if hot
                    && !skip_test_tok
                    && matches!(t(toks, i + 1), "unwrap" | "expect")
                    && t(toks, i + 2) == "(" =>
                {
                    out.push(Finding {
                        rule: "panic-unwrap",
                        line: toks[i + 1].line,
                        col: toks[i + 1].col,
                        message: format!(
                            "`.{}()` can panic on a hot path; return a typed error or \
                             justify the invariant",
                            t(toks, i + 1)
                        ),
                    });
                }
                // ---- panic-index ------------------------------------------
                "[" if hot && !skip_test_tok && i > 0 => {
                    let prev = &toks[i - 1];
                    let indexes = match prev.kind {
                        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                        _ => false,
                    };
                    if indexes {
                        out.push(here(
                            "panic-index",
                            "direct indexing can panic on a hot path; use get()/get_mut() \
                             or justify the bound"
                                .to_owned(),
                        ));
                    }
                }
                // ---- float-eq ---------------------------------------------
                "==" | "!=" if float && !skip_test_tok => {
                    let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
                    let next_float = toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Float)
                        || (t(toks, i + 1) == "-"
                            && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Float));
                    if prev_float || next_float {
                        out.push(here(
                            "float-eq",
                            format!(
                                "`{}` against a float literal; use an epsilon or justify \
                                 the exact comparison",
                                tok.text
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    // ---- unsafe-audit ---------------------------------------------------
    let mut inventory = Vec::new();
    for tok in toks.iter() {
        if tok.kind == TokKind::Ident && tok.text == "unsafe" {
            let safety = lexed.comments.iter().any(|c| {
                c.line + 3 >= tok.line && c.line <= tok.line && c.text.contains("SAFETY:")
            });
            if !safety {
                out.push(Finding {
                    rule: "unsafe-block",
                    line: tok.line,
                    col: tok.col,
                    message: "`unsafe` without a `// SAFETY:` comment within three lines above"
                        .to_owned(),
                });
            }
            inventory.push(UnsafeSite {
                line: tok.line,
                col: tok.col,
                safety_comment: safety,
            });
        }
    }

    (out, inventory)
}
