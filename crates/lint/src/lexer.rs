//! A minimal, dependency-free Rust lexer — just enough fidelity for the
//! odalint rules: identifiers, numeric literals (int vs float matters for
//! the float-soundness rules), multi-char operators (`==`/`!=`/`::`), and
//! comments (kept separately, with line numbers, so the `// SAFETY:` and
//! `// odalint: allow(...)` conventions can be checked).
//!
//! String/char/lifetime literals are recognised so their *contents* never
//! leak into the token stream (a `"unwrap()"` inside a string must not
//! trip the panic-safety rule), but their text is not retained.
//!
//! The lexer also performs the one piece of structural analysis every rule
//! needs: marking which tokens live inside `#[cfg(test)]` regions (and
//! `#[test]` functions), so production-only rules can skip test code.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1.5f64`).
    Float,
    /// String, char, or byte literal (text not retained).
    Literal,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation / operator (`==`, `::`, `[`, ...).
    Punct,
}

/// One token with its source position (1-indexed line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (empty for string/char literals).
    pub text: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// True when the token is inside a `#[cfg(test)]` item or `#[test]` fn.
    pub in_test: bool,
}

/// A `//`-style comment (block comments are split per line), 1-indexed.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line the comment (fragment) sits on.
    pub line: u32,
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// True when code precedes the comment on the same line (trailing).
    pub trailing: bool,
}

/// Lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Lines that contain at least one code token.
    pub fn code_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self.toks.iter().map(|t| t.line).collect();
        lines.dedup();
        lines
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`, then marks test regions.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
        line_has_code: false,
    };
    lx.run();
    let mut lexed = lx.out;
    mark_test_regions(&mut lexed.toks);
    lexed
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    line_has_code: bool,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_code = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.line_has_code = true;
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            col,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_lit(line, col),
                'r' | 'b' => self.raw_or_byte_prefix(),
                '\'' => self.char_or_lifetime(line, col),
                _ if c.is_ascii_digit() => self.number(line, col),
                _ if is_ident_start(c) => self.ident(line, col),
                _ => self.punct(line, col),
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        let trailing = self.line_has_code;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let trailing = self.line_has_code;
        let mut depth = 0usize;
        let mut cur = String::new();
        let mut cur_line = self.line;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                cur.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                cur.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else if c == '\n' {
                self.out.comments.push(Comment {
                    line: cur_line,
                    text: std::mem::take(&mut cur),
                    trailing: trailing && cur_line == self.line,
                });
                self.bump();
                cur_line = self.line;
            } else {
                cur.push(c);
                self.bump();
            }
        }
        if !cur.is_empty() {
            self.out.comments.push(Comment {
                line: cur_line,
                text: cur,
                trailing,
            });
        }
    }

    fn string_lit(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line, col);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` — or,
    /// when the `r`/`b` turns out to start a plain identifier, lexes that.
    fn raw_or_byte_prefix(&mut self) {
        let (line, col) = (self.line, self.col);
        let c0 = self.peek(0).unwrap_or(' ');
        // Compute the shape without consuming.
        let mut i = 1;
        if c0 == 'b' && self.peek(1) == Some('r') {
            i = 2;
        }
        let mut hashes = 0;
        while self.peek(i) == Some('#') {
            hashes += 1;
            i += 1;
        }
        match self.peek(i) {
            Some('"') => {}
            Some('\'') if c0 == 'b' && hashes == 0 && i == 1 => {
                // b'x' byte literal.
                self.bump(); // b
                self.char_or_lifetime(line, col);
                return;
            }
            _ => {
                // Just an identifier starting with r/b.
                self.ident(line, col);
                return;
            }
        }
        if c0 == 'b' && i == 1 {
            // b"..." — plain byte string.
            self.bump();
            self.string_lit(line, col);
            return;
        }
        // Raw string: consume prefix + opening quote, scan to `"` + hashes.
        for _ in 0..=i {
            self.bump();
        }
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(h) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, String::new(), line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // opening '
                     // Lifetime: 'ident not followed by a closing quote.
        if let Some(c) = self.peek(0) {
            if is_ident_start(c) && self.peek(1) != Some('\'') {
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::Lifetime, text, line, col);
                return;
            }
        }
        // Char literal.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut is_float = false;
        // Hex/octal/binary prefix: stays an int.
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'))
        {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line, col);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `1.5` yes, `1..2` (range) and `1.method()` no.
        if self.peek(0) == Some('.') {
            if let Some(next) = self.peek(1) {
                if next.is_ascii_digit() {
                    is_float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap_or('e'));
                if sign {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`1.0f64`, `3u32`).
        if self.peek(0).is_some_and(is_ident_start) {
            let mut suffix = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                suffix.push(c);
                self.bump();
            }
            if suffix.starts_with('f') {
                is_float = true;
            }
            text.push_str(&suffix);
        }
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        let c = self.bump().unwrap_or(' ');
        let mut text = String::from(c);
        // Join the two-char operators the rules care about.
        let two = matches!(
            (c, self.peek(0)),
            ('=', Some('=') | Some('>'))
                | ('!', Some('='))
                | (':', Some(':'))
                | ('-', Some('>'))
                | ('<', Some('='))
                | ('>', Some('='))
                | ('&', Some('&'))
                | ('|', Some('|'))
                | ('.', Some('.'))
        );
        if two {
            text.push(self.bump().unwrap_or(' '));
        }
        self.push(TokKind::Punct, text, line, col);
    }
}

/// Marks tokens inside `#[cfg(test)]` items (typically `mod tests { .. }`)
/// and `#[test]` functions as test code.
///
/// Strategy: on seeing the attribute, remember a pending flag; when the
/// next item's body `{` opens (before any `;` at the same level), mark
/// every token until the matching `}`. An attribute followed by `;` first
/// (e.g. on a `use`) marks just that statement.
fn mark_test_regions(toks: &mut [Tok]) {
    let n = toks.len();
    let mut i = 0;
    while i < n {
        if is_test_attr(toks, i) {
            // Find the body start.
            let mut j = i;
            // Skip past the attribute itself: `#` `[` ... matching `]`.
            j += 2; // at first token inside [
            let mut depth = 1;
            while j < n && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            // Scan forward to `{` or `;`.
            let mut k = j;
            let mut body = None;
            while k < n {
                match toks[k].text.as_str() {
                    "{" => {
                        body = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
                k += 1;
            }
            let end = match body {
                Some(open) => {
                    let mut depth = 0usize;
                    let mut m = open;
                    while m < n {
                        match toks[m].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    m
                }
                None => k,
            };
            for t in toks.iter_mut().take((end + 1).min(n)).skip(i) {
                t.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// True when tokens at `i` start `#[cfg(test)]` / `#[cfg(all(test, ..))]`
/// or `#[test]`.
fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    match toks.get(i + 2).map(|t| t.text.as_str()) {
        Some("test") => toks.get(i + 3).map(|t| t.text.as_str()) == Some("]"),
        Some("cfg") => {
            // Look for a `test` ident before the attribute closes.
            let mut depth = 1;
            let mut j = i + 2;
            while let Some(t) = toks.get(j) {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if t.kind == TokKind::Ident => return true,
                    _ => {}
                }
                j += 1;
            }
            false
        }
        _ => false,
    }
}
