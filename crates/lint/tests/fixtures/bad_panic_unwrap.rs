// Fixture: panicking extraction on a hot path (rule: panic-unwrap).

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn must_head(xs: &[u64]) -> u64 {
    *xs.first().expect("nonempty by construction")
}
