// Fixture: exact equality against a float literal (rule: float-eq).

pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

pub fn not_half(x: f64) -> bool {
    x != 0.5
}
