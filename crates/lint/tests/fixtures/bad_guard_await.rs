//! Fixture: a lock guard live across an `.await` point — the task can
//! be parked holding the lock.
use std::sync::Mutex;

pub struct S {
    state: Mutex<u64>,
}

impl S {
    pub async fn tick(&self, fut: impl std::future::Future<Output = u64>) -> u64 {
        let g = self.state.lock().unwrap();
        let v = fut.await;
        *g + v
    }
}
