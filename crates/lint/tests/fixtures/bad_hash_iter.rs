// Fixture: iteration-order-unstable containers in digest scope
// (rule: hash-iter).

use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_default() += 1;
    }
    counts.into_iter().collect()
}
