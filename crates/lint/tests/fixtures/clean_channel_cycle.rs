//! Near-miss: the same feedback shape over an *unbounded* channel —
//! sends never block, so the loop cannot wedge on its own queue.
use crossbeam_channel::{unbounded, Receiver, Sender};

pub fn feedback() {
    let (tx, rx) = unbounded();
    pump(tx, rx);
}

fn pump(tx: Sender<u64>, rx: Receiver<u64>) {
    while let Ok(v) = rx.recv() {
        tx.send(v + 1).ok();
    }
}
