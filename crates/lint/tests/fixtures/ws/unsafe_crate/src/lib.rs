//! Workspace fixture: audited unsafe behind `#![deny(unsafe_code)]` with
//! a SAFETY comment — inventory entry, no violation.

#![deny(unsafe_code)]

/// Reads the first byte.
pub fn first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    #[allow(unsafe_code)]
    unsafe {
        *xs.as_ptr()
    }
}
