//! Workspace fixture: no unsafe code, but also no forbid attribute —
//! must fire forbid-unsafe at line 1.

/// Nothing to see here either.
pub fn ok() {}
