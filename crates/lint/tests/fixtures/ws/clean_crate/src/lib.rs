//! Workspace fixture: a crate that declares the required policy.

#![forbid(unsafe_code)]

/// Nothing to see here.
pub fn ok() {}
