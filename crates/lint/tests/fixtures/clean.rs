// Fixture: near-misses that must NOT fire any rule, even when classified
// as both digest scope and hot path.

use std::collections::BTreeMap;

pub fn quantile_sorted(v: &mut [f64]) -> Option<f64> {
    v.sort_by(|a, b| a.total_cmp(b));
    v.first().copied()
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn lookup(m: &BTreeMap<u32, u32>, k: u32) -> u32 {
    m.get(&k).copied().unwrap_or(0)
}

pub fn array_literal() -> [u8; 3] {
    [1, 2, 3]
}

pub fn strings_are_not_code() -> &'static str {
    "HashMap Instant::now() .unwrap() xs[0] thread_rng() env!(X)"
}

pub fn justified(xs: &[u64]) -> u64 {
    // odalint: allow(panic-unwrap) -- fixture: a justified allow is clean
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    // Test regions are exempt from determinism and panic rules.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![std::time::Instant::now()];
        assert!(v.first().unwrap().elapsed().as_nanos() < u128::MAX);
    }
}
