// Fixture: malformed and stale inline allows (rule: allow-hygiene).

// odalint: allow(wall-clock)
pub fn missing_justification() {}

// odalint: allow(float-eq) -- this suppresses nothing at all
pub fn stale_allow() {}
