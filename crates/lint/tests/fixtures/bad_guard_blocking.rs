//! Fixture: a lock guard held live across a blocking send on a bounded
//! channel — the consumer may be blocked on this very lock.
use crossbeam_channel::{bounded, Receiver};
use std::sync::Mutex;

pub struct Queue {
    state: Mutex<u64>,
}

impl Queue {
    pub fn pump(&self) {
        let (tx, rx) = bounded(1);
        let g = self.state.lock().unwrap();
        tx.send(*g).ok();
        drop(g);
        drain(rx);
    }
}

fn drain(rx: Receiver<u64>) {
    let _ = rx.recv();
}
