// Fixture: entropy-seeded randomness in digest scope (rule: unseeded-rng).

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
