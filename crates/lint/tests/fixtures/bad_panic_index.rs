// Fixture: direct slice indexing on a hot path (rule: panic-index).

pub fn third(xs: &[u64]) -> u64 {
    xs[2]
}
