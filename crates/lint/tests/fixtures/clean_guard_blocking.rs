//! Near-miss: the guard is dropped via `drop()` *before* the bounded
//! send, so nothing blocks while the lock is held.
use crossbeam_channel::{bounded, Receiver};
use std::sync::Mutex;

pub struct Queue {
    state: Mutex<u64>,
}

impl Queue {
    pub fn pump(&self) {
        let (tx, rx) = bounded(1);
        let g = self.state.lock().unwrap();
        let v = *g;
        drop(g);
        tx.send(v).ok();
        drain(rx);
    }
}

fn drain(rx: Receiver<u64>) {
    let _ = rx.recv();
}
