// Fixture: ambient wall-clock reads in digest scope (rule: wall-clock).

pub fn now_pair() -> u128 {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    t.elapsed().as_nanos() + s.elapsed().map(|d| d.as_nanos()).unwrap_or(0)
}
