//! Near-miss: the same two mutexes, but both paths take them in the
//! same order — a consistent hierarchy, not a cycle.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let g = self.a.lock().unwrap();
        let x = self.nested();
        drop(g);
        x
    }

    pub fn nested(&self) -> u64 {
        let g = self.a.lock().unwrap();
        let h = self.b.lock().unwrap();
        *g + *h
    }
}
