// Fixture: ambient environment inputs in digest scope (rule: ambient-env).

pub const BUILT_FOR: &str = env!("CARGO_PKG_VERSION");

pub fn mode() -> String {
    std::env::var("ODA_MODE").unwrap_or_default()
}
