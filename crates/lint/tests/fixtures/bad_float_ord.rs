// Fixture: NaN-panicking float ordering (rule: float-ord).

pub fn sort_desc(v: &mut [f64]) {
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
}
