//! Fixture: two functions take the same two mutexes in opposite order,
//! connected by a call edge — the classic ABBA deadlock.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let g = self.a.lock().unwrap();
        let x = self.reverse();
        drop(g);
        x
    }

    pub fn reverse(&self) -> u64 {
        let g = self.b.lock().unwrap();
        let h = self.a.lock().unwrap();
        *g + *h
    }
}
