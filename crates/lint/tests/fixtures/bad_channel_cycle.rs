//! Fixture: a consumer loop that sends on its own bounded queue — once
//! the queue fills, the consumer blocks on itself and never drains.
use crossbeam_channel::{bounded, Receiver, Sender};

pub fn feedback() {
    let (tx, rx) = bounded(4);
    pump(tx, rx);
}

fn pump(tx: Sender<u64>, rx: Receiver<u64>) {
    while let Ok(v) = rx.recv() {
        tx.send(v + 1).ok();
    }
}
