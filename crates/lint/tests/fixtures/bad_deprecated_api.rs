// Fixture: reintroducing a deprecated shim (rule: deprecated-api).

#[deprecated(note = "use the builder")]
pub fn old_entry() {}
