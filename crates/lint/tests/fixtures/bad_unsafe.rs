// Fixture: unsafe block with no SAFETY comment (rule: unsafe-block).

pub fn first_byte(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
