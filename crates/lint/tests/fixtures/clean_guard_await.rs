//! Near-miss: the guard lives only inside an inner block that ends
//! before the `.await`, so nothing is held across the suspension.
use std::sync::Mutex;

pub struct S {
    state: Mutex<u64>,
}

impl S {
    pub async fn tick(&self, fut: impl std::future::Future<Output = u64>) -> u64 {
        let v = {
            let g = self.state.lock().unwrap();
            *g
        };
        fut.await + v
    }
}
