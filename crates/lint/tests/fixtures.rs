//! Fixture tests: every rule must fire on its known-bad fixture at the
//! expected span, the clean fixture must produce zero findings, the JSON
//! report must be byte-stable, and the real workspace must lint clean.

use lint::{lint_source, lint_workspace, parse_allowlist, report, Config};
use std::path::Path;

/// Digest-scope rel path (determinism + float rules apply).
const DIGEST: &str = "crates/core/src/fixture.rs";
/// Hot-path rel path (panic rules apply too — this is a real hot file
/// name from the workspace scope map).
const HOT: &str = "crates/telemetry/src/store.rs";

fn cfg() -> Config {
    Config::workspace_default()
}

/// (rule, line) pairs of every violation, for compact span asserts.
fn spans(rel: &str, src: &str) -> Vec<(String, u32)> {
    lint_source(rel, src, &cfg())
        .violations
        .iter()
        .map(|v| (v.rule.clone(), v.line))
        .collect()
}

#[test]
fn wall_clock_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_wall_clock.rs"));
    assert_eq!(
        got,
        vec![("wall-clock".to_string(), 4), ("wall-clock".to_string(), 5)]
    );
}

#[test]
fn ambient_env_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_ambient_env.rs"));
    assert_eq!(
        got,
        vec![
            ("ambient-env".to_string(), 3),
            ("ambient-env".to_string(), 6)
        ]
    );
}

#[test]
fn unseeded_rng_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_unseeded_rng.rs"));
    assert_eq!(got, vec![("unseeded-rng".to_string(), 4)]);
}

#[test]
fn hash_iter_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_hash_iter.rs"));
    assert!(
        got.iter().all(|(r, _)| r == "hash-iter") && got.iter().any(|&(_, l)| l == 4),
        "{got:?}"
    );
}

#[test]
fn panic_unwrap_fires_only_on_hot_paths() {
    let src = include_str!("fixtures/bad_panic_unwrap.rs");
    let got = spans(HOT, src);
    assert_eq!(
        got,
        vec![
            ("panic-unwrap".to_string(), 4),
            ("panic-unwrap".to_string(), 8)
        ]
    );
    // The same source off the hot path is clean.
    assert_eq!(spans(DIGEST, src), vec![]);
}

#[test]
fn panic_index_fires_with_column() {
    let out = lint_source(HOT, include_str!("fixtures/bad_panic_index.rs"), &cfg());
    assert_eq!(out.violations.len(), 1);
    let v = &out.violations[0];
    assert_eq!((v.rule.as_str(), v.line, v.col), ("panic-index", 4, 7));
}

#[test]
fn float_eq_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_float_eq.rs"));
    assert_eq!(
        got,
        vec![("float-eq".to_string(), 4), ("float-eq".to_string(), 8)]
    );
}

#[test]
fn float_ord_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_float_ord.rs"));
    assert_eq!(got, vec![("float-ord".to_string(), 4)]);
}

#[test]
fn unsafe_block_fires_and_inventories() {
    let out = lint_source(DIGEST, include_str!("fixtures/bad_unsafe.rs"), &cfg());
    assert_eq!(out.violations.len(), 1);
    assert_eq!(out.violations[0].rule, "unsafe-block");
    assert_eq!(out.violations[0].line, 4);
    assert_eq!(out.unsafe_inventory.len(), 1);
    assert!(!out.unsafe_inventory[0].safety_comment);
}

#[test]
fn deprecated_api_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_deprecated_api.rs"));
    assert_eq!(got, vec![("deprecated-api".to_string(), 3)]);
}

#[test]
fn allow_hygiene_fires_on_malformed_and_stale() {
    let got = spans(DIGEST, include_str!("fixtures/bad_allow_hygiene.rs"));
    assert_eq!(
        got,
        vec![
            ("allow-hygiene".to_string(), 3),
            ("allow-hygiene".to_string(), 6)
        ]
    );
}

#[test]
fn lock_order_fires_with_both_witness_paths() {
    let out = lint_source(DIGEST, include_str!("fixtures/bad_lock_order.rs"), &cfg());
    assert_eq!(
        out.violations
            .iter()
            .map(|v| (v.rule.clone(), v.line))
            .collect::<Vec<_>>(),
        vec![("lock-order".to_string(), 13)]
    );
    // The report must name BOTH witness acquisition paths.
    let msg = &out.violations[0].message;
    assert!(msg.contains("Pair.a -> Pair.b"), "{msg}");
    assert!(msg.contains("Pair.b -> Pair.a"), "{msg}");
    assert!(msg.contains("Pair::forward -> Pair::reverse"), "{msg}");
    // Both directed edges land in the concurrency section.
    let dirs: Vec<(String, String)> = out
        .concurrency
        .lock_order_edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    assert!(dirs.contains(&("Pair.a".to_string(), "Pair.b".to_string())));
    assert!(dirs.contains(&("Pair.b".to_string(), "Pair.a".to_string())));
}

#[test]
fn lock_order_near_miss_consistent_hierarchy_is_clean() {
    let out = lint_source(DIGEST, include_str!("fixtures/clean_lock_order.rs"), &cfg());
    assert_eq!(out.violations.len(), 0, "{:?}", out.violations);
    // The acyclic hierarchy is still documented as edges.
    assert!(!out.concurrency.lock_order_edges.is_empty());
}

#[test]
fn guard_across_blocking_fires_on_bounded_send() {
    let got = spans(DIGEST, include_str!("fixtures/bad_guard_blocking.rs"));
    assert_eq!(got, vec![("guard-across-blocking".to_string(), 14)]);
}

#[test]
fn guard_across_blocking_near_miss_dropped_guard_is_clean() {
    let got = spans(DIGEST, include_str!("fixtures/clean_guard_blocking.rs"));
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn guard_across_await_point_fires() {
    let got = spans(DIGEST, include_str!("fixtures/bad_guard_await.rs"));
    assert_eq!(got, vec![("guard-across-await-point".to_string(), 12)]);
}

#[test]
fn guard_across_await_near_miss_scoped_guard_is_clean() {
    let got = spans(DIGEST, include_str!("fixtures/clean_guard_await.rs"));
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn channel_cycle_fires_on_bounded_feedback() {
    let out = lint_source(
        DIGEST,
        include_str!("fixtures/bad_channel_cycle.rs"),
        &cfg(),
    );
    assert_eq!(
        out.violations
            .iter()
            .map(|v| (v.rule.clone(), v.line))
            .collect::<Vec<_>>(),
        vec![("channel-cycle".to_string(), 12)]
    );
    // The channel inventory records the bounded ctor.
    assert_eq!(out.concurrency.channels.len(), 1);
    assert!(out.concurrency.channels[0].bounded);
    assert_eq!(out.concurrency.channels[0].capacity.as_deref(), Some("4"));
}

#[test]
fn channel_cycle_near_miss_unbounded_is_clean() {
    let out = lint_source(
        DIGEST,
        include_str!("fixtures/clean_channel_cycle.rs"),
        &cfg(),
    );
    assert_eq!(out.violations.len(), 0, "{:?}", out.violations);
    assert_eq!(out.concurrency.channels.len(), 1);
    assert!(!out.concurrency.channels[0].bounded);
}

#[test]
fn inline_allow_suppresses_concurrency_finding() {
    let src = include_str!("fixtures/bad_guard_blocking.rs").replace(
        "tx.send(*g).ok();",
        "tx.send(*g).ok(); // odalint: allow(guard-across-blocking) -- fixture exercises the escape hatch",
    );
    let out = lint_source(DIGEST, &src, &cfg());
    assert_eq!(out.violations.len(), 0, "{:?}", out.violations);
    assert_eq!(out.allowed.len(), 1);
    assert_eq!(out.allowed[0].rule, "guard-across-blocking");
}

/// Regression: a well-formed allow of a *new* (v2) rule that suppresses
/// nothing must be flagged stale, exactly like the v1 rules.
#[test]
fn stale_allow_of_concurrency_rule_is_flagged() {
    let src =
        "//! doc\n// odalint: allow(lock-order) -- left over after a refactor\npub fn ok() {}\n";
    let got = spans(DIGEST, src);
    assert_eq!(got, vec![("allow-hygiene".to_string(), 2)]);
}

#[test]
fn forbid_unsafe_fires_per_crate_in_fixture_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let mut cfg = cfg();
    cfg.skip_prefixes.clear();
    let out = lint_workspace(&root, &cfg).expect("fixture tree lints");
    let got: Vec<(String, String, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.clone(), v.file.clone(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![(
            "forbid-unsafe".to_string(),
            "missing/src/lib.rs".to_string(),
            1
        )]
    );
    // The audited unsafe crate contributes an inventory entry with a
    // SAFETY comment and no violation.
    assert_eq!(out.unsafe_inventory.len(), 1);
    assert!(out.unsafe_inventory[0].safety_comment);
}

#[test]
fn clean_fixture_has_zero_findings_even_on_hot_digest_path() {
    let src = include_str!("fixtures/clean.rs");
    let out = lint_source(HOT, src, &cfg());
    assert_eq!(
        out.violations
            .iter()
            .map(|v| format!("{}:{}:{} {}", v.file, v.line, v.col, v.rule))
            .collect::<Vec<_>>(),
        Vec::<String>::new()
    );
    // Exactly the one justified allow fired.
    assert_eq!(out.allowed.len(), 1);
    assert_eq!(out.allowed[0].rule, "panic-unwrap");
}

#[test]
fn every_rule_has_a_firing_fixture() {
    let mut fired: Vec<String> = Vec::new();
    for (rel, src) in [
        (DIGEST, include_str!("fixtures/bad_wall_clock.rs")),
        (DIGEST, include_str!("fixtures/bad_ambient_env.rs")),
        (DIGEST, include_str!("fixtures/bad_unseeded_rng.rs")),
        (DIGEST, include_str!("fixtures/bad_hash_iter.rs")),
        (HOT, include_str!("fixtures/bad_panic_unwrap.rs")),
        (HOT, include_str!("fixtures/bad_panic_index.rs")),
        (DIGEST, include_str!("fixtures/bad_float_eq.rs")),
        (DIGEST, include_str!("fixtures/bad_float_ord.rs")),
        (DIGEST, include_str!("fixtures/bad_unsafe.rs")),
        (DIGEST, include_str!("fixtures/bad_deprecated_api.rs")),
        (DIGEST, include_str!("fixtures/bad_allow_hygiene.rs")),
        (DIGEST, include_str!("fixtures/bad_lock_order.rs")),
        (DIGEST, include_str!("fixtures/bad_guard_blocking.rs")),
        (DIGEST, include_str!("fixtures/bad_guard_await.rs")),
        (DIGEST, include_str!("fixtures/bad_channel_cycle.rs")),
    ] {
        for v in lint_source(rel, src, &cfg()).violations {
            if !fired.contains(&v.rule) {
                fired.push(v.rule);
            }
        }
    }
    // forbid-unsafe fires via the fixture tree test.
    fired.push("forbid-unsafe".to_string());
    let missing: Vec<&str> = lint::rules::RULES
        .iter()
        .map(|r| r.id)
        .filter(|id| !fired.iter().any(|f| f == id))
        .collect();
    assert_eq!(missing, Vec::<&str>::new(), "rules without fixtures");
}

#[test]
fn report_is_byte_stable() {
    let src = include_str!("fixtures/bad_wall_clock.rs");
    let a = report::render(&lint_source(DIGEST, src, &cfg()));
    let b = report::render(&lint_source(DIGEST, src, &cfg()));
    assert_eq!(a, b, "same input must render identical bytes");
    assert!(a.contains("\"schema\": \"odalint-report/v2\""));
    assert!(a.contains("\"concurrency\""));
    assert!(a.ends_with('\n'));
}

/// The v2 concurrency section itself must be byte-stable: render a
/// fixture that populates both edges and channels, twice.
#[test]
fn v2_concurrency_section_is_byte_stable() {
    let files = [
        (
            "crates/core/src/a.rs",
            include_str!("fixtures/bad_lock_order.rs"),
        ),
        (
            "crates/core/src/b.rs",
            include_str!("fixtures/bad_channel_cycle.rs"),
        ),
    ];
    let a = report::render(&lint::lint_sources(&files, &cfg()));
    let b = report::render(&lint::lint_sources(&files, &cfg()));
    assert_eq!(a, b);
    assert!(a.contains("\"lock_order_edges\""));
    assert!(a.contains("\"channels\""));
    assert!(a.contains("\"bounded\": true"));
}

/// Smoke check for the CI gate: appending a single new violating line to
/// otherwise-clean digest-scope source must flip the outcome to failing,
/// which is exactly what makes `ci.sh` exit nonzero.
#[test]
fn deliberate_violation_trips_the_gate() {
    let clean = include_str!("fixtures/clean.rs");
    let out = lint_source(HOT, clean, &cfg());
    assert!(out.violations.is_empty());
    let sabotaged =
        format!("{clean}\npub fn sneak() -> std::time::Instant {{ std::time::Instant::now() }}\n");
    let out = lint_source(HOT, &sabotaged, &cfg());
    assert_eq!(out.violations.len(), 1);
    assert_eq!(out.violations[0].rule, "wall-clock");
}

/// The committed workspace must lint clean with the committed allowlist —
/// the same invariant `ci.sh` enforces, kept inside `cargo test` so a
/// violation fails the ordinary test run too.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let mut cfg = Config::workspace_default();
    let allow = root.join(lint::ALLOWLIST_FILE);
    if let Ok(content) = std::fs::read_to_string(&allow) {
        cfg.allowlist = parse_allowlist(&content).expect("allowlist parses");
    }
    let out = lint_workspace(&root, &cfg).expect("workspace lints");
    let rendered: Vec<String> = out
        .violations
        .iter()
        .map(|v| format!("{}:{}:{}: {}: {}", v.file, v.line, v.col, v.rule, v.message))
        .collect();
    assert_eq!(rendered, Vec::<String>::new(), "workspace must lint clean");
    // The v2 concurrency section must be *populated* on the real tree:
    // the coordinator's failover path creates a real lock-order edge and
    // the shard command queue is a real bounded channel.
    assert!(
        !out.concurrency.lock_order_edges.is_empty(),
        "expected at least one lock-order edge"
    );
    assert!(
        out.concurrency
            .channels
            .iter()
            .any(|c| c.bounded && c.file.starts_with("crates/telemetry/src/cluster/")),
        "expected a bounded channel from cluster/: {:?}",
        out.concurrency.channels
    );
}
