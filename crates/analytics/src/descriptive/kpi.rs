//! Operational key performance indicators.
//!
//! The descriptive row of the paper's Table I is anchored on site-level
//! indicators: PUE (Yuventi & Mehdizadeh), ITUE/TUE (Patterson et al.,
//! ISC'13), the job slowdown (Feitelson, JSSPP'01) and the System
//! Information Entropy (Hui et al., FTXS'18). All are simple, but getting
//! the denominators and edge cases right is exactly the kind of thing a
//! shared library should own.

use crate::descriptive::stats::Histogram;

/// Power Usage Effectiveness: total facility power over IT power.
///
/// Returns `None` when IT power is non-positive (an undefined PUE, not an
/// infinite one — idle sites should not report ∞ on dashboards).
pub fn pue(total_facility_kw: f64, it_kw: f64) -> Option<f64> {
    (it_kw > 0.0).then(|| total_facility_kw / it_kw)
}

/// IT Power Usage Effectiveness: total IT power over "useful" compute power
/// (power that reaches CPUs/memory rather than node fans, PSUs, etc.).
///
/// Same convention as [`pue`]: `None` for a non-positive denominator.
pub fn itue(total_it_kw: f64, compute_kw: f64) -> Option<f64> {
    (compute_kw > 0.0).then(|| total_it_kw / compute_kw)
}

/// Total-level Usage Effectiveness: `TUE = PUE × ITUE` (Patterson et al.).
pub fn tue(pue: f64, itue: f64) -> f64 {
    pue * itue
}

/// Energy-reuse effectiveness given reused heat (e.g. district heating).
pub fn ere(total_facility_kw: f64, reused_kw: f64, it_kw: f64) -> Option<f64> {
    (it_kw > 0.0).then(|| (total_facility_kw - reused_kw) / it_kw)
}

/// Bounded slowdown of one job (Feitelson): `max(1, (wait+run)/max(run, τ))`.
pub fn bounded_slowdown(wait_s: f64, run_s: f64, bound_s: f64) -> f64 {
    ((wait_s + run_s) / run_s.max(bound_s)).max(1.0)
}

/// Mean bounded slowdown over a set of `(wait, run)` pairs.
pub fn mean_bounded_slowdown(jobs: &[(f64, f64)], bound_s: f64) -> Option<f64> {
    if jobs.is_empty() {
        return None;
    }
    Some(
        jobs.iter()
            .map(|&(w, r)| bounded_slowdown(w, r, bound_s))
            .sum::<f64>()
            / jobs.len() as f64,
    )
}

/// System Information Entropy (after Hui et al.'s LogSCAN metric): the
/// Shannon entropy of the distribution of observed system states, tracked
/// over a stream of state observations.
///
/// A system sitting in one state has zero entropy; erratic transitions push
/// the entropy towards `log2(states)`. Operators use the trend as a cheap
/// one-number summary of "how unsettled is the machine".
#[derive(Debug, Clone)]
pub struct SystemInformationEntropy {
    hist: Histogram,
}

impl SystemInformationEntropy {
    /// Creates the tracker for state indices `0..states`.
    pub fn new(states: usize) -> Self {
        SystemInformationEntropy {
            hist: Histogram::new(0.0, states as f64, states.max(1)),
        }
    }

    /// Records one observation of `state`.
    pub fn observe(&mut self, state: usize) {
        self.hist.push(state as f64 + 0.5);
    }

    /// Current entropy, bits.
    pub fn entropy_bits(&self) -> f64 {
        self.hist.entropy_bits()
    }

    /// Entropy normalised to `[0, 1]` by the maximum possible for the state
    /// count.
    pub fn normalized(&self) -> f64 {
        let max = (self.hist.counts().len() as f64).log2();
        if max <= 0.0 {
            0.0
        } else {
            self.entropy_bits() / max
        }
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.hist.total()
    }
}

/// Discretises a node's telemetry into a coarse state index for SIE
/// tracking: 3 utilization bands × 2 thermal bands = 6 states.
pub fn node_state(util: f64, temp_c: f64, hot_threshold_c: f64) -> usize {
    let u = if util < 0.1 {
        0
    } else if util < 0.7 {
        1
    } else {
        2
    };
    let t = usize::from(temp_c >= hot_threshold_c);
    u * 2 + t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pue_conventions() {
        assert_eq!(pue(150.0, 100.0), Some(1.5));
        assert_eq!(pue(150.0, 0.0), None);
        assert_eq!(pue(150.0, -1.0), None);
    }

    #[test]
    fn itue_and_tue_compose() {
        let p = pue(150.0, 100.0).unwrap();
        let i = itue(100.0, 80.0).unwrap();
        assert!((tue(p, i) - 150.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn ere_subtracts_reuse() {
        assert_eq!(ere(150.0, 50.0, 100.0), Some(1.0));
        assert_eq!(ere(150.0, 0.0, 100.0), pue(150.0, 100.0));
    }

    #[test]
    fn slowdown_floors_at_one_and_bounds_tiny_jobs() {
        assert_eq!(bounded_slowdown(0.0, 100.0, 10.0), 1.0);
        // 1-second job that waited 100 s: unbounded slowdown would be 101;
        // bounded with τ=10 gives 10.1.
        assert!((bounded_slowdown(100.0, 1.0, 10.0) - 10.1).abs() < 1e-12);
        assert_eq!(mean_bounded_slowdown(&[], 10.0), None);
        let m = mean_bounded_slowdown(&[(0.0, 100.0), (100.0, 100.0)], 10.0).unwrap();
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sie_zero_for_stable_system() {
        let mut sie = SystemInformationEntropy::new(6);
        for _ in 0..100 {
            sie.observe(2);
        }
        assert_eq!(sie.entropy_bits(), 0.0);
        assert_eq!(sie.normalized(), 0.0);
    }

    #[test]
    fn sie_max_for_uniform_states() {
        let mut sie = SystemInformationEntropy::new(4);
        for i in 0..400 {
            sie.observe(i % 4);
        }
        assert!((sie.entropy_bits() - 2.0).abs() < 1e-9);
        assert!((sie.normalized() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_state_bands() {
        assert_eq!(node_state(0.0, 40.0, 80.0), 0);
        assert_eq!(node_state(0.0, 85.0, 80.0), 1);
        assert_eq!(node_state(0.5, 40.0, 80.0), 2);
        assert_eq!(node_state(0.95, 85.0, 80.0), 5);
    }
}
