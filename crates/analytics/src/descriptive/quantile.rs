//! Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
//! 1985).
//!
//! Dashboards want P95/P99 of high-rate sensors without keeping the samples.
//! P² maintains five markers whose heights are adjusted with a piecewise-
//! parabolic update; memory is O(1) and per-sample cost is a handful of
//! flops. Accuracy is ample for operational percentiles (relative error well
//! under a percent on smooth distributions).

/// P² estimator for a single quantile `q`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates).
    heights: [f64; 5],
    /// Marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per sample.
    increments: [f64; 5],
    /// Samples seen so far.
    count: u64,
    /// First five samples, before the marker invariant is established.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one sample (non-finite values are ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.total_cmp(b));
                for (h, &v) in self.heights.iter_mut().zip(self.initial.iter()) {
                    *h = v;
                }
            }
            return;
        }
        // Find the cell k containing x and update extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }
        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (None before any sample; exact for ≤ 5 samples).
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            // Exact small-sample quantile.
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.total_cmp(b));
            let pos = self.q * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            return Some(if lo == hi {
                v[lo]
            } else {
                v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
            });
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut rnd = lcg(1);
        for _ in 0..50_000 {
            p.push(rnd());
        }
        let est = p.value().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median {est}");
    }

    #[test]
    fn p95_of_uniform_stream() {
        let mut p = P2Quantile::new(0.95);
        let mut rnd = lcg(2);
        for _ in 0..50_000 {
            p.push(rnd() * 100.0);
        }
        let est = p.value().unwrap();
        assert!((est - 95.0).abs() < 1.5, "p95 {est}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        assert!(p.value().is_none());
        p.push(3.0);
        assert_eq!(p.value(), Some(3.0));
        p.push(1.0);
        assert_eq!(p.value(), Some(2.0)); // interpolated median of {1,3}
        p.push(2.0);
        assert_eq!(p.value(), Some(2.0));
    }

    #[test]
    fn ignores_non_finite() {
        let mut p = P2Quantile::new(0.5);
        p.push(f64::NAN);
        p.push(f64::INFINITY);
        assert_eq!(p.count(), 0);
        p.push(1.0);
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn skewed_distribution() {
        // Exponential-ish via inverse CDF; median of Exp(1) = ln 2.
        let mut p = P2Quantile::new(0.5);
        let mut rnd = lcg(3);
        for _ in 0..50_000 {
            let u: f64 = rnd().max(1e-12);
            p.push(-u.ln());
        }
        let est = p.value().unwrap();
        assert!((est - std::f64::consts::LN_2).abs() < 0.05, "median {est}");
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_degenerate_quantile() {
        P2Quantile::new(1.0);
    }
}
