//! Streaming and windowed statistics.
//!
//! All estimators here are single-pass and allocation-free in steady state,
//! suitable for per-sample ingest-path use (Welford's algorithm for
//! mean/variance, EWMA smoothing, fixed-window rolling statistics) plus
//! batch correlation helpers for multivariate diagnostics.

use std::collections::VecDeque;

/// Welford's online mean/variance estimator.
///
/// Non-finite samples are skipped (and counted): a single NaN from a
/// degraded sensor must not poison a long-running aggregate.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    skipped: u64,
}

impl Welford {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one sample. Non-finite samples are ignored and counted in
    /// [`skipped`](Self::skipped).
    #[inline]
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of non-finite samples skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Current mean (0 for the empty estimator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (n−1 denominator; 0 for n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Exponentially-weighted moving average (and variance).
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    mean: Option<f64>,
    var: f64,
    skipped: u64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]` (higher =
    /// faster to react).
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma {
            alpha,
            mean: None,
            var: 0.0,
            skipped: 0,
        }
    }

    /// Feeds one sample and returns the updated mean. Non-finite samples
    /// are skipped (the previous mean, or NaN before any sample, is
    /// returned unchanged).
    pub fn push(&mut self, x: f64) -> f64 {
        if !x.is_finite() {
            self.skipped += 1;
            return self.mean.unwrap_or(f64::NAN);
        }
        match self.mean {
            None => {
                self.mean = Some(x);
                x
            }
            Some(m) => {
                let d = x - m;
                let new_m = m + self.alpha * d;
                // EW variance of the residuals.
                self.var = (1.0 - self.alpha) * (self.var + self.alpha * d * d);
                self.mean = Some(new_m);
                new_m
            }
        }
    }

    /// Current smoothed value (None before any sample).
    pub fn mean(&self) -> Option<f64> {
        self.mean
    }

    /// Exponentially-weighted standard deviation of the innovations.
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Number of non-finite samples skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Fixed-length sliding-window statistics (mean/var/min/max).
///
/// Mean and variance are maintained incrementally; min/max scan the window
/// on demand (windows are small — dashboards use tens to hundreds of
/// samples).
#[derive(Debug, Clone)]
pub struct RollingStats {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    sum_sq: f64,
    skipped: u64,
}

impl RollingStats {
    /// Creates a window of `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        RollingStats {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            sum_sq: 0.0,
            skipped: 0,
        }
    }

    /// Feeds one sample, evicting the oldest when full. Non-finite samples
    /// are skipped and counted — they neither enter nor age the window.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        if self.window.len() == self.capacity {
            let old = self.window.pop_front().unwrap();
            self.sum -= old;
            self.sum_sq -= old * old;
        }
        self.window.push_back(x);
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// `true` when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// `true` once the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// Window mean (None when empty).
    pub fn mean(&self) -> Option<f64> {
        (!self.window.is_empty()).then(|| self.sum / self.window.len() as f64)
    }

    /// Window population variance (clamped at 0 against rounding).
    pub fn variance(&self) -> Option<f64> {
        let n = self.window.len() as f64;
        (!self.window.is_empty()).then(|| (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0))
    }

    /// Window standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Window minimum.
    pub fn min(&self) -> Option<f64> {
        self.window.iter().copied().reduce(f64::min)
    }

    /// Window maximum.
    pub fn max(&self) -> Option<f64> {
        self.window.iter().copied().reduce(f64::max)
    }

    /// Z-score of `x` against the window (None if fewer than 2 samples or
    /// zero variance).
    pub fn z_score(&self, x: f64) -> Option<f64> {
        if self.window.len() < 2 {
            return None;
        }
        let sd = self.std_dev()?;
        (sd > 1e-12).then(|| (x - self.mean().unwrap()) / sd)
    }

    /// Iterates over the window's contents, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.window.iter().copied()
    }

    /// Number of non-finite samples skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns `None` when lengths differ, fewer than 2 points, or either series
/// is constant. NaN pairs are skipped (aligned telemetry uses NaN for
/// missing buckets).
pub fn correlation(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let pairs: Vec<(f64, f64)> = a
        .iter()
        .zip(b)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx <= 1e-300 || syy <= 1e-300 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation: Pearson on ranks (mean rank for ties).
///
/// NaN pairs are skipped, like [`correlation`] — and they must be dropped
/// *before* ranking: a non-finite cell has no meaningful rank, and letting
/// it sort arbitrarily would shift every other rank and silently corrupt ρ
/// (aligned telemetry uses NaN for missing buckets).
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = a
        .iter()
        .zip(b)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .unzip();
    if xs.len() < 2 {
        return None;
    }
    correlation(&ranks(&xs), &ranks(&ys))
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&i, &j| {
        xs[i]
            .partial_cmp(&xs[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut r = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            r[k] = mean_rank;
        }
        i = j + 1;
    }
    r
}

/// Simple linear regression `y = a + b·x` over paired slices.
/// Returns `(intercept, slope)`, or None for degenerate input.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx).powi(2)).sum();
    if sxx <= 1e-300 {
        return None;
    }
    let sxy: f64 = x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    let slope = sxy / sxx;
    Some((my - slope * mx, slope))
}

/// Fixed-bin histogram over a closed range; out-of-range samples clamp into
/// the edge bins (dashboards want totals to add up).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && lo < hi, "invalid histogram shape");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalised bin probabilities (empty histogram → all zeros).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Shannon entropy of the bin distribution, in bits.
    pub fn entropy_bits(&self) -> f64 {
        self.probabilities()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn estimators_skip_non_finite_samples() {
        let mut w = Welford::new();
        for x in [2.0, f64::NAN, 4.0, f64::INFINITY, 6.0, f64::NEG_INFINITY] {
            w.push(x);
        }
        assert_eq!(w.count(), 3);
        assert_eq!(w.skipped(), 3);
        assert!((w.mean() - 4.0).abs() < 1e-12);
        assert!(w.variance().is_finite());

        let mut e = Ewma::new(0.5);
        assert!(e.push(f64::NAN).is_nan(), "no history yet");
        e.push(10.0);
        assert_eq!(e.push(f64::NAN), 10.0, "NaN returns previous mean");
        assert_eq!(e.mean(), Some(10.0));
        assert_eq!(e.skipped(), 2);

        let mut r = RollingStats::new(3);
        r.push(1.0);
        r.push(f64::NAN);
        r.push(2.0);
        r.push(3.0);
        r.push(f64::NAN);
        assert_eq!(r.len(), 3, "NaN never entered the window");
        assert_eq!(r.mean(), Some(2.0));
        assert_eq!(r.skipped(), 2);
        r.push(4.0); // evicts 1.0, not a phantom NaN slot
        assert_eq!(r.mean(), Some(3.0));
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        for _ in 0..100 {
            e.push(5.0);
        }
        assert!((e.mean().unwrap() - 5.0).abs() < 1e-9);
        assert!(e.std_dev() < 1e-6);
    }

    #[test]
    fn ewma_tracks_step_change() {
        let mut e = Ewma::new(0.5);
        for _ in 0..10 {
            e.push(0.0);
        }
        for _ in 0..10 {
            e.push(10.0);
        }
        assert!(e.mean().unwrap() > 9.9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn rolling_stats_window_semantics() {
        let mut r = RollingStats::new(3);
        assert!(r.mean().is_none());
        r.push(1.0);
        r.push(2.0);
        r.push(3.0);
        assert!(r.is_full());
        assert_eq!(r.mean(), Some(2.0));
        r.push(10.0); // evicts 1.0 → window [2,3,10]
        assert_eq!(r.mean(), Some(5.0));
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(10.0));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn rolling_z_score() {
        let mut r = RollingStats::new(100);
        for i in 0..100 {
            r.push((i % 2) as f64); // mean 0.5, sd 0.5
        }
        let z = r.z_score(1.5).unwrap();
        assert!((z - 2.0).abs() < 1e-9);
        // Constant window → None.
        let mut c = RollingStats::new(10);
        for _ in 0..10 {
            c.push(4.0);
        }
        assert!(c.z_score(5.0).is_none());
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_handles_nan_and_constants() {
        let a = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let b = [2.0, 100.0, 6.0, 8.0, 10.0];
        assert!((correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let flat = [3.0, 3.0, 3.0];
        assert!(correlation(&flat, &[1.0, 2.0, 3.0]).is_none());
        assert!(correlation(&[1.0], &[1.0]).is_none());
        assert!(correlation(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear: Pearson < 1, Spearman = 1.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!(correlation(&a, &b).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_skips_nan_pairs_before_ranking() {
        // A NaN gap cell (ragged alignment) must not shift the other ranks:
        // without the gap pair, the series are perfectly monotone.
        let a = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let b = [10.0, 999.0, 30.0, 40.0, 50.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        // Symmetric: the gap on the other side is dropped too.
        let c = [10.0, 20.0, f64::NAN, 40.0, 50.0];
        assert!((spearman(&a, &c).unwrap() - 1.0).abs() < 1e-12);
        // Too few finite pairs → no coefficient rather than a fabricated one.
        assert!(spearman(&[1.0, f64::NAN, f64::NAN], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = linear_fit(&x, &y).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn histogram_bins_and_entropy() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert!((h.entropy_bits() - 10f64.log2()).abs() < 1e-9);
        // Out-of-range clamps.
        h.push(-5.0);
        h.push(50.0);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 12);
    }
}
