//! Outlier removal — part of the paper's definition of descriptive
//! analytics ("normalization, aggregation, outlier removal").
//!
//! Two robust filters: Tukey's IQR fences and the MAD (median absolute
//! deviation) rule. Both are resistant to the outliers they remove, unlike
//! a naive z-score trim, which matters on monitoring data where a stuck
//! sensor can emit values that dominate mean and variance.

/// Median of a slice (interpolated for even lengths). `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Interpolated quantile of a slice (`q ∈ [0,1]`). `None` when empty.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    })
}

/// Tukey fences: values outside `[Q1 − k·IQR, Q3 + k·IQR]` are outliers
/// (`k = 1.5` is the classic choice).
#[derive(Debug, Clone, Copy)]
pub struct IqrFences {
    /// Lower fence.
    pub lo: f64,
    /// Upper fence.
    pub hi: f64,
}

impl IqrFences {
    /// Computes fences from data. `None` when the data is empty.
    pub fn fit(xs: &[f64], k: f64) -> Option<Self> {
        let q1 = quantile(xs, 0.25)?;
        let q3 = quantile(xs, 0.75)?;
        let iqr = q3 - q1;
        Some(IqrFences {
            lo: q1 - k * iqr,
            hi: q3 + k * iqr,
        })
    }

    /// Whether `x` is an outlier.
    pub fn is_outlier(&self, x: f64) -> bool {
        !x.is_finite() || x < self.lo || x > self.hi
    }
}

/// Removes IQR outliers, returning the retained values in order.
pub fn trim_iqr(xs: &[f64], k: f64) -> Vec<f64> {
    match IqrFences::fit(xs, k) {
        Some(f) => xs.iter().copied().filter(|&x| !f.is_outlier(x)).collect(),
        None => Vec::new(),
    }
}

/// MAD-based robust z-score: `0.6745 · (x − median) / MAD`.
/// Returns `None` when MAD is zero (constant data).
pub fn mad_z_scores(xs: &[f64]) -> Option<Vec<f64>> {
    let med = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|&x| (x - med).abs()).collect();
    let mad = median(&deviations)?;
    if mad <= 1e-300 {
        return None;
    }
    Some(xs.iter().map(|&x| 0.6745 * (x - med) / mad).collect())
}

/// Removes values whose robust z exceeds `threshold` in magnitude. Constant
/// data comes back unchanged.
pub fn trim_mad(xs: &[f64], threshold: f64) -> Vec<f64> {
    match mad_z_scores(xs) {
        Some(zs) => xs
            .iter()
            .zip(&zs)
            .filter(|(_, &z)| z.abs() <= threshold)
            .map(|(&x, _)| x)
            .collect(),
        None => xs.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[f64::NAN]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(40.0));
        assert_eq!(quantile(&xs, 0.5), Some(25.0));
    }

    #[test]
    fn iqr_trim_removes_spike() {
        let mut xs: Vec<f64> = (0..100).map(|i| 50.0 + (i % 10) as f64).collect();
        xs.push(10_000.0); // stuck-sensor spike
        let trimmed = trim_iqr(&xs, 1.5);
        assert_eq!(trimmed.len(), 100);
        assert!(trimmed.iter().all(|&x| x < 100.0));
    }

    #[test]
    fn iqr_keeps_clean_data() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(trim_iqr(&xs, 1.5).len(), 50);
    }

    #[test]
    fn mad_z_flags_single_outlier() {
        let mut xs = vec![10.0; 20];
        for (i, x) in xs.iter_mut().enumerate() {
            *x += (i % 5) as f64 * 0.1;
        }
        xs.push(100.0);
        let zs = mad_z_scores(&xs).unwrap();
        assert!(zs.last().unwrap().abs() > 10.0);
        let trimmed = trim_mad(&xs, 5.0);
        assert_eq!(trimmed.len(), 20);
    }

    #[test]
    fn mad_constant_data_is_untouched() {
        let xs = vec![7.0; 10];
        assert!(mad_z_scores(&xs).is_none());
        assert_eq!(trim_mad(&xs, 3.0), xs);
    }

    #[test]
    fn non_finite_values_are_outliers() {
        let f = IqrFences::fit(&[1.0, 2.0, 3.0, 4.0], 1.5).unwrap();
        assert!(f.is_outlier(f64::NAN));
        assert!(f.is_outlier(f64::INFINITY));
        assert!(!f.is_outlier(2.5));
    }
}
