//! Plain-text dashboard rendering.
//!
//! The visual half of descriptive ODA. Real deployments use Grafana; a
//! library reproduction renders to monospace text so examples and
//! experiment harnesses can show operators the same content — stat lines
//! with units, Unicode sparklines, and aligned tables — without a display
//! server.

use std::fmt::Write as _;

/// Sparkline glyphs from empty to full.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a Unicode sparkline, scaling to the data range.
/// Non-finite values render as spaces; constant data renders mid-height.
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(values.len());
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if hi - lo < 1e-12 {
                SPARK[3]
            } else {
                let t = (v - lo) / (hi - lo);
                SPARK[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// A fixed-column text table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded, long rows truncated to the
    /// header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        r.truncate(self.headers.len());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                let _ = write!(
                    out,
                    "{}{}{}",
                    c,
                    " ".repeat(pad),
                    if i + 1 < cols { "  " } else { "" }
                );
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// A labelled stat with unit, for wallboard-style panels.
pub fn stat_line(label: &str, value: f64, unit: &str) -> String {
    format!("{label:<28} {value:>10.2} {unit}")
}

/// Renders a horizontal gauge `[####----] 42%` for a fraction in `0..=1`.
pub fn gauge(fraction: f64, width: usize) -> String {
    let f = fraction.clamp(0.0, 1.0);
    let filled = (f * width as f64).round() as usize;
    format!(
        "[{}{}] {:>3.0}%",
        "#".repeat(filled),
        "-".repeat(width - filled),
        f * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn sparkline_edge_cases() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        let s = sparkline(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn table_alignment_and_padding() {
        let mut t = Table::new(["name", "value"]);
        t.row(["pue", "1.23"]);
        t.row(["a-very-long-sensor-name", "4"]);
        t.row::<&str>([]); // empty row is padded
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5); // header + rule + 3 rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("1.23"));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn gauge_renders_bounds() {
        assert_eq!(gauge(0.0, 4), "[----]   0%");
        assert_eq!(gauge(1.0, 4), "[####] 100%");
        assert_eq!(gauge(0.5, 4), "[##--]  50%");
        // Clamped.
        assert_eq!(gauge(3.0, 4), "[####] 100%");
    }

    #[test]
    fn stat_line_formats() {
        let s = stat_line("IT power", 123.456, "kW");
        assert!(s.contains("123.46"));
        assert!(s.ends_with("kW"));
    }
}
