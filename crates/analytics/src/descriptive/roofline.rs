//! The roofline performance model (Williams, Waterman & Patterson, CACM
//! 2009) — the paper's example of a descriptive Applications-pillar model.
//!
//! Given a machine's peak compute throughput and memory bandwidth, the
//! attainable performance of a kernel with arithmetic intensity `I`
//! (flops/byte) is `min(peak, bandwidth × I)`. Plotting measured kernels
//! against the roof immediately shows whether they are compute- or
//! memory-bound and how far from the roof they sit.

use serde::{Deserialize, Serialize};

/// A machine roof: peak compute and peak memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak floating-point throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub peak_bw_gbs: f64,
}

/// Which roof limits a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by memory bandwidth (left of the ridge).
    MemoryBound,
    /// Limited by compute throughput (right of the ridge).
    ComputeBound,
}

/// Placement of one measured kernel on the roofline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelPlacement {
    /// Arithmetic intensity, flops/byte.
    pub intensity: f64,
    /// Measured performance, GFLOP/s.
    pub measured_gflops: f64,
    /// Attainable performance at that intensity, GFLOP/s.
    pub attainable_gflops: f64,
    /// Fraction of attainable achieved (`measured / attainable`).
    pub efficiency: f64,
    /// Limiting roof.
    pub bound: Bound,
}

impl Roofline {
    /// Creates a roofline.
    ///
    /// # Panics
    /// Panics if either peak is non-positive.
    pub fn new(peak_gflops: f64, peak_bw_gbs: f64) -> Self {
        assert!(
            peak_gflops > 0.0 && peak_bw_gbs > 0.0,
            "roof peaks must be positive"
        );
        Roofline {
            peak_gflops,
            peak_bw_gbs,
        }
    }

    /// The ridge point: the intensity at which the two roofs meet.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops / self.peak_bw_gbs
    }

    /// Attainable performance at arithmetic intensity `i`.
    pub fn attainable(&self, i: f64) -> f64 {
        (self.peak_bw_gbs * i.max(0.0)).min(self.peak_gflops)
    }

    /// Places a measured kernel on the roof.
    pub fn place(&self, intensity: f64, measured_gflops: f64) -> KernelPlacement {
        let attainable = self.attainable(intensity);
        KernelPlacement {
            intensity,
            measured_gflops,
            attainable_gflops: attainable,
            efficiency: if attainable > 0.0 {
                measured_gflops / attainable
            } else {
                0.0
            },
            bound: if intensity < self.ridge_intensity() {
                Bound::MemoryBound
            } else {
                Bound::ComputeBound
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roof() -> Roofline {
        Roofline::new(1_000.0, 100.0) // ridge at 10 flops/byte
    }

    #[test]
    fn ridge_and_roofs() {
        let r = roof();
        assert_eq!(r.ridge_intensity(), 10.0);
        assert_eq!(r.attainable(1.0), 100.0); // bandwidth roof
        assert_eq!(r.attainable(10.0), 1_000.0); // at the ridge
        assert_eq!(r.attainable(100.0), 1_000.0); // compute roof
        assert_eq!(r.attainable(-1.0), 0.0);
    }

    #[test]
    fn placement_classifies_bound() {
        let r = roof();
        let stream = r.place(0.25, 20.0); // STREAM-like kernel
        assert_eq!(stream.bound, Bound::MemoryBound);
        assert_eq!(stream.attainable_gflops, 25.0);
        assert!((stream.efficiency - 0.8).abs() < 1e-12);

        let dgemm = r.place(50.0, 900.0);
        assert_eq!(dgemm.bound, Bound::ComputeBound);
        assert!((dgemm.efficiency - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_peaks() {
        Roofline::new(0.0, 100.0);
    }
}
