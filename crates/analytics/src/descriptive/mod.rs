//! Descriptive analytics — *"what happened?"*.
//!
//! The paper defines this type as normalization, aggregation, outlier
//! removal and dimensionality reduction feeding visualizations and alerts,
//! with *no complex knowledge extraction*. These modules are the building
//! blocks of every dashboard and KPI in the framework.

pub mod dashboard;
pub mod kpi;
pub mod outlier;
pub mod quantile;
pub mod roofline;
pub mod stats;
