//! Streaming anomaly detectors.
//!
//! Four detectors with one interface:
//!
//! * [`ZScoreDetector`] — rolling-window z-score; the workhorse for level
//!   shifts in roughly stationary sensors.
//! * [`IqrDetector`] — robust fences; immune to the outliers it flags.
//! * [`EwmaControlChart`] — EWMA chart (Roberts); catches small sustained
//!   drifts a z-score misses.
//! * [`MultivariateVote`] — per-feature detectors voting on a shared
//!   verdict; the simplest member of the multi-dimensional family the paper
//!   cites for node-level anomaly detection (Tuncer et al., Borghesi
//!   et al.).
//!
//! Detectors return a [`Score`]: `0.0` is nominal, `≥ 1.0` is anomalous,
//! values between express suspicion. Mapping to a common scale is what lets
//! the vote combinator and downstream root-cause ranking mix detector types.

use crate::descriptive::stats::{Ewma, RollingStats};
use std::collections::VecDeque;

/// Anomaly score: 0 = nominal, ≥ 1 = anomalous.
pub type Score = f64;

/// A streaming anomaly detector over a single series.
pub trait AnomalyDetector {
    /// Feeds one observation, returning the anomaly score *for that
    /// observation* (judged against history, excluding itself where the
    /// detector can manage it).
    fn observe(&mut self, x: f64) -> Score;

    /// `true` once the detector has enough history to produce meaningful
    /// scores.
    fn warmed_up(&self) -> bool;

    /// Resets all learned state.
    fn reset(&mut self);
}

/// Rolling-window z-score detector: score = |z| / threshold.
#[derive(Debug, Clone)]
pub struct ZScoreDetector {
    window: RollingStats,
    capacity: usize,
    threshold: f64,
    min_samples: usize,
}

impl ZScoreDetector {
    /// Creates a detector with a `window`-sample history and a z threshold
    /// (a score of 1.0 corresponds to `|z| == threshold`).
    pub fn new(window: usize, threshold: f64) -> Self {
        ZScoreDetector {
            window: RollingStats::new(window),
            capacity: window,
            threshold: threshold.max(1e-9),
            min_samples: (window / 4).max(8),
        }
    }
}

impl AnomalyDetector for ZScoreDetector {
    fn observe(&mut self, x: f64) -> Score {
        let score = if self.window.len() >= self.min_samples {
            self.window
                .z_score(x)
                .map(|z| z.abs() / self.threshold)
                .unwrap_or(0.0)
        } else {
            0.0
        };
        self.window.push(x);
        score
    }

    fn warmed_up(&self) -> bool {
        self.window.len() >= self.min_samples
    }

    fn reset(&mut self) {
        self.window = RollingStats::new(self.capacity);
    }
}

/// Robust IQR-fence detector over a sliding window.
#[derive(Debug, Clone)]
pub struct IqrDetector {
    window: VecDeque<f64>,
    capacity: usize,
    k: f64,
    min_samples: usize,
}

impl IqrDetector {
    /// Creates a detector with Tukey multiplier `k` (1.5 classic, 3.0
    /// conservative).
    pub fn new(window: usize, k: f64) -> Self {
        IqrDetector {
            window: VecDeque::with_capacity(window),
            capacity: window.max(4),
            k: k.max(0.1),
            min_samples: (window / 4).max(8),
        }
    }
}

impl AnomalyDetector for IqrDetector {
    fn observe(&mut self, x: f64) -> Score {
        let score = if self.window.len() >= self.min_samples {
            let data: Vec<f64> = self.window.iter().copied().collect();
            match crate::descriptive::outlier::IqrFences::fit(&data, self.k) {
                Some(f) if f.hi > f.lo => {
                    if x > f.hi {
                        // Distance beyond the fence in fence-widths.
                        1.0 + (x - f.hi) / (f.hi - f.lo)
                    } else if x < f.lo {
                        1.0 + (f.lo - x) / (f.hi - f.lo)
                    } else {
                        0.0
                    }
                }
                // Degenerate (constant) window: any different value is
                // anomalous.
                _ => {
                    let m = self.window.front().copied().unwrap_or(0.0);
                    if (x - m).abs() > 1e-9 {
                        1.5
                    } else {
                        0.0
                    }
                }
            }
        } else {
            0.0
        };
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
        score
    }

    fn warmed_up(&self) -> bool {
        self.window.len() >= self.min_samples
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

/// EWMA control chart: tracks a smoothed level and flags observations whose
/// deviation from it exceeds `limit` × the smoothed innovation std-dev.
#[derive(Debug, Clone)]
pub struct EwmaControlChart {
    ewma: Ewma,
    limit: f64,
    alpha: f64,
    seen: usize,
    min_samples: usize,
}

impl EwmaControlChart {
    /// Creates a chart with smoothing `alpha` and control limit `limit`
    /// (classically 3.0).
    pub fn new(alpha: f64, limit: f64) -> Self {
        EwmaControlChart {
            ewma: Ewma::new(alpha),
            limit: limit.max(1e-9),
            alpha,
            seen: 0,
            min_samples: 16,
        }
    }
}

impl AnomalyDetector for EwmaControlChart {
    fn observe(&mut self, x: f64) -> Score {
        let score = match (self.ewma.mean(), self.seen >= self.min_samples) {
            (Some(m), true) => {
                let sd = self.ewma.std_dev().max(1e-9);
                (x - m).abs() / (self.limit * sd)
            }
            _ => 0.0,
        };
        self.ewma.push(x);
        self.seen += 1;
        score
    }

    fn warmed_up(&self) -> bool {
        self.seen >= self.min_samples
    }

    fn reset(&mut self) {
        self.ewma = Ewma::new(self.alpha);
        self.seen = 0;
    }
}

/// Combines one detector per feature; the multivariate score is the
/// fraction of features voting anomalous, scaled so that reaching `quorum`
/// votes yields a score of exactly 1.0.
pub struct MultivariateVote {
    detectors: Vec<Box<dyn AnomalyDetector + Send>>,
    quorum: usize,
}

impl MultivariateVote {
    /// Creates a vote over `detectors` requiring `quorum` per-feature alarms
    /// for a full-score verdict.
    ///
    /// # Panics
    /// Panics if `detectors` is empty or `quorum` is zero or larger than the
    /// detector count.
    pub fn new(detectors: Vec<Box<dyn AnomalyDetector + Send>>, quorum: usize) -> Self {
        assert!(!detectors.is_empty(), "need at least one detector");
        assert!(
            quorum >= 1 && quorum <= detectors.len(),
            "quorum must be in 1..=detectors"
        );
        MultivariateVote { detectors, quorum }
    }

    /// Feeds one observation vector (must match the detector count) and
    /// returns `(combined_score, per_feature_scores)`.
    ///
    /// # Panics
    /// Panics if `xs.len()` differs from the detector count.
    pub fn observe(&mut self, xs: &[f64]) -> (Score, Vec<Score>) {
        assert_eq!(xs.len(), self.detectors.len(), "feature count mismatch");
        let scores: Vec<Score> = self
            .detectors
            .iter_mut()
            .zip(xs)
            .map(|(d, &x)| d.observe(x))
            .collect();
        let votes = scores.iter().filter(|&&s| s >= 1.0).count();
        ((votes as f64 / self.quorum as f64).min(2.0), scores)
    }

    /// `true` once every per-feature detector is warmed up.
    pub fn warmed_up(&self) -> bool {
        self.detectors.iter().all(|d| d.warmed_up())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed<D: AnomalyDetector>(d: &mut D, xs: &[f64]) -> Vec<Score> {
        xs.iter().map(|&x| d.observe(x)).collect()
    }

    /// A noisy-but-stationary series followed by a level shift.
    fn series_with_shift() -> Vec<f64> {
        let mut v: Vec<f64> = (0..100)
            .map(|i| 10.0 + ((i * 7) % 5) as f64 * 0.1)
            .collect();
        v.push(20.0);
        v
    }

    #[test]
    fn zscore_flags_level_shift() {
        let mut d = ZScoreDetector::new(64, 4.0);
        let scores = feed(&mut d, &series_with_shift());
        assert!(scores[..100].iter().all(|&s| s < 1.0), "no false alarms");
        assert!(scores[100] >= 1.0, "shift must alarm: {}", scores[100]);
        assert!(d.warmed_up());
    }

    #[test]
    fn zscore_is_quiet_before_warmup() {
        let mut d = ZScoreDetector::new(64, 3.0);
        assert_eq!(d.observe(1e9), 0.0);
        assert!(!d.warmed_up());
    }

    #[test]
    fn iqr_flags_spike_and_recovers() {
        let mut d = IqrDetector::new(64, 1.5);
        let mut xs: Vec<f64> = (0..80).map(|i| 50.0 + ((i * 3) % 7) as f64).collect();
        xs.push(500.0);
        xs.extend((0..10).map(|i| 50.0 + (i % 7) as f64));
        let scores = feed(&mut d, &xs);
        assert!(scores[80] > 1.0, "spike score {}", scores[80]);
        // Normal values after the spike do not alarm (robustness).
        assert!(scores[81..].iter().all(|&s| s < 1.0));
    }

    #[test]
    fn iqr_constant_window_flags_any_change() {
        let mut d = IqrDetector::new(32, 1.5);
        for _ in 0..32 {
            d.observe(5.0);
        }
        assert!(d.observe(6.0) >= 1.0);
        assert_eq!(d.observe(5.0), 0.0);
    }

    #[test]
    fn ewma_chart_catches_slow_drift() {
        let mut d = EwmaControlChart::new(0.2, 3.0);
        // Stationary noise.
        for i in 0..100 {
            d.observe(10.0 + ((i * 13) % 7) as f64 * 0.05);
        }
        // Sudden jump relative to smoothed band.
        let s = d.observe(12.0);
        assert!(s >= 1.0, "jump score {s}");
    }

    #[test]
    fn detectors_reset_cleanly() {
        let mut d = ZScoreDetector::new(32, 3.0);
        for i in 0..40 {
            d.observe(i as f64);
        }
        d.reset();
        assert!(!d.warmed_up());
        let mut e = EwmaControlChart::new(0.3, 3.0);
        for _ in 0..20 {
            e.observe(5.0);
        }
        e.reset();
        assert!(!e.warmed_up());
        assert_eq!(e.observe(1e6), 0.0);
    }

    #[test]
    fn multivariate_vote_requires_quorum() {
        let mk = || -> Box<dyn AnomalyDetector + Send> { Box::new(ZScoreDetector::new(64, 4.0)) };
        let mut mv = MultivariateVote::new(vec![mk(), mk(), mk()], 2);
        // Warm all three features on stationary data.
        for i in 0..100 {
            let base = 10.0 + ((i * 7) % 5) as f64 * 0.1;
            mv.observe(&[base, base * 2.0, base * 3.0]);
        }
        assert!(mv.warmed_up());
        // One deviant feature: below quorum.
        let (s, per) = mv.observe(&[50.0, 20.6, 30.9]);
        assert!(per[0] >= 1.0);
        assert!(s < 1.0, "single vote must not reach quorum: {s}");
        // Two deviant features: quorum reached.
        let (s, _) = mv.observe(&[50.0, 100.0, 30.9]);
        assert!(s >= 1.0, "two votes reach quorum: {s}");
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn multivariate_rejects_wrong_arity() {
        let mut mv = MultivariateVote::new(
            vec![Box::new(ZScoreDetector::new(8, 3.0)) as Box<dyn AnomalyDetector + Send>],
            1,
        );
        mv.observe(&[1.0, 2.0]);
    }
}
