//! Correlation-wise smoothing (CS) feature extraction, after Netti et al.,
//! *"Correlation-wise Smoothing: Lightweight Knowledge Extraction for HPC
//! Monitoring Data"* (IPDPS 2021) — one of the node-level diagnostic works
//! in the paper's survey.
//!
//! The idea: order a node's sensors so that correlated sensors are adjacent,
//! then smooth *across the sensor dimension* at several block sizes,
//! producing a compact image-like descriptor of the node state. Because the
//! ordering groups redundant sensors, the smoothed blocks capture the
//! node-wide signal at multiple granularities with a handful of values,
//! which downstream classifiers/detectors consume instead of the raw
//! high-dimensional vector.
//!
//! Implementation choices (faithful to the paper's spirit, simplified in
//! detail):
//!
//! * sensors are standardized with their training-data statistics before
//!   smoothing (the CS paper normalizes sensors for the same reason:
//!   block means across unequal scales would be dominated by the
//!   largest-magnitude channels);
//! * the ordering is a greedy nearest-neighbour chain on |Pearson r|,
//!   starting from the sensor with the highest total correlation;
//! * the descriptor concatenates block means at power-of-two block counts
//!   (1, 2, 4, … up to `levels`), i.e. a Haar-like multi-resolution pyramid
//!   over the ordered sensor axis.

use crate::descriptive::stats::correlation;

/// A fitted CS model: the sensor ordering and per-sensor normalization
/// learned from training data.
#[derive(Debug, Clone)]
pub struct CorrelationSmoothing {
    order: Vec<usize>,
    levels: usize,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl CorrelationSmoothing {
    /// Learns the sensor ordering from training series.
    ///
    /// `series[s]` is the history of sensor `s`; all series should be
    /// time-aligned and equal length. `levels` controls descriptor size:
    /// the descriptor has `2^levels − 1 + ...` — precisely
    /// `1 + 2 + 4 + … + 2^(levels−1)` values.
    ///
    /// # Panics
    /// Panics if `series` is empty or `levels == 0`.
    pub fn fit(series: &[Vec<f64>], levels: usize) -> Self {
        assert!(!series.is_empty(), "need at least one sensor");
        assert!(levels > 0, "need at least one level");
        let n = series.len();
        // Absolute correlation matrix (constant series correlate 0).
        let mut corr = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let c = correlation(&series[i], &series[j]).unwrap_or(0.0).abs();
                corr[i][j] = c;
                corr[j][i] = c;
            }
        }
        // Start from the most-connected sensor, then chain greedily.
        let start = (0..n)
            .max_by(|&a, &b| {
                let sa: f64 = corr[a].iter().sum();
                let sb: f64 = corr[b].iter().sum();
                sa.total_cmp(&sb)
            })
            .unwrap();
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        order.push(start);
        used[start] = true;
        while order.len() < n {
            let last = *order.last().unwrap();
            let next = (0..n)
                .filter(|&i| !used[i])
                .max_by(|&a, &b| corr[last][a].total_cmp(&corr[last][b]))
                .unwrap();
            order.push(next);
            used[next] = true;
        }
        // Per-sensor normalization statistics.
        let mean: Vec<f64> = series
            .iter()
            .map(|s| s.iter().sum::<f64>() / s.len().max(1) as f64)
            .collect();
        let std: Vec<f64> = series
            .iter()
            .zip(&mean)
            .map(|(s, m)| {
                (s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / s.len().max(1) as f64)
                    .sqrt()
                    .max(1e-9)
            })
            .collect();
        CorrelationSmoothing {
            order,
            levels,
            mean,
            std,
        }
    }

    /// The learned sensor ordering (indices into the training layout).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Length of descriptors produced by [`Self::descriptor`].
    pub fn descriptor_len(&self) -> usize {
        (0..self.levels).map(|l| 1usize << l).sum()
    }

    /// Computes the multi-resolution descriptor of one time-instant sensor
    /// vector `snapshot` (same layout as the training series).
    ///
    /// # Panics
    /// Panics if `snapshot.len()` differs from the fitted sensor count.
    pub fn descriptor(&self, snapshot: &[f64]) -> Vec<f64> {
        assert_eq!(snapshot.len(), self.order.len(), "sensor count mismatch");
        let ordered: Vec<f64> = self
            .order
            .iter()
            .map(|&i| (snapshot[i] - self.mean[i]) / self.std[i])
            .collect();
        let mut out = Vec::with_capacity(self.descriptor_len());
        let n = ordered.len();
        for level in 0..self.levels {
            let blocks = 1usize << level;
            for b in 0..blocks {
                let lo = b * n / blocks;
                let hi = (b + 1) * n / blocks;
                // With more blocks than sensors some blocks are empty: fall
                // back to the nearest sensor so every slot carries signal.
                let (lo, hi) = if lo < hi {
                    (lo, hi)
                } else {
                    (lo.min(n - 1), lo.min(n - 1) + 1)
                };
                let slice = &ordered[lo..hi];
                out.push(slice.iter().sum::<f64>() / slice.len() as f64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three correlated "power-like" sensors, two correlated "thermal"
    /// sensors, one independent noise sensor.
    fn training_data() -> Vec<Vec<f64>> {
        let t: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let base: Vec<f64> = t.iter().map(|x| x.sin()).collect();
        let thermal: Vec<f64> = t.iter().map(|x| (x * 0.3).cos()).collect();
        vec![
            base.clone(),
            base.iter().map(|v| 2.0 * v + 0.1).collect(),
            thermal.clone(),
            base.iter().map(|v| -v).collect(),
            thermal.iter().map(|v| 3.0 * v).collect(),
            t.iter()
                .map(|x| ((x * 7919.0).sin() * 43758.5453).fract())
                .collect(),
        ]
    }

    #[test]
    fn ordering_groups_correlated_sensors() {
        let cs = CorrelationSmoothing::fit(&training_data(), 3);
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (rank, &s) in cs.order().iter().enumerate() {
                p[s] = rank;
            }
            p
        };
        // The three power-family sensors (0, 1, 3) must be mutually closer
        // than they are to the noise sensor (5).
        let fam = [pos[0], pos[1], pos[3]];
        let spread = fam.iter().max().unwrap() - fam.iter().min().unwrap();
        assert!(spread <= 2, "power family should be adjacent: {pos:?}");
        // Thermal pair adjacent too.
        assert!((pos[2] as i64 - pos[4] as i64).abs() <= 1, "{pos:?}");
    }

    #[test]
    fn descriptor_has_pyramid_length() {
        let data = training_data();
        let cs = CorrelationSmoothing::fit(&data, 3);
        assert_eq!(cs.descriptor_len(), 1 + 2 + 4);
        let d = cs.descriptor(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(d.len(), 7);
        // A snapshot at exactly the training means standardizes to all
        // zeros — level 0 (the global mean) included.
        let at_mean: Vec<f64> = data
            .iter()
            .map(|s| s.iter().sum::<f64>() / s.len() as f64)
            .collect();
        let d0 = cs.descriptor(&at_mean);
        assert!(d0.iter().all(|v| v.abs() < 1e-9), "{d0:?}");
    }

    #[test]
    fn descriptor_distinguishes_anomalous_snapshots() {
        let data = training_data();
        let cs = CorrelationSmoothing::fit(&data, 3);
        let normal: Vec<f64> = data.iter().map(|s| s[100]).collect();
        let mut anomalous = normal.clone();
        anomalous[1] += 10.0; // one power sensor deviates strongly
        let dn = cs.descriptor(&normal);
        let da = cs.descriptor(&anomalous);
        let dist: f64 = dn
            .iter()
            .zip(&da)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "descriptors must separate: {dist}");
    }

    #[test]
    fn single_sensor_degenerates_gracefully() {
        let cs = CorrelationSmoothing::fit(&[vec![1.0, 2.0, 3.0]], 2);
        let d = cs.descriptor(&[5.0]);
        assert_eq!(d.len(), 3);
        // Standardized value of 5 against mean 2, population σ = √(2/3).
        let expected = (5.0 - 2.0) / (2.0f64 / 3.0).sqrt();
        assert!(d.iter().all(|&v| (v - expected).abs() < 1e-9), "{d:?}");
    }

    #[test]
    #[should_panic(expected = "sensor count")]
    fn descriptor_rejects_wrong_arity() {
        let cs = CorrelationSmoothing::fit(&training_data(), 2);
        cs.descriptor(&[1.0, 2.0]);
    }
}
