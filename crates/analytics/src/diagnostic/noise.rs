//! Periodic-interference detection — the "identifying sources of OS noise"
//! diagnostic cell (Ferreira et al., SC'08).
//!
//! OS and kernel noise manifests as *periodic* slowdowns in an otherwise
//! flat fine-grained timing series (fixed-work-quantum benchmarks). The
//! classic analysis detrends the series and looks for strong peaks in its
//! autocorrelation: the lag of the first strong peak is the interference
//! period, and the excess of the affected samples estimates its cost.

use serde::{Deserialize, Serialize};

/// A detected periodic interference source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interference {
    /// Period of the interference, in samples.
    pub period: usize,
    /// Autocorrelation strength at that lag, `0..=1`.
    pub strength: f64,
    /// Mean relative excess of affected samples over the series median
    /// (e.g. 0.2 = interfering samples run 20% over baseline).
    pub mean_excess: f64,
}

/// Normalised autocorrelation of `xs` at `lag` (biased estimator).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag == 0 {
        return 1.0;
    }
    if lag >= n || n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|&x| (x - mean).powi(2)).sum();
    if var <= 1e-300 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    cov / var
}

/// Scans lags in `min_period..=max_period` for the strongest
/// autocorrelation peak. Returns `None` if no lag reaches
/// `strength_threshold` (typical: 0.3) — i.e. the timing series is clean.
pub fn detect_interference(
    timings: &[f64],
    min_period: usize,
    max_period: usize,
    strength_threshold: f64,
) -> Option<Interference> {
    if timings.len() < min_period.max(4) * 3 {
        return None;
    }
    let max_period = max_period.min(timings.len() / 3);
    let mut peaks: Vec<(usize, f64)> = Vec::new();
    for lag in min_period.max(2)..=max_period {
        let r = autocorrelation(timings, lag);
        if r >= strength_threshold {
            peaks.push((lag, r));
        }
    }
    // Prefer the *smallest* lag among peaks within 10% of the strongest:
    // multiples of the true period correlate almost as strongly, and
    // reporting a harmonic would misattribute the interference source.
    let max_r = peaks
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::NEG_INFINITY, f64::max);
    let (period, strength) = peaks.into_iter().find(|&(_, r)| r >= 0.9 * max_r)?;
    // Estimate cost: samples more than 2 robust sigmas above median.
    let med = crate::descriptive::outlier::median(timings)?;
    let dev: Vec<f64> = timings.iter().map(|&x| (x - med).abs()).collect();
    let mad = crate::descriptive::outlier::median(&dev)?;
    let scale = (mad / 0.6745).max(med.abs() * 1e-6).max(1e-12);
    let noisy: Vec<f64> = timings
        .iter()
        .copied()
        .filter(|&x| (x - med) / scale > 2.0)
        .collect();
    let mean_excess = if noisy.is_empty() || med.abs() < 1e-12 {
        0.0
    } else {
        (noisy.iter().sum::<f64>() / noisy.len() as f64 - med) / med
    };
    Some(Interference {
        period,
        strength,
        mean_excess,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic aperiodic pseudo-noise in `[0, 1)` (shader-style hash;
    /// no short period, unlike a multiplicative congruence mod a small
    /// prime).
    fn aperiodic_noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43_758.545_3).fract().abs()
    }

    /// Flat 1.0ms timings with a +30% spike every `period` samples plus
    /// deterministic micro-jitter.
    fn noisy_timings(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let jitter = aperiodic_noise(i) * 1e-5;
                if i % period == 0 {
                    1.3 + jitter
                } else {
                    1.0 + jitter
                }
            })
            .collect()
    }

    #[test]
    fn detects_period_and_cost() {
        let xs = noisy_timings(1_000, 25);
        let hit = detect_interference(&xs, 5, 100, 0.3).expect("should detect");
        assert_eq!(hit.period, 25);
        assert!(hit.strength > 0.5);
        assert!(
            (hit.mean_excess - 0.3).abs() < 0.05,
            "excess {}",
            hit.mean_excess
        );
    }

    #[test]
    fn clean_series_reports_nothing() {
        let xs: Vec<f64> = (0..1_000)
            .map(|i| 1.0 + aperiodic_noise(i) * 1e-5)
            .collect();
        assert!(detect_interference(&xs, 5, 100, 0.3).is_none());
    }

    #[test]
    fn too_short_series_reports_nothing() {
        let xs = noisy_timings(10, 5);
        assert!(detect_interference(&xs, 5, 100, 0.3).is_none());
    }

    #[test]
    fn autocorrelation_basics() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert_eq!(autocorrelation(&xs, 0), 1.0);
        assert!(autocorrelation(&xs, 2) > 0.9);
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0], 1), 0.0); // constant
        assert_eq!(autocorrelation(&xs, 1_000), 0.0); // lag out of range
    }

    #[test]
    fn period_survives_moderate_jitter_in_phase() {
        // Spikes at period 30 but with ±1 sample phase wobble.
        let xs: Vec<f64> = (0..1_500)
            .map(|i| {
                let wobble = ((i / 30) * 7) % 3;
                if (i + wobble) % 30 == 0 {
                    1.25
                } else {
                    1.0
                }
            })
            .collect();
        let hit = detect_interference(&xs, 5, 100, 0.2).expect("should detect");
        // The wobble itself repeats every 3 blocks, so the true fundamental
        // of the combined pattern is 90; either the base period or that
        // fundamental is an acceptable answer.
        let p = hit.period as i64;
        assert!(
            (p - 30).abs() <= 1 || (p - 90).abs() <= 1,
            "period {p} is neither ~30 nor ~90"
        );
    }
}
