//! Application fingerprinting: classifying what a job *is* from how it
//! behaves.
//!
//! The paper's Applications-pillar diagnostic cell cites Taxonomist (Ates
//! et al.) and DeMasi et al., which identify applications (including
//! cryptominers smuggled into HPC systems) from monitoring features. Two
//! classic classifiers over the same feature vector:
//!
//! * [`NearestCentroid`] — one centroid per class in standardized feature
//!   space; fast, interpretable, the baseline in the cited works.
//! * [`Knn`] — k-nearest-neighbour votes; more capacity, no training
//!   beyond remembering examples.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Behavioural features of one job, as accumulated by monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobFeatures {
    /// Mean CPU utilization over the job's life.
    pub mean_cpu: f64,
    /// Variance of CPU utilization (flatness: miners ≈ 0).
    pub var_cpu: f64,
    /// Mean per-node memory footprint, GiB.
    pub mean_mem_gib: f64,
    /// Mean per-node network demand, GB/s.
    pub mean_net_gbps: f64,
}

impl JobFeatures {
    /// Feature vector layout used by the classifiers.
    pub fn to_vec(self) -> [f64; 4] {
        [
            self.mean_cpu,
            self.var_cpu,
            self.mean_mem_gib,
            self.mean_net_gbps,
        ]
    }
}

/// Per-dimension standardization (z-scaling) fitted on training data.
#[derive(Debug, Clone)]
struct Scaler {
    mean: [f64; 4],
    std: [f64; 4],
}

impl Scaler {
    fn fit(xs: &[[f64; 4]]) -> Self {
        let n = xs.len().max(1) as f64;
        let mut mean = [0.0; 4];
        for x in xs {
            for d in 0..4 {
                mean[d] += x[d] / n;
            }
        }
        let mut std = [0.0; 4];
        for x in xs {
            for d in 0..4 {
                std[d] += (x[d] - mean[d]).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        Scaler { mean, std }
    }

    fn apply(&self, x: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for d in 0..4 {
            out[d] = (x[d] - self.mean[d]) / self.std[d];
        }
        out
    }
}

fn dist2(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Nearest-centroid classifier over standardized job features.
#[derive(Debug, Clone)]
pub struct NearestCentroid<L> {
    scaler: Scaler,
    centroids: Vec<(L, [f64; 4])>,
}

impl<L: Clone + Ord> NearestCentroid<L> {
    /// Fits centroids from labelled examples.
    ///
    /// # Panics
    /// Panics if `examples` is empty.
    pub fn fit(examples: &[(L, JobFeatures)]) -> Self {
        assert!(!examples.is_empty(), "need training examples");
        let raw: Vec<[f64; 4]> = examples.iter().map(|(_, f)| f.to_vec()).collect();
        let scaler = Scaler::fit(&raw);
        let mut sums: BTreeMap<L, ([f64; 4], usize)> = BTreeMap::new();
        for ((label, _), x) in examples.iter().zip(&raw) {
            let scaled = scaler.apply(x);
            let e = sums.entry(label.clone()).or_insert(([0.0; 4], 0));
            for (acc, v) in e.0.iter_mut().zip(scaled) {
                *acc += v;
            }
            e.1 += 1;
        }
        let centroids = sums
            .into_iter()
            .map(|(label, (sum, n))| {
                let mut c = [0.0; 4];
                for d in 0..4 {
                    c[d] = sum[d] / n as f64;
                }
                (label, c)
            })
            .collect();
        NearestCentroid { scaler, centroids }
    }

    /// Number of classes learned.
    pub fn classes(&self) -> usize {
        self.centroids.len()
    }

    /// Predicts the label of `features`, with a confidence in `(0, 1]`
    /// derived from the margin between the best and second-best centroid
    /// (1.0 when only one class exists).
    pub fn predict(&self, features: JobFeatures) -> (L, f64) {
        let x = self.scaler.apply(&features.to_vec());
        let mut scored: Vec<(f64, &L)> = self
            .centroids
            .iter()
            .map(|(l, c)| (dist2(&x, c), l))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let best = scored[0].0.sqrt();
        let confidence = if scored.len() < 2 {
            1.0
        } else {
            let second = scored[1].0.sqrt();
            ((second - best) / second.max(1e-9)).clamp(0.0, 1.0)
        };
        (scored[0].1.clone(), confidence)
    }
}

/// k-nearest-neighbour classifier (majority vote, distance ties broken by
/// order of insertion).
#[derive(Debug, Clone)]
pub struct Knn<L> {
    k: usize,
    scaler: Scaler,
    examples: Vec<(L, [f64; 4])>,
}

impl<L: Clone + Ord> Knn<L> {
    /// Builds the classifier remembering all examples.
    ///
    /// # Panics
    /// Panics if `examples` is empty or `k == 0`.
    pub fn fit(examples: &[(L, JobFeatures)], k: usize) -> Self {
        assert!(!examples.is_empty(), "need training examples");
        assert!(k > 0, "k must be positive");
        let raw: Vec<[f64; 4]> = examples.iter().map(|(_, f)| f.to_vec()).collect();
        let scaler = Scaler::fit(&raw);
        let examples = examples
            .iter()
            .zip(&raw)
            .map(|((l, _), x)| (l.clone(), scaler.apply(x)))
            .collect();
        Knn {
            k,
            scaler,
            examples,
        }
    }

    /// Predicts by majority vote among the `k` nearest neighbours.
    pub fn predict(&self, features: JobFeatures) -> L {
        let x = self.scaler.apply(&features.to_vec());
        let mut scored: Vec<(f64, &L)> = self
            .examples
            .iter()
            .map(|(l, e)| (dist2(&x, e), l))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut votes: BTreeMap<&L, usize> = BTreeMap::new();
        for (_, l) in scored.iter().take(self.k) {
            *votes.entry(l).or_default() += 1;
        }
        let mut best: Option<(&L, usize)> = None;
        // Deterministic tie-break: nearest example wins — walk in distance
        // order and prefer strictly greater counts.
        for (_, l) in scored.iter().take(self.k) {
            let c = votes[l];
            if best.map(|(_, bc)| c > bc).unwrap_or(true) {
                best = Some((l, c));
            }
        }
        best.unwrap().0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miner() -> JobFeatures {
        JobFeatures {
            mean_cpu: 0.99,
            var_cpu: 0.0001,
            mean_mem_gib: 2.0,
            mean_net_gbps: 0.01,
        }
    }

    fn hpc_compute() -> JobFeatures {
        JobFeatures {
            mean_cpu: 0.92,
            var_cpu: 0.02,
            mean_mem_gib: 24.0,
            mean_net_gbps: 0.3,
        }
    }

    fn io_job() -> JobFeatures {
        JobFeatures {
            mean_cpu: 0.4,
            var_cpu: 0.05,
            mean_mem_gib: 48.0,
            mean_net_gbps: 5.0,
        }
    }

    fn jitter(f: JobFeatures, eps: f64) -> JobFeatures {
        JobFeatures {
            mean_cpu: f.mean_cpu + eps,
            var_cpu: (f.var_cpu + eps * 0.001).max(0.0),
            mean_mem_gib: f.mem_plus(eps * 10.0),
            mean_net_gbps: f.mean_net_gbps + eps.abs(),
        }
    }

    impl JobFeatures {
        fn mem_plus(self, d: f64) -> f64 {
            self.mean_mem_gib + d
        }
    }

    fn training() -> Vec<(&'static str, JobFeatures)> {
        let mut ex = Vec::new();
        for i in 0..10 {
            let eps = (i as f64 - 5.0) * 0.004;
            ex.push(("miner", jitter(miner(), eps)));
            ex.push(("compute", jitter(hpc_compute(), eps)));
            ex.push(("io", jitter(io_job(), eps)));
        }
        ex
    }

    #[test]
    fn nearest_centroid_identifies_classes() {
        let nc = NearestCentroid::fit(&training());
        assert_eq!(nc.classes(), 3);
        assert_eq!(nc.predict(miner()).0, "miner");
        assert_eq!(nc.predict(hpc_compute()).0, "compute");
        assert_eq!(nc.predict(io_job()).0, "io");
    }

    #[test]
    fn confidence_reflects_margin() {
        let nc = NearestCentroid::fit(&training());
        let (_, conf_clear) = nc.predict(miner());
        // A point halfway between compute and miner gets low confidence.
        let ambiguous = JobFeatures {
            mean_cpu: 0.955,
            var_cpu: 0.01,
            mean_mem_gib: 13.0,
            mean_net_gbps: 0.15,
        };
        let (_, conf_amb) = nc.predict(ambiguous);
        assert!(conf_clear > conf_amb, "{conf_clear} vs {conf_amb}");
    }

    #[test]
    fn single_class_gives_full_confidence() {
        let nc = NearestCentroid::fit(&[("only", miner())]);
        let (label, conf) = nc.predict(io_job());
        assert_eq!(label, "only");
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn knn_identifies_classes() {
        let knn = Knn::fit(&training(), 3);
        assert_eq!(knn.predict(miner()), "miner");
        assert_eq!(knn.predict(hpc_compute()), "compute");
        assert_eq!(knn.predict(io_job()), "io");
    }

    #[test]
    fn knn_k_larger_than_dataset_still_works() {
        let ex = vec![("a", miner()), ("a", miner()), ("b", io_job())];
        let knn = Knn::fit(&ex, 100);
        assert_eq!(knn.predict(miner()), "a");
    }

    #[test]
    #[should_panic(expected = "training examples")]
    fn empty_training_panics() {
        NearestCentroid::<&str>::fit(&[]);
    }
}
