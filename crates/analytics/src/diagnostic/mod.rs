//! Diagnostic analytics — *"why did it happen?"*.
//!
//! The paper defines this type as systematic extraction of non-obvious
//! insight from multi-dimensional monitoring data: anomaly detection, root
//! cause analysis, fingerprinting. Each module here is a canonical member of
//! one cited technique family.

pub mod detector;
pub mod fingerprint;
pub mod network_diag;
pub mod noise;
pub mod rootcause;
pub mod smoothing;
