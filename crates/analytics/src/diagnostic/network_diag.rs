//! Network-contention diagnosis from link-level counters.
//!
//! After Grant et al.'s *overtime* tool and Jha et al.'s link-level traffic
//! characterisation: given per-link offered vs delivered throughput and the
//! set of jobs routed over each link, identify congested links and rank the
//! jobs most likely responsible (aggressors) versus most affected
//! (victims).
//!
//! The attribution heuristic is the one operators actually use: on a
//! congested link, the flow offering the largest share of the traffic is
//! the aggressor; flows offering little but crossing the congested link are
//! victims.

use serde::{Deserialize, Serialize};

/// One link's counters for a diagnosis window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSample {
    /// Link identifier (e.g. rack uplink index).
    pub link: usize,
    /// Offered load, GB/s.
    pub offered_gbps: f64,
    /// Delivered throughput, GB/s.
    pub delivered_gbps: f64,
    /// `(flow id, offered share of this link in GB/s)` for flows routed
    /// over the link.
    pub flows: Vec<(u64, f64)>,
}

/// Diagnosis of one congested link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Congestion {
    /// The congested link.
    pub link: usize,
    /// `delivered / offered` (< 1 under congestion).
    pub delivery_ratio: f64,
    /// Flows sorted by offered load, descending — the head is the prime
    /// aggressor. `(flow id, offered GB/s, share of link traffic)`.
    pub aggressors: Vec<(u64, f64, f64)>,
    /// Flows that offered less than `victim_share` of the link's traffic
    /// yet suffered the congestion.
    pub victims: Vec<u64>,
}

/// Diagnoses all links, returning one [`Congestion`] per link whose
/// delivery ratio falls below `congestion_threshold` (e.g. 0.95).
/// Flows offering under `victim_share` (fraction of the link's total) are
/// classified as victims rather than aggressors.
pub fn diagnose(
    links: &[LinkSample],
    congestion_threshold: f64,
    victim_share: f64,
) -> Vec<Congestion> {
    let mut out = Vec::new();
    for l in links {
        if l.offered_gbps <= 0.0 {
            continue;
        }
        let ratio = l.delivered_gbps / l.offered_gbps;
        if ratio >= congestion_threshold {
            continue;
        }
        let total: f64 = l.flows.iter().map(|(_, g)| g).sum();
        let mut flows: Vec<(u64, f64, f64)> = l
            .flows
            .iter()
            .map(|&(id, g)| (id, g, if total > 0.0 { g / total } else { 0.0 }))
            .collect();
        flows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let victims = flows
            .iter()
            .filter(|&&(_, _, share)| share < victim_share)
            .map(|&(id, _, _)| id)
            .collect();
        let aggressors = flows
            .into_iter()
            .filter(|&(_, _, share)| share >= victim_share)
            .collect();
        out.push(Congestion {
            link: l.link,
            delivery_ratio: ratio,
            aggressors,
            victims,
        });
    }
    // Worst congestion first.
    out.sort_by(|a, b| a.delivery_ratio.total_cmp(&b.delivery_ratio));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(link: usize, offered: f64, delivered: f64, flows: Vec<(u64, f64)>) -> LinkSample {
        LinkSample {
            link,
            offered_gbps: offered,
            delivered_gbps: delivered,
            flows,
        }
    }

    #[test]
    fn healthy_links_produce_no_findings() {
        let links = vec![
            sample(0, 10.0, 10.0, vec![(1, 10.0)]),
            sample(1, 0.0, 0.0, vec![]),
        ];
        assert!(diagnose(&links, 0.95, 0.2).is_empty());
    }

    #[test]
    fn aggressor_and_victims_are_separated() {
        // Flow 7 hogs 40 of 50 GB/s; flows 1 and 2 offer 5 each.
        let links = vec![sample(0, 50.0, 25.0, vec![(1, 5.0), (7, 40.0), (2, 5.0)])];
        let d = diagnose(&links, 0.95, 0.2);
        assert_eq!(d.len(), 1);
        let c = &d[0];
        assert!((c.delivery_ratio - 0.5).abs() < 1e-12);
        assert_eq!(c.aggressors[0].0, 7);
        assert!((c.aggressors[0].2 - 0.8).abs() < 1e-12);
        assert_eq!(c.victims, vec![1, 2]);
    }

    #[test]
    fn worst_link_sorts_first() {
        let links = vec![
            sample(0, 10.0, 9.0, vec![(1, 10.0)]),
            sample(1, 10.0, 2.0, vec![(2, 10.0)]),
        ];
        let d = diagnose(&links, 0.95, 0.2);
        assert_eq!(d[0].link, 1);
        assert_eq!(d[1].link, 0);
    }

    #[test]
    fn equal_flows_are_all_aggressors() {
        let links = vec![sample(0, 40.0, 20.0, vec![(1, 20.0), (2, 20.0)])];
        let d = diagnose(&links, 0.95, 0.2);
        assert_eq!(d[0].aggressors.len(), 2);
        assert!(d[0].victims.is_empty());
    }
}
