//! Root-cause ranking: which sensor deviated first, and which deviated
//! most?
//!
//! The paper's diagnostic row extends anomaly *detection* with root cause
//! *analysis* (AutoDiagn, Demirbaga et al.). The canonical lightweight
//! approach ranks candidate sensors by combining two pieces of evidence
//! over the anomaly window:
//!
//! * **onset** — sensors that left their baseline *earlier* are more likely
//!   causes than followers (causes precede symptoms);
//! * **magnitude** — sensors that deviated *more* (in robust z units) carry
//!   more evidence than marginal deviations.
//!
//! Scores combine both, normalised into `[0, 1]`.

use crate::descriptive::outlier::{mad_z_scores, median};
use serde::{Deserialize, Serialize};

/// Evidence for one candidate sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseScore {
    /// Index of the sensor in the input layout.
    pub sensor: usize,
    /// Combined score in `[0, 1]`; higher = more likely root cause.
    pub score: f64,
    /// Index into the anomaly window where the sensor first deviated
    /// (`None` if it never left its baseline).
    pub onset: Option<usize>,
    /// Peak robust |z| over the anomaly window.
    pub peak_z: f64,
}

/// Ranks sensors as root-cause candidates.
///
/// `baseline[s]` is the pre-anomaly history of sensor `s`; `window[s]` is
/// the same sensor during the anomaly. A sensor "deviates" at the first
/// window index whose robust z-score against its own baseline exceeds
/// `z_threshold`. Returns candidates sorted by descending score; sensors
/// that never deviate score 0 and sort last (stable by index).
pub fn rank_causes(
    baseline: &[Vec<f64>],
    window: &[Vec<f64>],
    z_threshold: f64,
) -> Vec<CauseScore> {
    assert_eq!(
        baseline.len(),
        window.len(),
        "baseline/window sensor counts differ"
    );
    let n = baseline.len();
    let mut out = Vec::with_capacity(n);
    for s in 0..n {
        let (onset, peak_z) = deviation_profile(&baseline[s], &window[s], z_threshold);
        out.push(CauseScore {
            sensor: s,
            score: 0.0,
            onset,
            peak_z,
        });
    }
    // Normalisers.
    let max_z = out
        .iter()
        .map(|c| c.peak_z)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let window_len = window.first().map(|w| w.len()).unwrap_or(0).max(1);
    for c in &mut out {
        let onset_score = match c.onset {
            // Earlier onset → closer to 1.
            Some(t) => 1.0 - t as f64 / window_len as f64,
            None => 0.0,
        };
        let magnitude_score = if c.onset.is_some() {
            c.peak_z / max_z
        } else {
            0.0
        };
        c.score = 0.5 * onset_score + 0.5 * magnitude_score;
    }
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.sensor.cmp(&b.sensor)));
    out
}

/// First deviation index and peak robust |z| of `window` against
/// `baseline`.
fn deviation_profile(baseline: &[f64], window: &[f64], z_threshold: f64) -> (Option<usize>, f64) {
    let Some(med) = median(baseline) else {
        return (None, 0.0);
    };
    // Robust scale of the baseline.
    let deviations: Vec<f64> = baseline.iter().map(|&x| (x - med).abs()).collect();
    let mad = median(&deviations).unwrap_or(0.0);
    // Fallback scale for near-constant baselines: a small fraction of the
    // median magnitude, floored.
    let scale = if mad > 1e-9 {
        mad / 0.6745
    } else {
        med.abs().max(1.0) * 0.01
    };
    let mut onset = None;
    let mut peak: f64 = 0.0;
    for (t, &x) in window.iter().enumerate() {
        let z = ((x - med) / scale).abs();
        peak = peak.max(z);
        if onset.is_none() && z > z_threshold {
            onset = Some(t);
        }
    }
    (onset, peak)
}

/// Convenience: robust z-scores of a window against a baseline (used by
/// reports that show the full deviation trace). Returns `None` when the
/// baseline is degenerate.
pub fn robust_z_trace(baseline: &[f64], window: &[f64]) -> Option<Vec<f64>> {
    let joined: Vec<f64> = baseline.to_vec();
    let _ = mad_z_scores(&joined)?; // validates baseline non-degenerate
    let med = median(baseline)?;
    let deviations: Vec<f64> = baseline.iter().map(|&x| (x - med).abs()).collect();
    let mad = median(&deviations)?;
    if mad <= 1e-12 {
        return None;
    }
    Some(window.iter().map(|&x| 0.6745 * (x - med) / mad).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Baseline: flat-ish noise. Cause sensor deviates at t=2, follower at
    /// t=10 with smaller magnitude, bystander never deviates.
    fn scenario() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let baseline: Vec<Vec<f64>> = (0..3)
            .map(|s| {
                (0..50)
                    .map(|i| 10.0 * (s + 1) as f64 + ((i * 7) % 5) as f64 * 0.1)
                    .collect()
            })
            .collect();
        let mut window: Vec<Vec<f64>> = baseline.iter().map(|b| b[..30].to_vec()).collect();
        for v in &mut window[0][2..30] {
            *v = 10.0 + 8.0; // cause: early, large
        }
        for v in &mut window[1][10..30] {
            *v = 20.0 + 3.0; // follower: later, smaller
        }
        (baseline, window)
    }

    #[test]
    fn cause_ranks_above_follower_and_bystander() {
        let (baseline, window) = scenario();
        let ranked = rank_causes(&baseline, &window, 4.0);
        assert_eq!(ranked[0].sensor, 0, "cause first: {ranked:?}");
        assert_eq!(ranked[1].sensor, 1);
        assert_eq!(ranked[2].sensor, 2);
        assert_eq!(ranked[2].score, 0.0);
        assert_eq!(ranked[0].onset, Some(2));
        assert_eq!(ranked[1].onset, Some(10));
    }

    #[test]
    fn scores_are_normalised() {
        let (baseline, window) = scenario();
        for c in rank_causes(&baseline, &window, 4.0) {
            assert!((0.0..=1.0).contains(&c.score), "{c:?}");
        }
    }

    #[test]
    fn no_deviation_means_all_zero() {
        let baseline: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..50).map(|i| (i % 5) as f64).collect())
            .collect();
        let window: Vec<Vec<f64>> = baseline.iter().map(|b| b[..10].to_vec()).collect();
        let ranked = rank_causes(&baseline, &window, 6.0);
        assert!(ranked.iter().all(|c| c.score == 0.0 && c.onset.is_none()));
    }

    #[test]
    fn constant_baseline_uses_fallback_scale() {
        let baseline = vec![vec![100.0; 20]];
        let mut window = vec![vec![100.0; 10]];
        window[0][5] = 150.0; // 50% jump against a 1% fallback scale
        let ranked = rank_causes(&baseline, &window, 4.0);
        assert_eq!(ranked[0].onset, Some(5));
        assert!(ranked[0].peak_z > 4.0);
    }

    #[test]
    fn robust_z_trace_matches_manual() {
        let baseline: Vec<f64> = (0..20).map(|i| (i % 4) as f64).collect(); // median 1.5, MAD 1
        let trace = robust_z_trace(&baseline, &[1.5, 3.5]).unwrap();
        assert!((trace[0]).abs() < 1e-12);
        assert!(trace[1] > 0.0);
        assert!(robust_z_trace(&[5.0; 10], &[5.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "sensor counts")]
    fn mismatched_layouts_panic() {
        rank_causes(&[vec![1.0]], &[], 3.0);
    }
}
