//! A discrete PID controller with output clamping and anti-windup.
//!
//! The bread-and-butter prescriptive primitive: fan-speed control towards a
//! temperature target, pump control towards a flow target. Integral
//! clamping (conditional integration) prevents windup when the output
//! saturates — the classic failure mode of naive PID in thermal loops.

/// PID controller state.
#[derive(Debug, Clone)]
pub struct Pid {
    kp: f64,
    ki: f64,
    kd: f64,
    /// Output limits.
    out_min: f64,
    out_max: f64,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with gains `(kp, ki, kd)` and output clamp
    /// `[out_min, out_max]`.
    ///
    /// # Panics
    /// Panics if `out_min >= out_max`.
    pub fn new(kp: f64, ki: f64, kd: f64, out_min: f64, out_max: f64) -> Self {
        assert!(out_min < out_max, "output range must be non-empty");
        Pid {
            kp,
            ki,
            kd,
            out_min,
            out_max,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Advances the controller: `setpoint` vs `measured` over `dt` seconds.
    /// Returns the clamped control output.
    ///
    /// # Panics
    /// Panics if `dt <= 0`.
    pub fn update(&mut self, setpoint: f64, measured: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let error = setpoint - measured;
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);
        // Tentative integral; kept only if the output is unsaturated or the
        // error drives it back towards the range (conditional integration).
        let tentative_integral = self.integral + error * dt;
        let unclamped = self.kp * error + self.ki * tentative_integral + self.kd * derivative;
        let output = unclamped.clamp(self.out_min, self.out_max);
        let saturated_high = unclamped > self.out_max && error > 0.0;
        let saturated_low = unclamped < self.out_min && error < 0.0;
        if !(saturated_high || saturated_low) {
            self.integral = tentative_integral;
        }
        output
    }

    /// Resets integral and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First-order plant: value moves towards `gain · input` with time
    /// constant `tau`.
    struct Plant {
        value: f64,
        gain: f64,
        tau: f64,
    }

    impl Plant {
        fn step(&mut self, input: f64, dt: f64) {
            let target = self.gain * input;
            self.value += (target - self.value) * (dt / self.tau).min(1.0);
        }
    }

    #[test]
    fn converges_to_setpoint_on_first_order_plant() {
        let mut pid = Pid::new(0.8, 0.5, 0.05, 0.0, 10.0);
        let mut plant = Plant {
            value: 0.0,
            gain: 5.0,
            tau: 3.0,
        };
        for _ in 0..500 {
            let u = pid.update(20.0, plant.value, 0.1);
            plant.step(u, 0.1);
        }
        assert!(
            (plant.value - 20.0).abs() < 0.2,
            "settled at {}",
            plant.value
        );
    }

    #[test]
    fn output_respects_clamp() {
        let mut pid = Pid::new(100.0, 0.0, 0.0, -1.0, 1.0);
        assert_eq!(pid.update(1_000.0, 0.0, 1.0), 1.0);
        assert_eq!(pid.update(-1_000.0, 0.0, 1.0), -1.0);
    }

    #[test]
    fn anti_windup_prevents_overshoot_hangover() {
        // Demand far above what the clamp allows for a while, then drop the
        // setpoint: a wound-up integral would keep the output pinned high.
        let mut pid = Pid::new(0.1, 1.0, 0.0, 0.0, 1.0);
        for _ in 0..100 {
            pid.update(1_000.0, 0.0, 1.0); // saturates high, integral frozen
        }
        // Now ask for zero with measured zero: output should fall promptly.
        let mut out = 1.0;
        for _ in 0..5 {
            out = pid.update(0.0, 0.0, 1.0);
        }
        assert!(out < 0.6, "integral windup leaked: {out}");
    }

    #[test]
    fn derivative_damps_error_changes() {
        let mut p = Pid::new(1.0, 0.0, 2.0, -100.0, 100.0);
        p.update(10.0, 0.0, 1.0); // error 10
        let out = p.update(10.0, 8.0, 1.0); // error 2, derivative −8
                                            // P alone would give 2; derivative pulls it strongly negative.
        assert!(out < 2.0 - 10.0, "{out}");
    }

    #[test]
    fn reset_clears_memory() {
        let mut p = Pid::new(1.0, 1.0, 1.0, -10.0, 10.0);
        p.update(5.0, 0.0, 1.0);
        p.reset();
        // After reset, derivative term is zero again.
        let out = p.update(1.0, 0.0, 1.0);
        assert!((out - (1.0 + 1.0)).abs() < 1e-9); // P + I(1·1), no D
    }
}
