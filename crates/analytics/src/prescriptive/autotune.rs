//! Application auto-tuning over discrete parameter spaces.
//!
//! The prescriptive Applications cell (Autotune, Miceli et al.; Active
//! Harmony, Ţăpuş et al.): find the parameter configuration (tile sizes,
//! thread counts, communication knobs) minimising a measured objective.
//! Two standard strategies over the same [`ParameterSpace`]:
//!
//! * [`coordinate_descent`] — cycle through parameters, line-searching one
//!   axis at a time; quick and good on separable spaces (Active Harmony's
//!   core loop is of this family).
//! * [`simulated_annealing`] — probabilistic hill-climbing that escapes the
//!   local minima coordinate descent falls into on coupled spaces.
//!
//! Both report evaluations spent, since real objective probes are full
//! application runs.

/// A discrete parameter space: each axis has an ordered list of candidate
/// values.
#[derive(Debug, Clone)]
pub struct ParameterSpace {
    axes: Vec<Vec<f64>>,
}

impl ParameterSpace {
    /// Creates a space from per-axis candidate lists.
    ///
    /// # Panics
    /// Panics if any axis is empty or the space has no axes.
    pub fn new(axes: Vec<Vec<f64>>) -> Self {
        assert!(!axes.is_empty(), "space needs at least one axis");
        assert!(axes.iter().all(|a| !a.is_empty()), "axes must be non-empty");
        ParameterSpace { axes }
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// Total number of configurations.
    pub fn size(&self) -> usize {
        self.axes.iter().map(|a| a.len()).product()
    }

    /// Concrete values of a configuration given per-axis indices.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn values(&self, idx: &[usize]) -> Vec<f64> {
        assert_eq!(idx.len(), self.dims(), "index arity mismatch");
        idx.iter()
            .zip(&self.axes)
            .map(|(&i, axis)| axis[i])
            .collect()
    }

    /// Axis lengths.
    pub fn axis_len(&self, axis: usize) -> usize {
        self.axes[axis].len()
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Best per-axis indices found.
    pub best_idx: Vec<usize>,
    /// Best concrete values.
    pub best_values: Vec<f64>,
    /// Objective at the best configuration.
    pub best_cost: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
}

/// Coordinate descent from `start` (per-axis indices): repeatedly sweeps
/// each axis keeping the others fixed, until a full cycle makes no
/// improvement or `max_evaluations` is exhausted.
pub fn coordinate_descent(
    space: &ParameterSpace,
    start: Vec<usize>,
    max_evaluations: usize,
    mut objective: impl FnMut(&[f64]) -> f64,
) -> TuneResult {
    let mut best_idx = start;
    let mut evals = 0usize;
    let mut best_cost = {
        evals += 1;
        objective(&space.values(&best_idx))
    };
    let mut improved = true;
    while improved && evals < max_evaluations {
        improved = false;
        for axis in 0..space.dims() {
            let original = best_idx[axis];
            for candidate in 0..space.axis_len(axis) {
                if candidate == original || evals >= max_evaluations {
                    continue;
                }
                best_idx[axis] = candidate;
                evals += 1;
                let cost = objective(&space.values(&best_idx));
                if cost < best_cost {
                    best_cost = cost;
                    improved = true;
                } else {
                    best_idx[axis] = original;
                }
                if improved && best_idx[axis] == candidate {
                    // Keep the improvement as the new reference on this axis.
                    break;
                }
            }
        }
    }
    TuneResult {
        best_values: space.values(&best_idx),
        best_idx,
        best_cost,
        evaluations: evals,
    }
}

/// Simulated annealing with geometric cooling. Deterministic given `seed`.
pub fn simulated_annealing(
    space: &ParameterSpace,
    start: Vec<usize>,
    max_evaluations: usize,
    initial_temp: f64,
    cooling: f64,
    seed: u64,
    mut objective: impl FnMut(&[f64]) -> f64,
) -> TuneResult {
    let mut rng = seed.max(1);
    let mut next_u64 = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut uniform = move || (next_u64() >> 11) as f64 / (1u64 << 53) as f64;

    let mut current = start;
    let mut evals = 1usize;
    let mut current_cost = objective(&space.values(&current));
    let mut best_idx = current.clone();
    let mut best_cost = current_cost;
    let mut temp = initial_temp.max(1e-9);
    let cooling = cooling.clamp(0.5, 0.999_999);
    while evals < max_evaluations {
        // Neighbour: move one random axis one step up or down (wrapping
        // suppressed — clamp at the ends).
        let axis = (uniform() * space.dims() as f64) as usize % space.dims();
        let dir = if uniform() < 0.5 { -1isize } else { 1 };
        let len = space.axis_len(axis) as isize;
        let cand = (current[axis] as isize + dir).clamp(0, len - 1) as usize;
        if cand == current[axis] {
            temp *= cooling;
            continue;
        }
        let mut next = current.clone();
        next[axis] = cand;
        evals += 1;
        let cost = objective(&space.values(&next));
        let accept = cost < current_cost || {
            let p = ((current_cost - cost) / temp).exp();
            uniform() < p
        };
        if accept {
            current = next;
            current_cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best_idx = current.clone();
            }
        }
        temp *= cooling;
    }
    TuneResult {
        best_values: space.values(&best_idx),
        best_idx,
        best_cost,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ParameterSpace {
        ParameterSpace::new(vec![
            (1..=16).map(|x| x as f64).collect(), // e.g. thread count
            vec![16.0, 32.0, 64.0, 128.0, 256.0], // e.g. tile size
        ])
    }

    #[test]
    fn space_accounting() {
        let s = grid();
        assert_eq!(s.dims(), 2);
        assert_eq!(s.size(), 80);
        assert_eq!(s.values(&[0, 4]), vec![1.0, 256.0]);
    }

    #[test]
    fn coordinate_descent_on_separable_objective() {
        let s = grid();
        // Optimal at threads=8, tile=64.
        let obj = |v: &[f64]| (v[0] - 8.0).powi(2) + ((v[1] - 64.0) / 16.0).powi(2);
        let r = coordinate_descent(&s, vec![0, 0], 500, obj);
        assert_eq!(r.best_values, vec![8.0, 64.0]);
        assert!(r.evaluations < 100);
    }

    #[test]
    fn annealing_escapes_local_minimum() {
        // A deceptive 1-D landscape: local minimum at index 1, global at
        // index 9, separated by a ridge.
        let costs = [5.0, 1.0, 6.0, 7.0, 8.0, 7.0, 5.0, 3.0, 1.5, 0.1];
        let s = ParameterSpace::new(vec![(0..10).map(|x| x as f64).collect()]);
        let obj = |v: &[f64]| costs[v[0] as usize];
        // Coordinate descent scans the full axis, so use a hill-climbing-
        // hostile start for annealing and verify it still finds the basin.
        let r = simulated_annealing(&s, vec![1], 3_000, 8.0, 0.999, 42, obj);
        assert_eq!(r.best_idx, vec![9], "annealing should cross the ridge");
        assert!((r.best_cost - 0.1).abs() < 1e-12);
    }

    #[test]
    fn budgets_are_respected() {
        let s = grid();
        let mut calls = 0usize;
        let r = coordinate_descent(&s, vec![0, 0], 7, |v| {
            calls += 1;
            v[0] + v[1]
        });
        assert!(calls <= 7);
        assert_eq!(calls, r.evaluations);

        let mut calls2 = 0usize;
        let r2 = simulated_annealing(&s, vec![0, 0], 9, 1.0, 0.9, 1, |v| {
            calls2 += 1;
            v[0] + v[1]
        });
        assert!(calls2 <= 9);
        assert_eq!(calls2, r2.evaluations);
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let s = grid();
        let obj = |v: &[f64]| (v[0] - 5.0).abs() + (v[1] - 32.0).abs() / 16.0;
        let a = simulated_annealing(&s, vec![0, 0], 300, 2.0, 0.99, 7, obj);
        let b = simulated_annealing(&s, vec![0, 0], 300, 2.0, 0.99, 7, obj);
        assert_eq!(a, b);
    }

    #[test]
    fn single_point_space_works() {
        let s = ParameterSpace::new(vec![vec![3.0]]);
        let r = coordinate_descent(&s, vec![0], 10, |v| v[0]);
        assert_eq!(r.best_values, vec![3.0]);
        assert_eq!(r.evaluations, 1);
    }
}
