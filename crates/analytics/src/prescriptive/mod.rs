//! Prescriptive analytics — *"what should we do?"*.
//!
//! Models that convert system state (and, in proactive mode, predictions)
//! into knob settings: controllers, setpoint optimizers, DVFS governors,
//! cooling-mode economics, application auto-tuning and an operator
//! recommendation engine.

pub mod autotune;
pub mod cooling_mode;
pub mod dvfs;
pub mod pid;
pub mod recommend;
pub mod setpoint;
