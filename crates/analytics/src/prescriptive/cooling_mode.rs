//! Cooling-mode switching economics — "switching between types of cooling"
//! (Jiang et al., ISCA'19), the prescriptive Building-Infrastructure cell.
//!
//! The switcher compares the projected cost of serving the current heat
//! load with free cooling versus the chiller, using the (forecast) outside
//! temperature, and recommends a mode. Switching is not free — compressors
//! dislike short cycles — so a minimum dwell time enforces commitment to a
//! decision.

use serde::{Deserialize, Serialize};

/// Recommended plant mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModeAdvice {
    /// Run the dry coolers.
    FreeCooling,
    /// Run the chiller.
    Chiller,
}

/// Plant economics parameters mirroring the simulated plant.
#[derive(Debug, Clone, Copy)]
pub struct PlantModel {
    /// Dry-cooler approach temperature, °C.
    pub approach_c: f64,
    /// Dry-cooler fan power fraction of rejected heat.
    pub fan_fraction: f64,
    /// Chiller Carnot factor.
    pub carnot_factor: f64,
    /// Chiller maximum COP.
    pub max_cop: f64,
}

impl Default for PlantModel {
    fn default() -> Self {
        PlantModel {
            approach_c: 4.0,
            fan_fraction: 0.02,
            carnot_factor: 0.45,
            max_cop: 8.0,
        }
    }
}

impl PlantModel {
    /// Whether free cooling can hold `setpoint_c` at `outside_c`.
    pub fn free_cooling_feasible(&self, setpoint_c: f64, outside_c: f64) -> bool {
        outside_c + self.approach_c <= setpoint_c
    }

    /// Projected plant power (kW) in free-cooling mode for `heat_kw`.
    pub fn free_cooling_power_kw(&self, heat_kw: f64) -> f64 {
        heat_kw.max(0.0) * self.fan_fraction
    }

    /// Projected plant power (kW) on the chiller.
    pub fn chiller_power_kw(&self, heat_kw: f64, setpoint_c: f64, outside_c: f64) -> f64 {
        let lift = (outside_c + self.approach_c - setpoint_c).max(1.0);
        let cop = (self.carnot_factor * (setpoint_c + 273.15) / lift).min(self.max_cop);
        heat_kw.max(0.0) / cop
    }
}

/// Stateful mode switcher with dwell-time hysteresis.
#[derive(Debug, Clone)]
pub struct CoolingModeSwitcher {
    model: PlantModel,
    /// Minimum ticks between mode changes.
    min_dwell: u64,
    current: ModeAdvice,
    ticks_in_mode: u64,
    switches: u64,
}

impl CoolingModeSwitcher {
    /// Creates a switcher starting in free-cooling mode.
    pub fn new(model: PlantModel, min_dwell: u64) -> Self {
        CoolingModeSwitcher {
            model,
            min_dwell,
            current: ModeAdvice::FreeCooling,
            ticks_in_mode: 0,
            switches: 0,
        }
    }

    /// Current recommendation.
    pub fn current(&self) -> ModeAdvice {
        self.current
    }

    /// Number of mode changes so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Advances one tick with the (possibly forecast) outside temperature
    /// and heat load; returns the mode to run.
    ///
    /// Feasibility dominates: if free cooling cannot hold the setpoint, the
    /// chiller is mandatory regardless of dwell. Otherwise the cheaper mode
    /// wins once the dwell time allows a switch.
    pub fn advise(&mut self, setpoint_c: f64, outside_c: f64, heat_kw: f64) -> ModeAdvice {
        self.ticks_in_mode += 1;
        let feasible = self.model.free_cooling_feasible(setpoint_c, outside_c);
        let desired = if !feasible {
            ModeAdvice::Chiller
        } else {
            let free = self.model.free_cooling_power_kw(heat_kw);
            let chill = self.model.chiller_power_kw(heat_kw, setpoint_c, outside_c);
            if free <= chill {
                ModeAdvice::FreeCooling
            } else {
                ModeAdvice::Chiller
            }
        };
        let must_switch = !feasible && self.current == ModeAdvice::FreeCooling;
        if desired != self.current && (must_switch || self.ticks_in_mode >= self.min_dwell) {
            self.current = desired;
            self.ticks_in_mode = 0;
            self.switches += 1;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_boundary() {
        let m = PlantModel::default();
        assert!(m.free_cooling_feasible(30.0, 26.0));
        assert!(m.free_cooling_feasible(30.0, 25.0));
        assert!(!m.free_cooling_feasible(30.0, 27.0));
    }

    #[test]
    fn free_cooling_is_cheaper_when_feasible() {
        let m = PlantModel::default();
        let free = m.free_cooling_power_kw(500.0);
        let chill = m.chiller_power_kw(500.0, 30.0, 20.0);
        assert!(free < chill, "{free} vs {chill}");
    }

    #[test]
    fn infeasible_forces_chiller_immediately() {
        let mut s = CoolingModeSwitcher::new(PlantModel::default(), 100);
        // Hot day, cold setpoint: mandatory chiller despite dwell.
        assert_eq!(s.advise(20.0, 35.0, 500.0), ModeAdvice::Chiller);
        assert_eq!(s.switches(), 1);
    }

    #[test]
    fn dwell_time_suppresses_flapping() {
        let mut s = CoolingModeSwitcher::new(PlantModel::default(), 10);
        // Start on free cooling; outside oscillating just around the
        // feasibility edge would otherwise flap every tick.
        let mut switches_seen = Vec::new();
        for tick in 0..40 {
            // Alternate between "chiller slightly cheaper" (infeasible is
            // not used here — keep both feasible, costs close) by modulating
            // outside temperature below the feasibility boundary.
            let outside = if tick % 2 == 0 { 10.0 } else { 25.0 };
            s.advise(30.0, outside, 500.0);
            switches_seen.push(s.switches());
        }
        // Both temps keep free cooling feasible and cheaper → no switches.
        assert_eq!(*switches_seen.last().unwrap(), 0);
    }

    #[test]
    fn returns_to_free_cooling_after_dwell() {
        let mut s = CoolingModeSwitcher::new(PlantModel::default(), 5);
        // Force chiller.
        s.advise(20.0, 35.0, 500.0);
        assert_eq!(s.current(), ModeAdvice::Chiller);
        // Cold night: free cooling feasible and cheaper, but dwell first.
        for i in 0..10 {
            let mode = s.advise(20.0, 5.0, 500.0);
            if i < 4 {
                assert_eq!(mode, ModeAdvice::Chiller, "tick {i} still dwelling");
            }
        }
        assert_eq!(s.current(), ModeAdvice::FreeCooling);
        assert_eq!(s.switches(), 2);
    }

    #[test]
    fn zero_heat_prefers_free_cooling() {
        let mut s = CoolingModeSwitcher::new(PlantModel::default(), 1);
        assert_eq!(s.advise(30.0, 10.0, 0.0), ModeAdvice::FreeCooling);
    }
}
