//! Scalar setpoint optimization by golden-section search.
//!
//! The cooling-setpoint tuning cell (Conficoni et al., Jiang et al.): total
//! facility power as a function of the inlet-water setpoint is unimodal —
//! too cold wastes chiller work, too warm wastes IT leakage/fan power — so
//! golden-section search over the legal range finds the optimum with few
//! probes. Probes are *expensive* (each one means running the plant at the
//! candidate setpoint for a settling period), which is why a
//! few-evaluations method is the right family and why the optimizer also
//! supports an explicit probe budget.

/// Result of a setpoint optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimum {
    /// The best knob value found.
    pub knob: f64,
    /// Objective value at the optimum.
    pub cost: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
}

/// Minimises a unimodal `objective` over `[lo, hi]` by golden-section
/// search, stopping when the bracket is below `tolerance` or when
/// `max_evaluations` probes were spent.
///
/// # Panics
/// Panics if `lo >= hi` or `tolerance <= 0`.
pub fn golden_section_min(
    lo: f64,
    hi: f64,
    tolerance: f64,
    max_evaluations: usize,
    mut objective: impl FnMut(f64) -> f64,
) -> Optimum {
    assert!(lo < hi, "bracket must be non-empty");
    assert!(tolerance > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut a = lo;
    let mut b = hi;
    let mut evals = 0usize;
    let mut probe = |x: f64, evals: &mut usize| {
        *evals += 1;
        objective(x)
    };
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = probe(c, &mut evals);
    let mut fd = probe(d, &mut evals);
    while (b - a) > tolerance && evals < max_evaluations {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = probe(c, &mut evals);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = probe(d, &mut evals);
        }
    }
    let (knob, cost) = if fc < fd { (c, fc) } else { (d, fd) };
    Optimum {
        knob,
        cost,
        evaluations: evals,
    }
}

/// A stateful re-optimising setpoint controller: periodically re-runs the
/// search (conditions drift — weather, load) and otherwise holds the last
/// optimum. `hysteresis` suppresses knob changes smaller than the plant is
/// worth disturbing for.
#[derive(Debug, Clone)]
pub struct SetpointController {
    lo: f64,
    hi: f64,
    tolerance: f64,
    budget: usize,
    hysteresis: f64,
    current: Option<f64>,
}

impl SetpointController {
    /// Creates the controller over knob range `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, tolerance: f64, budget: usize, hysteresis: f64) -> Self {
        assert!(lo < hi, "range must be non-empty");
        SetpointController {
            lo,
            hi,
            tolerance,
            budget,
            hysteresis: hysteresis.max(0.0),
            current: None,
        }
    }

    /// The currently-held setpoint, if one was ever computed.
    pub fn current(&self) -> Option<f64> {
        self.current
    }

    /// Re-optimises against `objective` and returns the setpoint to apply.
    /// Returns the previous setpoint unchanged when the new optimum is
    /// within the hysteresis band.
    pub fn reoptimize(&mut self, objective: impl FnMut(f64) -> f64) -> f64 {
        let opt = golden_section_min(self.lo, self.hi, self.tolerance, self.budget, objective);
        match self.current {
            Some(cur) if (opt.knob - cur).abs() <= self.hysteresis => cur,
            _ => {
                self.current = Some(opt.knob);
                opt.knob
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_parabola_minimum() {
        let opt = golden_section_min(0.0, 10.0, 1e-6, 200, |x| (x - 3.7).powi(2) + 1.0);
        assert!((opt.knob - 3.7).abs() < 1e-4, "{}", opt.knob);
        assert!((opt.cost - 1.0).abs() < 1e-6);
    }

    #[test]
    fn respects_evaluation_budget() {
        let mut calls = 0;
        let opt = golden_section_min(0.0, 100.0, 1e-12, 10, |x| {
            calls += 1;
            (x - 50.0).powi(2)
        });
        assert_eq!(calls, opt.evaluations);
        assert!(opt.evaluations <= 10);
        // Even with a tiny budget the answer should be in the right region.
        assert!((opt.knob - 50.0).abs() < 25.0);
    }

    #[test]
    fn boundary_minimum_is_found() {
        let opt = golden_section_min(2.0, 8.0, 1e-5, 100, |x| x); // min at left edge
        assert!(opt.knob < 2.01, "{}", opt.knob);
    }

    #[test]
    fn cooling_shaped_objective() {
        // U-shaped facility power vs setpoint: chiller work falls with
        // setpoint, IT leakage rises with it.
        let facility_power =
            |sp: f64| 400.0 / (sp - 10.0) + 0.8 * (sp - 18.0).max(0.0).powi(2) * 0.1 + 100.0;
        let opt = golden_section_min(18.0, 45.0, 0.01, 100, facility_power);
        // Analytic optimum of 400/(x−10) + 0.08(x−18)² near x ≈ 24.
        assert!(opt.knob > 20.0 && opt.knob < 32.0, "{}", opt.knob);
    }

    #[test]
    fn controller_applies_hysteresis() {
        let mut c = SetpointController::new(0.0, 10.0, 1e-4, 100, 0.5);
        let first = c.reoptimize(|x| (x - 4.0).powi(2));
        assert!((first - 4.0).abs() < 0.01);
        // Optimum shifts slightly: inside hysteresis, knob holds.
        let second = c.reoptimize(|x| (x - 4.2).powi(2));
        assert_eq!(second, first);
        // Optimum shifts a lot: knob moves.
        let third = c.reoptimize(|x| (x - 8.0).powi(2));
        assert!((third - 8.0).abs() < 0.01);
        assert_eq!(c.current(), Some(third));
    }

    #[test]
    #[should_panic(expected = "bracket")]
    fn rejects_empty_bracket() {
        golden_section_min(5.0, 5.0, 0.1, 10, |x| x);
    }
}
