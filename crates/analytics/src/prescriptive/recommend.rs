//! Rule-based operator recommendations.
//!
//! The paper notes that prescriptive output can be applied "either in an
//! automated way, or by human inspection". This module is the
//! human-inspection path: it maps diagnoses (anomaly kinds with evidence)
//! to ranked, explained actions — the "response to anomalies" and "code
//! improvement recommendation" cells (Bodik et al.'s fingerprint-driven
//! responses, Zhang et al.'s usage recommendations).

use serde::{Deserialize, Serialize};

/// A diagnosis fed into the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Stable kind label (e.g. `"fan-failure"`, `"memory-leak"`).
    pub kind: String,
    /// Affected entity (node name, rack, job id) for message templating.
    pub subject: String,
    /// Detector confidence/severity in `[0, 1]`.
    pub severity: f64,
}

/// One recommended action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// What to do, templated with the subject.
    pub action: String,
    /// Why — the diagnosis that produced it.
    pub rationale: String,
    /// Priority score (severity × rule weight); list is sorted by this.
    pub priority: f64,
    /// Whether the action can safely be automated without operator review.
    pub automatable: bool,
}

/// A rule: matches a diagnosis kind, emits an action template.
struct Rule {
    kind: &'static str,
    weight: f64,
    automatable: bool,
    template: fn(&Diagnosis) -> String,
}

/// The built-in rulebook covering the simulator's fault vocabulary.
const RULES: &[Rule] = &[
    Rule {
        kind: "fan-failure",
        weight: 1.0,
        automatable: true,
        template: |d| {
            format!(
                "Drain {} and schedule fan replacement; raise neighbouring fan speeds meanwhile",
                d.subject
            )
        },
    },
    Rule {
        kind: "thermal-degradation",
        weight: 0.7,
        automatable: false,
        template: |d| {
            format!(
                "Schedule thermal service (repaste/dust) for {} at next maintenance window",
                d.subject
            )
        },
    },
    Rule {
        kind: "memory-leak",
        weight: 0.8,
        automatable: true,
        template: |d| {
            format!(
                "Notify owner of workload on {}; enable OOM guard and cordon after current job",
                d.subject
            )
        },
    },
    Rule {
        kind: "cpu-contention",
        weight: 0.8,
        automatable: true,
        template: |d| {
            format!(
                "Kill orphaned processes on {} and audit prolog/epilog scripts",
                d.subject
            )
        },
    },
    Rule {
        kind: "network-hog",
        weight: 0.9,
        automatable: false,
        template: |d| {
            format!("Rate-limit external traffic on {} uplink; review I/O scheduling of co-located jobs", d.subject)
        },
    },
    Rule {
        kind: "cooling-degradation",
        weight: 1.0,
        automatable: false,
        template: |d| {
            format!("Inspect {} (heat exchanger fouling / pump wear); consider raising inlet setpoint until serviced", d.subject)
        },
    },
    Rule {
        kind: "cryptominer",
        weight: 1.0,
        automatable: true,
        template: |d| {
            format!(
                "Suspend job {} pending review: utilization signature matches cryptomining",
                d.subject
            )
        },
    },
    Rule {
        kind: "inefficient-code",
        weight: 0.3,
        automatable: false,
        template: |d| {
            format!("Recommend profiling session to owner of {}: memory-bound phases dominate at max clock", d.subject)
        },
    },
];

/// Produces ranked recommendations for a batch of diagnoses. Unknown kinds
/// yield a generic investigation action with low priority, so nothing a
/// detector reports is silently dropped.
pub fn recommend(diagnoses: &[Diagnosis]) -> Vec<Recommendation> {
    let mut out: Vec<Recommendation> = diagnoses
        .iter()
        .map(|d| {
            let sev = d.severity.clamp(0.0, 1.0);
            match RULES.iter().find(|r| r.kind == d.kind) {
                Some(rule) => Recommendation {
                    action: (rule.template)(d),
                    rationale: format!("{} on {} (severity {:.2})", d.kind, d.subject, sev),
                    priority: sev * rule.weight,
                    automatable: rule.automatable,
                },
                None => Recommendation {
                    action: format!("Investigate unclassified anomaly on {}", d.subject),
                    rationale: format!("unknown kind {:?} (severity {:.2})", d.kind, sev),
                    priority: sev * 0.1,
                    automatable: false,
                },
            }
        })
        .collect();
    out.sort_by(|a, b| b.priority.total_cmp(&a.priority));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(kind: &str, subject: &str, sev: f64) -> Diagnosis {
        Diagnosis {
            kind: kind.into(),
            subject: subject.into(),
            severity: sev,
        }
    }

    #[test]
    fn known_kinds_get_specific_actions() {
        let recs = recommend(&[diag("fan-failure", "node7", 0.9)]);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].action.contains("node7"));
        assert!(recs[0].action.contains("fan"));
        assert!(recs[0].automatable);
        assert!((recs[0].priority - 0.9).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_by_priority() {
        let recs = recommend(&[
            diag("inefficient-code", "job42", 0.9),       // 0.27
            diag("cooling-degradation", "chiller0", 0.8), // 0.8
            diag("memory-leak", "node3", 0.5),            // 0.4
        ]);
        assert!(recs[0].action.contains("chiller0"));
        assert!(recs[1].action.contains("node3"));
        assert!(recs[2].rationale.contains("inefficient-code"));
    }

    #[test]
    fn unknown_kind_is_not_dropped() {
        let recs = recommend(&[diag("quantum-flux", "node1", 1.0)]);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].action.contains("Investigate"));
        assert!(!recs[0].automatable);
        assert!(recs[0].priority < 0.2);
    }

    #[test]
    fn severity_is_clamped() {
        let recs = recommend(&[diag("fan-failure", "n", 5.0)]);
        assert!(recs[0].priority <= 1.0);
        let recs = recommend(&[diag("fan-failure", "n", -1.0)]);
        assert_eq!(recs[0].priority, 0.0);
    }

    #[test]
    fn every_simulator_fault_kind_has_a_rule() {
        for kind in [
            "fan-failure",
            "thermal-degradation",
            "memory-leak",
            "cpu-contention",
            "network-hog",
            "cooling-degradation",
        ] {
            let recs = recommend(&[diag(kind, "x", 1.0)]);
            assert!(
                !recs[0].action.contains("Investigate unclassified"),
                "missing rule for {kind}"
            );
        }
    }
}
