//! DVFS governors: reactive and proactive CPU-frequency tuning.
//!
//! The prescriptive System-Hardware cell (GEOPM, Eastep et al.; EAR,
//! Corbalan & Brochard; SuperMUC energy-aware scheduling, Auweter et al.).
//! The governor maps utilization to a frequency: memory-bound or idle
//! phases run slower (large power win, small performance loss — the CV²f
//! cube), compute-bound phases run at full clock.
//!
//! Two modes, matching §V-A of the paper:
//!
//! * **Reactive** — decides from the *current* utilization sample. Always a
//!   step behind phase changes: it keeps the clock high for a while after a
//!   compute phase ends, and — worse for time-to-solution — keeps it *low*
//!   just after a compute phase starts.
//! * **Proactive** — feeds utilization into a forecaster and decides from
//!   the *predicted next* utilization, anticipating phase transitions. This
//!   is the "predictive + prescriptive beats prescriptive alone" claim the
//!   E5 experiment quantifies.

use crate::predictive::forecast::Forecaster;
use serde::{Deserialize, Serialize};

/// Governor decision mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GovernorMode {
    /// Decide from the current sample.
    Reactive,
    /// Decide from the forecast of the next sample.
    Proactive,
}

/// Frequency policy: a piecewise-linear map from utilization to clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqPolicy {
    /// Frequency used at/below `low_util`, GHz.
    pub f_min_ghz: f64,
    /// Frequency used at/above `high_util`, GHz.
    pub f_max_ghz: f64,
    /// Utilization at/below which the minimum clock applies.
    pub low_util: f64,
    /// Utilization at/above which the maximum clock applies.
    pub high_util: f64,
}

impl FreqPolicy {
    /// A sensible default for the simulated nodes (1.2–3.0 GHz).
    pub fn default_for_range(f_min_ghz: f64, f_max_ghz: f64) -> Self {
        FreqPolicy {
            f_min_ghz,
            f_max_ghz,
            low_util: 0.2,
            high_util: 0.75,
        }
    }

    /// Frequency for a utilization level.
    pub fn frequency_for(&self, util: f64) -> f64 {
        let u = util.clamp(0.0, 1.0);
        if u <= self.low_util {
            self.f_min_ghz
        } else if u >= self.high_util {
            self.f_max_ghz
        } else {
            let t = (u - self.low_util) / (self.high_util - self.low_util);
            self.f_min_ghz + t * (self.f_max_ghz - self.f_min_ghz)
        }
    }
}

/// A per-node DVFS governor.
pub struct DvfsGovernor {
    policy: FreqPolicy,
    mode: GovernorMode,
    forecaster: Box<dyn Forecaster + Send>,
    last_decision_ghz: f64,
}

impl DvfsGovernor {
    /// Creates a governor; `forecaster` is only consulted in proactive
    /// mode but always kept warm so the mode can be switched live.
    pub fn new(
        policy: FreqPolicy,
        mode: GovernorMode,
        forecaster: Box<dyn Forecaster + Send>,
    ) -> Self {
        DvfsGovernor {
            last_decision_ghz: policy.f_max_ghz,
            policy,
            mode,
            forecaster,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> GovernorMode {
        self.mode
    }

    /// Switches mode (the forecaster has been learning all along).
    pub fn set_mode(&mut self, mode: GovernorMode) {
        self.mode = mode;
    }

    /// Feeds the latest utilization sample and returns the frequency to
    /// apply for the next interval, GHz.
    pub fn decide(&mut self, utilization: f64) -> f64 {
        self.forecaster.update(utilization);
        let basis = match self.mode {
            GovernorMode::Reactive => utilization,
            GovernorMode::Proactive => self
                .forecaster
                .forecast(1)
                .unwrap_or(utilization)
                .clamp(0.0, 1.0),
        };
        self.last_decision_ghz = self.policy.frequency_for(basis);
        self.last_decision_ghz
    }

    /// The most recent decision.
    pub fn last_decision_ghz(&self) -> f64 {
        self.last_decision_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictive::forecast::{Holt, SimpleExp};

    #[test]
    fn policy_maps_utilization_bands() {
        let p = FreqPolicy::default_for_range(1.2, 3.0);
        assert_eq!(p.frequency_for(0.0), 1.2);
        assert_eq!(p.frequency_for(0.2), 1.2);
        assert_eq!(p.frequency_for(0.75), 3.0);
        assert_eq!(p.frequency_for(1.0), 3.0);
        let mid = p.frequency_for(0.475); // halfway between 0.2 and 0.75
        assert!((mid - 2.1).abs() < 1e-9);
        // Clamped inputs.
        assert_eq!(p.frequency_for(-1.0), 1.2);
        assert_eq!(p.frequency_for(2.0), 3.0);
    }

    #[test]
    fn reactive_follows_current_sample() {
        let p = FreqPolicy::default_for_range(1.2, 3.0);
        let mut g = DvfsGovernor::new(p, GovernorMode::Reactive, Box::new(SimpleExp::new(0.5)));
        assert_eq!(g.decide(0.1), 1.2);
        assert_eq!(g.decide(0.9), 3.0);
        assert_eq!(g.last_decision_ghz(), 3.0);
    }

    #[test]
    fn proactive_anticipates_a_ramp() {
        let p = FreqPolicy::default_for_range(1.2, 3.0);
        let mut reactive =
            DvfsGovernor::new(p, GovernorMode::Reactive, Box::new(Holt::new(0.8, 0.8)));
        let mut proactive =
            DvfsGovernor::new(p, GovernorMode::Proactive, Box::new(Holt::new(0.8, 0.8)));
        // Utilization ramping up steadily: the proactive governor should be
        // at a higher clock than the reactive one mid-ramp.
        let ramp: Vec<f64> = (0..20).map(|i| 0.05 * i as f64).collect();
        let mut last_r = 0.0;
        let mut last_p = 0.0;
        for &u in &ramp {
            last_r = reactive.decide(u);
            last_p = proactive.decide(u);
        }
        assert!(
            last_p >= last_r,
            "proactive {last_p} should lead reactive {last_r}"
        );
        // Mid-ramp specifically (u=0.5 zone): compare at step 12.
        let mut r2 = DvfsGovernor::new(p, GovernorMode::Reactive, Box::new(Holt::new(0.8, 0.8)));
        let mut p2 = DvfsGovernor::new(p, GovernorMode::Proactive, Box::new(Holt::new(0.8, 0.8)));
        let (mut fr, mut fp) = (0.0, 0.0);
        for &u in &ramp[..13] {
            fr = r2.decide(u);
            fp = p2.decide(u);
        }
        assert!(fp > fr, "mid-ramp: proactive {fp} vs reactive {fr}");
    }

    #[test]
    fn mode_switch_is_live() {
        let p = FreqPolicy::default_for_range(1.2, 3.0);
        let mut g = DvfsGovernor::new(p, GovernorMode::Reactive, Box::new(Holt::new(0.5, 0.3)));
        for _ in 0..10 {
            g.decide(0.9);
        }
        g.set_mode(GovernorMode::Proactive);
        assert_eq!(g.mode(), GovernorMode::Proactive);
        // Forecaster was learning the whole time: steady 0.9 forecasts 0.9.
        assert_eq!(g.decide(0.9), 3.0);
    }

    #[test]
    fn proactive_clamps_wild_forecasts() {
        let p = FreqPolicy::default_for_range(1.2, 3.0);
        let mut g = DvfsGovernor::new(p, GovernorMode::Proactive, Box::new(Holt::new(1.0, 1.0)));
        // A forecaster with maximal gains can overshoot past 1.0; the
        // governor must still emit a legal frequency.
        for u in [0.0, 0.5, 1.0, 1.0, 1.0] {
            let f = g.decide(u);
            assert!((1.2..=3.0).contains(&f));
        }
    }
}
