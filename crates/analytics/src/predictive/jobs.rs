//! Job duration and resource prediction from submission metadata.
//!
//! The paper's predictive Applications cell: at submission time the
//! scheduler knows only *who* submits *what shape* of job (user, node
//! count, requested walltime) — yet that is enough, because users resubmit
//! similar work (PRIONN, Wyatt et al.; McKenna et al.; Evalix, Emeras
//! et al.). The canonical baseline is a per-user history model with a k-NN
//! fallback over submission features, which is what this module implements.

use serde::{Deserialize, Serialize};

/// What the scheduler knows at submission time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// Submitting user.
    pub user: u32,
    /// Nodes requested.
    pub nodes: u32,
    /// Requested walltime, seconds.
    pub requested_walltime_s: f64,
}

/// A completed job the predictor can learn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// The submission.
    pub submission: Submission,
    /// Actual runtime, seconds.
    pub runtime_s: f64,
    /// Mean power per node, watts (for resource prediction).
    pub mean_node_power_w: f64,
}

/// Per-user recency-weighted duration predictor with k-NN fallback.
#[derive(Debug, Clone, Default)]
pub struct JobPredictor {
    history: Vec<Outcome>,
}

/// A duration/power prediction with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted runtime, seconds.
    pub runtime_s: f64,
    /// Predicted mean per-node power, watts.
    pub mean_node_power_w: f64,
    /// `true` when the prediction came from the user's own history,
    /// `false` when the global k-NN fallback produced it.
    pub from_user_history: bool,
}

impl JobPredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed job.
    pub fn observe(&mut self, outcome: Outcome) {
        self.history.push(outcome);
    }

    /// Number of outcomes learned from.
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// Predicts runtime/power for a new submission. `None` before any
    /// history exists.
    ///
    /// Strategy: if the user has history, use the recency-weighted mean of
    /// their own similar jobs (same node count preferred); otherwise fall
    /// back to the k nearest submissions of any user in (nodes,
    /// log-walltime) space.
    pub fn predict(&self, s: Submission) -> Option<Prediction> {
        if self.history.is_empty() {
            return None;
        }
        let user_jobs: Vec<&Outcome> = self
            .history
            .iter()
            .filter(|o| o.submission.user == s.user)
            .collect();
        if !user_jobs.is_empty() {
            // Prefer exact node-count matches; otherwise any of the user's
            // jobs.
            let same_size: Vec<&&Outcome> = user_jobs
                .iter()
                .filter(|o| o.submission.nodes == s.nodes)
                .collect();
            let pool: Vec<&Outcome> = if same_size.is_empty() {
                user_jobs.clone()
            } else {
                same_size.into_iter().copied().collect()
            };
            // Users overestimate walltime *consistently*, so the stable
            // quantity to learn is the runtime/walltime ratio, not the
            // absolute runtime (the insight behind the cited predictors).
            // Recency weights: newest job weight 1, halving every 8 jobs
            // back.
            let n = pool.len();
            let mut wsum = 0.0;
            let mut ratio = 0.0;
            let mut pw = 0.0;
            for (i, o) in pool.iter().enumerate() {
                let age = (n - 1 - i) as f64;
                let w = 0.5f64.powf(age / 8.0);
                wsum += w;
                ratio += w * (o.runtime_s / o.submission.requested_walltime_s.max(1.0));
                pw += w * o.mean_node_power_w;
            }
            let ratio = (ratio / wsum).clamp(0.0, 1.0);
            return Some(Prediction {
                runtime_s: ratio * s.requested_walltime_s,
                mean_node_power_w: pw / wsum,
                from_user_history: true,
            });
        }
        // Global k-NN fallback.
        let k = 5.min(self.history.len());
        let mut scored: Vec<(f64, &Outcome)> = self
            .history
            .iter()
            .map(|o| (Self::distance(&o.submission, &s), o))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let top = &scored[..k];
        Some(Prediction {
            runtime_s: top.iter().map(|(_, o)| o.runtime_s).sum::<f64>() / k as f64,
            mean_node_power_w: top.iter().map(|(_, o)| o.mean_node_power_w).sum::<f64>() / k as f64,
            from_user_history: false,
        })
    }

    fn distance(a: &Submission, b: &Submission) -> f64 {
        let dn = (a.nodes as f64).ln() - (b.nodes as f64).ln();
        let dw = a.requested_walltime_s.max(1.0).ln() - b.requested_walltime_s.max(1.0).ln();
        (dn * dn + dw * dw).sqrt()
    }

    /// Mean absolute percentage error of the predictor evaluated by
    /// chronological replay: each outcome is predicted before being
    /// observed. Jobs with no available prediction are skipped; returns
    /// `None` if nothing could be scored.
    pub fn replay_mape(outcomes: &[Outcome]) -> Option<f64> {
        let mut p = JobPredictor::new();
        let mut errs = Vec::new();
        for &o in outcomes {
            if let Some(pred) = p.predict(o.submission) {
                if o.runtime_s > 1e-9 {
                    errs.push(((pred.runtime_s - o.runtime_s) / o.runtime_s).abs());
                }
            }
            p.observe(o);
        }
        (!errs.is_empty()).then(|| errs.iter().sum::<f64>() / errs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(user: u32, nodes: u32, wall: f64, rt: f64) -> Outcome {
        Outcome {
            submission: Submission {
                user,
                nodes,
                requested_walltime_s: wall,
            },
            runtime_s: rt,
            mean_node_power_w: 200.0 + rt / 100.0,
        }
    }

    #[test]
    fn empty_predictor_returns_none() {
        let p = JobPredictor::new();
        assert!(p
            .predict(Submission {
                user: 1,
                nodes: 2,
                requested_walltime_s: 100.0
            })
            .is_none());
    }

    #[test]
    fn user_history_dominates() {
        let mut p = JobPredictor::new();
        for _ in 0..5 {
            p.observe(outcome(1, 4, 3_600.0, 1_000.0));
            p.observe(outcome(2, 4, 3_600.0, 5_000.0));
        }
        let pred = p
            .predict(Submission {
                user: 1,
                nodes: 4,
                requested_walltime_s: 3_600.0,
            })
            .unwrap();
        assert!(pred.from_user_history);
        assert!((pred.runtime_s - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn recency_weighting_tracks_behaviour_change() {
        let mut p = JobPredictor::new();
        // User used to run 1000 s jobs, recently runs 100 s jobs.
        for _ in 0..20 {
            p.observe(outcome(1, 2, 600.0, 1_000.0));
        }
        for _ in 0..20 {
            p.observe(outcome(1, 2, 600.0, 100.0));
        }
        let pred = p
            .predict(Submission {
                user: 1,
                nodes: 2,
                requested_walltime_s: 600.0,
            })
            .unwrap();
        assert!(
            pred.runtime_s < 300.0,
            "recent behaviour wins: {}",
            pred.runtime_s
        );
    }

    #[test]
    fn unknown_user_falls_back_to_knn() {
        let mut p = JobPredictor::new();
        for i in 0..10 {
            p.observe(outcome(i, 8, 7_200.0, 2_000.0));
            p.observe(outcome(i + 100, 1, 60.0, 30.0));
        }
        let big = p
            .predict(Submission {
                user: 999,
                nodes: 8,
                requested_walltime_s: 7_000.0,
            })
            .unwrap();
        assert!(!big.from_user_history);
        assert!((big.runtime_s - 2_000.0).abs() < 1.0);
        let small = p
            .predict(Submission {
                user: 999,
                nodes: 1,
                requested_walltime_s: 90.0,
            })
            .unwrap();
        assert!((small.runtime_s - 30.0).abs() < 1.0);
    }

    #[test]
    fn node_count_match_preferred_over_other_sizes() {
        let mut p = JobPredictor::new();
        p.observe(outcome(1, 1, 600.0, 100.0));
        p.observe(outcome(1, 16, 6_000.0, 4_000.0));
        let pred = p
            .predict(Submission {
                user: 1,
                nodes: 16,
                requested_walltime_s: 6_000.0,
            })
            .unwrap();
        // Ratio learned from the 16-node job (2/3), not the 1-node job
        // (1/6).
        assert!((pred.runtime_s - 4_000.0).abs() < 1.0, "{}", pred.runtime_s);
    }

    #[test]
    fn replay_beats_walltime_guess_on_habitual_users() {
        // Users consistently use 30% of requested walltime.
        let mut outcomes = Vec::new();
        for round in 0..30 {
            for user in 0..5 {
                let wall = 1_000.0 * (user + 1) as f64;
                let rt = wall * 0.3 + (round % 3) as f64 * 5.0;
                outcomes.push(outcome(user, 4, wall, rt));
            }
        }
        let mape = JobPredictor::replay_mape(&outcomes).unwrap();
        // Walltime-as-estimate would be off by ~233%; history should be
        // within a few percent.
        assert!(mape < 0.1, "mape {mape}");
    }
}
