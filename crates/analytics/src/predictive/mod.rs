//! Predictive analytics — *"what will happen?"*.
//!
//! Forecasting (*foresight*) over the hindsight the other types provide:
//! exponential-smoothing forecasters, autoregressive models, regression on
//! engineered features, k-NN job prediction from submission metadata,
//! hazard-based failure prediction, and the FFT toolbox behind the LLNL
//! power-fluctuation use case (§V-C of the paper).

pub mod ar;
pub mod failure;
pub mod fft;
pub mod forecast;
pub mod harmonic;
pub mod jobs;
pub mod regression;
