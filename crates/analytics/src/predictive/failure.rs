//! Component-failure prediction from degradation features.
//!
//! After Sîrbu & Babaoglu's data-driven proactive autonomics: hardware that
//! is about to fail drifts first — temperatures trend up, correctable-error
//! counters accelerate, fan speeds saturate. The predictor extracts trend
//! features from recent sensor windows and scores failure risk with the
//! workspace's logistic regression, yielding a calibrated-ish hazard in
//! `[0, 1]` plus a ranked watch-list across the fleet.

use crate::descriptive::stats::linear_fit;
use crate::predictive::regression::LogisticRegression;
use serde::{Deserialize, Serialize};

/// Degradation features extracted from one component's recent telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationFeatures {
    /// Slope of the temperature series, °C per sample.
    pub temp_slope: f64,
    /// Mean temperature over the window, °C.
    pub temp_mean: f64,
    /// Slope of the error-counter series, errors per sample.
    pub error_slope: f64,
    /// Fraction of the window the fan spent at ≥ 95% speed.
    pub fan_saturation: f64,
}

impl DegradationFeatures {
    /// Extracts features from aligned windows of temperature, error-count
    /// and fan-speed telemetry. Returns `None` for windows under 4 samples.
    pub fn extract(temp: &[f64], errors: &[f64], fan: &[f64]) -> Option<Self> {
        if temp.len() < 4 || errors.len() < 4 || fan.is_empty() {
            return None;
        }
        let idx: Vec<f64> = (0..temp.len()).map(|i| i as f64).collect();
        let (_, temp_slope) = linear_fit(&idx, temp)?;
        let idx_e: Vec<f64> = (0..errors.len()).map(|i| i as f64).collect();
        let (_, error_slope) = linear_fit(&idx_e, errors)?;
        Some(DegradationFeatures {
            temp_slope,
            temp_mean: temp.iter().sum::<f64>() / temp.len() as f64,
            error_slope,
            fan_saturation: fan.iter().filter(|&&s| s >= 0.95).count() as f64 / fan.len() as f64,
        })
    }

    fn to_vec(self) -> Vec<f64> {
        vec![
            self.temp_slope,
            self.temp_mean,
            self.error_slope,
            self.fan_saturation,
        ]
    }
}

/// Trained failure predictor.
pub struct FailurePredictor {
    model: LogisticRegression,
}

impl FailurePredictor {
    /// Trains on labelled examples: `(features, failed_within_horizon)`.
    ///
    /// Returns `None` for empty training data.
    pub fn fit(examples: &[(DegradationFeatures, bool)]) -> Option<Self> {
        if examples.is_empty() {
            return None;
        }
        let xs: Vec<Vec<f64>> = examples.iter().map(|(f, _)| f.to_vec()).collect();
        let ys: Vec<bool> = examples.iter().map(|&(_, y)| y).collect();
        LogisticRegression::fit(&xs, &ys, 0.5, 1e-4, 800).map(|model| FailurePredictor { model })
    }

    /// Hazard score in `[0, 1]` for one component.
    pub fn hazard(&self, f: DegradationFeatures) -> f64 {
        self.model.predict_proba(&f.to_vec())
    }

    /// Ranks a fleet by hazard, highest first; returns `(index, hazard)`.
    pub fn watch_list(&self, fleet: &[DegradationFeatures]) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = fleet
            .iter()
            .enumerate()
            .map(|(i, &f)| (i, self.hazard(f)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> DegradationFeatures {
        DegradationFeatures {
            temp_slope: 0.001,
            temp_mean: 55.0,
            error_slope: 0.0,
            fan_saturation: 0.02,
        }
    }

    fn degrading() -> DegradationFeatures {
        DegradationFeatures {
            temp_slope: 0.2,
            temp_mean: 78.0,
            error_slope: 0.5,
            fan_saturation: 0.8,
        }
    }

    fn training() -> Vec<(DegradationFeatures, bool)> {
        let mut ex = Vec::new();
        for i in 0..40 {
            let eps = (i as f64 - 20.0) * 0.002;
            let mut h = healthy();
            h.temp_mean += eps * 10.0;
            h.temp_slope += eps * 0.01;
            ex.push((h, false));
            let mut d = degrading();
            d.temp_mean += eps * 10.0;
            d.error_slope += eps.abs();
            ex.push((d, true));
        }
        ex
    }

    #[test]
    fn hazard_separates_healthy_from_degrading() {
        let p = FailurePredictor::fit(&training()).unwrap();
        assert!(p.hazard(healthy()) < 0.2);
        assert!(p.hazard(degrading()) > 0.8);
    }

    #[test]
    fn watch_list_ranks_worst_first() {
        let p = FailurePredictor::fit(&training()).unwrap();
        let fleet = vec![healthy(), degrading(), healthy()];
        let wl = p.watch_list(&fleet);
        assert_eq!(wl[0].0, 1);
        assert!(wl[0].1 > wl[1].1);
        assert_eq!(wl.len(), 3);
    }

    #[test]
    fn feature_extraction_from_windows() {
        let temp: Vec<f64> = (0..20).map(|i| 60.0 + 0.5 * i as f64).collect();
        let errors: Vec<f64> = (0..20).map(|i| (i / 4) as f64).collect();
        let fan = vec![1.0; 10];
        let f = DegradationFeatures::extract(&temp, &errors, &fan).unwrap();
        assert!((f.temp_slope - 0.5).abs() < 1e-9);
        assert!(f.error_slope > 0.2);
        assert_eq!(f.fan_saturation, 1.0);
        assert!(DegradationFeatures::extract(&temp[..2], &errors, &fan).is_none());
    }

    #[test]
    fn empty_training_is_none() {
        assert!(FailurePredictor::fit(&[]).is_none());
    }
}
