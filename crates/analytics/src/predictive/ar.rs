//! Autoregressive AR(p) models fitted by ordinary least squares.
//!
//! AR models complement exponential smoothing for sensor forecasting: they
//! capture short-range autocorrelation structure (thermal inertia, control
//! loops) that smoothing flattens away. Fitting solves the normal equations
//! of the lagged regression with the workspace's small dense solver.

use crate::util::linalg::{solve, Matrix};

/// A fitted AR(p) model `x_t = c + Σ φ_i · x_{t−i}`.
#[derive(Debug, Clone)]
pub struct ArModel {
    /// Intercept.
    pub intercept: f64,
    /// Coefficients `φ_1..φ_p` (lag-1 first).
    pub coefficients: Vec<f64>,
    /// In-sample residual standard deviation.
    pub residual_std: f64,
}

impl ArModel {
    /// Fits AR(`order`) to `series` by least squares.
    ///
    /// Returns `None` when the series is too short (needs at least
    /// `2·order + 2` samples) or the design matrix is singular (e.g. a
    /// constant series).
    pub fn fit(series: &[f64], order: usize) -> Option<Self> {
        assert!(order >= 1, "order must be >= 1");
        let n = series.len();
        if n < 2 * order + 2 {
            return None;
        }
        let rows = n - order;
        let cols = order + 1; // intercept + lags
                              // Normal equations: (Xᵀ X) β = Xᵀ y, built directly.
        let mut xtx = Matrix::zeros(cols, cols);
        let mut xty = vec![0.0; cols];
        for t in order..n {
            let mut row = Vec::with_capacity(cols);
            row.push(1.0);
            for lag in 1..=order {
                row.push(series[t - lag]);
            }
            let y = series[t];
            for i in 0..cols {
                xty[i] += row[i] * y;
                for j in 0..cols {
                    xtx[(i, j)] += row[i] * row[j];
                }
            }
        }
        let beta = solve(&xtx, &xty)?;
        // Residuals.
        let mut ss = 0.0;
        for t in order..n {
            let mut pred = beta[0];
            for lag in 1..=order {
                pred += beta[lag] * series[t - lag];
            }
            ss += (series[t] - pred).powi(2);
        }
        Some(ArModel {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            residual_std: (ss / rows as f64).sqrt(),
        })
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.coefficients.len()
    }

    /// One-step prediction given the most recent values
    /// (`recent\[0\]` = newest).
    ///
    /// # Panics
    /// Panics if fewer than `order` recent values are supplied.
    pub fn predict_next(&self, recent: &[f64]) -> f64 {
        assert!(recent.len() >= self.order(), "need `order` recent values");
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(recent)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }

    /// Iterated multi-step forecast: feeds predictions back as inputs.
    /// Returns `horizon` values, nearest first.
    pub fn forecast(&self, recent: &[f64], horizon: usize) -> Vec<f64> {
        let p = self.order();
        let mut window: Vec<f64> = recent[..p].to_vec(); // newest first
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let next = self.predict_next(&window);
            out.push(next);
            window.rotate_right(1);
            window[0] = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates an AR(2) process with known coefficients, deterministic
    /// pseudo-noise.
    fn ar2_series(n: usize, c: f64, phi1: f64, phi2: f64, noise: f64) -> Vec<f64> {
        let mut xs = vec![c / (1.0 - phi1 - phi2); 2];
        let mut seed = 12345u64;
        for t in 2..n {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let e = (((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5) * 2.0 * noise;
            xs.push(c + phi1 * xs[t - 1] + phi2 * xs[t - 2] + e);
        }
        xs
    }

    #[test]
    fn recovers_ar2_coefficients() {
        let xs = ar2_series(5_000, 1.0, 0.6, 0.3, 0.1);
        let m = ArModel::fit(&xs, 2).unwrap();
        assert!(
            (m.coefficients[0] - 0.6).abs() < 0.05,
            "{:?}",
            m.coefficients
        );
        assert!(
            (m.coefficients[1] - 0.3).abs() < 0.05,
            "{:?}",
            m.coefficients
        );
        assert!((m.intercept - 1.0).abs() < 0.6, "{}", m.intercept);
        assert!(m.residual_std < 0.12);
    }

    #[test]
    fn predict_next_matches_generator() {
        let xs = ar2_series(2_000, 0.0, 0.5, 0.4, 0.01);
        let m = ArModel::fit(&xs, 2).unwrap();
        let newest_first = [xs[xs.len() - 1], xs[xs.len() - 2]];
        let pred = m.predict_next(&newest_first);
        let ideal = 0.5 * newest_first[0] + 0.4 * newest_first[1];
        assert!((pred - ideal).abs() < 0.1, "{pred} vs {ideal}");
    }

    #[test]
    fn forecast_converges_to_process_mean() {
        // Stationary AR(1): long-horizon forecast → c / (1 − φ).
        let xs = ar2_series(3_000, 2.0, 0.5, 0.0, 0.05);
        let m = ArModel::fit(&xs, 1).unwrap();
        let far = m.forecast(&[xs[xs.len() - 1]], 200);
        let mean = 2.0 / (1.0 - 0.5);
        assert!((far.last().unwrap() - mean).abs() < 0.3, "{:?}", far.last());
    }

    #[test]
    fn short_and_constant_series_fail_gracefully() {
        assert!(ArModel::fit(&[1.0, 2.0, 3.0], 2).is_none());
        assert!(
            ArModel::fit(&[5.0; 100], 2).is_none(),
            "constant series is singular"
        );
    }

    #[test]
    fn forecast_length_matches_horizon() {
        let xs = ar2_series(500, 1.0, 0.4, 0.2, 0.1);
        let m = ArModel::fit(&xs, 2).unwrap();
        assert_eq!(m.forecast(&[1.0, 1.0], 7).len(), 7);
    }
}
