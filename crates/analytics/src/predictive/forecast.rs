//! Exponential-smoothing forecasters: EWMA (simple), Holt (trend) and
//! Holt–Winters (trend + additive seasonality).
//!
//! These are the workhorses for sensor forecasting (PRACTISE, Xue et al.;
//! Netti et al.) and cooling-demand prediction: cheap enough to run per
//! sensor at ingest rate, and Holt–Winters captures the dominant structure
//! of facility series — a daily season plus slow drift.

/// A streaming forecaster: feed observations, ask for h-step-ahead
/// forecasts.
pub trait Forecaster {
    /// Feeds the next observation.
    fn update(&mut self, x: f64);

    /// Forecast `h ≥ 1` steps ahead of the last observation. `None` until
    /// the model has enough history.
    fn forecast(&self, h: usize) -> Option<f64>;

    /// Number of observations consumed.
    fn observations(&self) -> usize;
}

/// Simple exponential smoothing: flat forecasts at the smoothed level.
#[derive(Debug, Clone)]
pub struct SimpleExp {
    alpha: f64,
    level: Option<f64>,
    n: usize,
}

impl SimpleExp {
    /// Creates the forecaster with smoothing `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        SimpleExp {
            alpha,
            level: None,
            n: 0,
        }
    }
}

impl Forecaster for SimpleExp {
    fn update(&mut self, x: f64) {
        self.n += 1;
        self.level = Some(match self.level {
            None => x,
            Some(l) => l + self.alpha * (x - l),
        });
    }

    fn forecast(&self, _h: usize) -> Option<f64> {
        self.level
    }

    fn observations(&self) -> usize {
        self.n
    }
}

/// Holt's linear method: level + trend.
#[derive(Debug, Clone)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    n: usize,
}

impl Holt {
    /// Creates the forecaster with level smoothing `alpha` and trend
    /// smoothing `beta`, both in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta in (0,1]");
        Holt {
            alpha,
            beta,
            level: 0.0,
            trend: 0.0,
            n: 0,
        }
    }
}

impl Forecaster for Holt {
    fn update(&mut self, x: f64) {
        match self.n {
            0 => self.level = x,
            1 => {
                self.trend = x - self.level;
                self.level = x;
            }
            _ => {
                let prev_level = self.level;
                self.level = self.alpha * x + (1.0 - self.alpha) * (self.level + self.trend);
                self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
            }
        }
        self.n += 1;
    }

    fn forecast(&self, h: usize) -> Option<f64> {
        (self.n >= 2).then_some(self.level + h as f64 * self.trend)
    }

    fn observations(&self) -> usize {
        self.n
    }
}

/// Holt–Winters additive seasonal method.
///
/// Initialisation: the first full season fixes the initial level (its mean)
/// and the initial seasonal offsets; the second season starts trend
/// updates. Forecasts require one complete season of history.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    history: Vec<f64>,
    n: usize,
}

impl HoltWinters {
    /// Creates the forecaster with seasonal `period` (samples per season)
    /// and smoothing parameters in `(0, 1]`.
    ///
    /// # Panics
    /// Panics on out-of-range parameters or `period < 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta in (0,1]");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma in (0,1]");
        assert!(period >= 2, "seasonal period must be >= 2");
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
            level: 0.0,
            trend: 0.0,
            seasonal: vec![0.0; period],
            history: Vec::with_capacity(period),
            n: 0,
        }
    }

    /// The seasonal period.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl Forecaster for HoltWinters {
    fn update(&mut self, x: f64) {
        if self.n < self.period {
            // Collect the first season.
            self.history.push(x);
            self.n += 1;
            if self.n == self.period {
                let mean = self.history.iter().sum::<f64>() / self.period as f64;
                self.level = mean;
                self.trend = 0.0;
                for (s, &v) in self.seasonal.iter_mut().zip(self.history.iter()) {
                    *s = v - mean;
                }
            }
            return;
        }
        let idx = self.n % self.period;
        let s_old = self.seasonal[idx];
        let prev_level = self.level;
        self.level = self.alpha * (x - s_old) + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.seasonal[idx] = self.gamma * (x - self.level) + (1.0 - self.gamma) * s_old;
        self.n += 1;
    }

    fn forecast(&self, h: usize) -> Option<f64> {
        if self.n < self.period || h == 0 {
            return (h == 0).then_some(self.level);
        }
        let idx = (self.n + h - 1) % self.period;
        Some(self.level + h as f64 * self.trend + self.seasonal[idx])
    }

    fn observations(&self) -> usize {
        self.n
    }
}

/// Gap tolerance for any [`Forecaster`]: interpolate across short sensor
/// dropouts, abstain when too much of the recent window is missing.
///
/// Telemetry arrives on a fixed cadence, so a missing or NaN sample is
/// represented by feeding `update(f64::NAN)` for that slot. The wrapper
/// then:
///
/// * **fills** gaps of up to `max_fill` consecutive missing samples by
///   linear interpolation between the surrounding good samples (the inner
///   model never sees the NaNs);
/// * **drops** longer gaps — the inner model simply resumes at the next
///   good sample rather than learning a fictitious ramp;
/// * **abstains** — [`forecast`](Forecaster::forecast) returns `None` —
///   while more than half of the last `window` slots were missing, because
///   a forecast from mostly-imputed data is noise dressed as signal.
#[derive(Debug, Clone)]
pub struct GapTolerant<F> {
    inner: F,
    max_fill: usize,
    last_good: Option<f64>,
    pending_gap: usize,
    /// Missing-flags for the most recent `window` slots.
    recent: std::collections::VecDeque<bool>,
    window: usize,
}

impl<F: Forecaster> GapTolerant<F> {
    /// Wraps `inner`, filling gaps of up to `max_fill` samples and judging
    /// abstention over the last `window` slots.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(inner: F, max_fill: usize, window: usize) -> Self {
        assert!(window > 0, "abstention window must be positive");
        GapTolerant {
            inner,
            max_fill,
            last_good: None,
            pending_gap: 0,
            recent: std::collections::VecDeque::with_capacity(window),
            window,
        }
    }

    /// Fraction of the recent window that was missing (0 when nothing has
    /// been fed).
    pub fn missing_fraction(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().filter(|&&m| m).count() as f64 / self.recent.len() as f64
    }

    /// The wrapped forecaster.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    fn record(&mut self, missing: bool) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(missing);
    }
}

impl<F: Forecaster> Forecaster for GapTolerant<F> {
    fn update(&mut self, x: f64) {
        if !x.is_finite() {
            self.record(true);
            self.pending_gap += 1;
            return;
        }
        self.record(false);
        if self.pending_gap > 0 {
            if self.pending_gap <= self.max_fill {
                if let Some(prev) = self.last_good {
                    let n = self.pending_gap as f64 + 1.0;
                    for k in 1..=self.pending_gap {
                        self.inner.update(prev + (x - prev) * k as f64 / n);
                    }
                }
            }
            // Longer gaps are dropped: the inner model resumes directly.
            self.pending_gap = 0;
        }
        self.inner.update(x);
        self.last_good = Some(x);
    }

    fn forecast(&self, h: usize) -> Option<f64> {
        if self.missing_fraction() > 0.5 {
            return None;
        }
        self.inner.forecast(h)
    }

    fn observations(&self) -> usize {
        self.inner.observations()
    }
}

/// Rolling forecast-accuracy evaluation: feeds `series` one sample at a
/// time, recording the absolute error of the `h`-step forecast made before
/// seeing each sample. Returns `(mae, mape)`; `mape` is `None` if any true
/// value is ~0.
pub fn backtest<F: Forecaster>(f: &mut F, series: &[f64], h: usize) -> (f64, Option<f64>) {
    assert!(h >= 1, "horizon must be >= 1");
    let mut abs_err = Vec::new();
    let mut rel_err = Vec::new();
    let mut relative_ok = true;
    // After every update, record the model's h-step forecast together with
    // the index it targets; score each forecast when its target arrives.
    let mut pending: std::collections::VecDeque<(usize, f64)> = std::collections::VecDeque::new();
    for (i, &x) in series.iter().enumerate() {
        while let Some(&(target, fc)) = pending.front() {
            if target == i {
                pending.pop_front();
                abs_err.push((fc - x).abs());
                if x.abs() > 1e-9 {
                    rel_err.push(((fc - x) / x).abs());
                } else {
                    relative_ok = false;
                }
            } else {
                break;
            }
        }
        f.update(x);
        if let Some(fc) = f.forecast(h) {
            pending.push_back((i + h, fc));
        }
    }
    let mae = if abs_err.is_empty() {
        f64::NAN
    } else {
        abs_err.iter().sum::<f64>() / abs_err.len() as f64
    };
    let mape = (relative_ok && !rel_err.is_empty())
        .then(|| rel_err.iter().sum::<f64>() / rel_err.len() as f64);
    (mae, mape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_exp_flat_series() {
        let mut f = SimpleExp::new(0.5);
        assert!(f.forecast(1).is_none());
        for _ in 0..50 {
            f.update(7.0);
        }
        assert!((f.forecast(10).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn holt_extrapolates_linear_trend() {
        let mut f = Holt::new(0.8, 0.8);
        for i in 0..100 {
            f.update(3.0 + 2.0 * i as f64);
        }
        // Next value should be ≈ 3 + 2·100.
        let fc = f.forecast(1).unwrap();
        assert!((fc - 203.0).abs() < 0.5, "forecast {fc}");
        let fc5 = f.forecast(5).unwrap();
        assert!((fc5 - 211.0).abs() < 1.0, "forecast {fc5}");
    }

    #[test]
    fn holt_winters_learns_seasonality() {
        // Period-24 sinusoid plus slope.
        let period = 24;
        let series: Vec<f64> = (0..period * 20)
            .map(|i| {
                10.0 + 0.01 * i as f64
                    + 5.0 * (2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64).sin()
            })
            .collect();
        let mut f = HoltWinters::new(0.3, 0.05, 0.3, period);
        for &x in &series {
            f.update(x);
        }
        // Forecast one full season and compare shape.
        let n = series.len();
        for h in 1..=period {
            let truth = 10.0
                + 0.01 * (n + h - 1) as f64
                + 5.0
                    * (2.0 * std::f64::consts::PI * ((n + h - 1) % period) as f64 / period as f64)
                        .sin();
            let fc = f.forecast(h).unwrap();
            assert!(
                (fc - truth).abs() < 1.0,
                "h={h}: forecast {fc} vs truth {truth}"
            );
        }
    }

    #[test]
    fn holt_winters_needs_one_season() {
        let mut f = HoltWinters::new(0.3, 0.1, 0.3, 8);
        for i in 0..7 {
            f.update(i as f64);
            assert!(f.forecast(1).is_none());
        }
        f.update(7.0);
        assert!(f.forecast(1).is_some());
    }

    #[test]
    fn gap_tolerant_interpolates_short_gaps() {
        // A clean linear ramp with a 3-sample hole: the filled model should
        // keep tracking the trend as if the hole were not there.
        let mut f = GapTolerant::new(Holt::new(0.8, 0.8), 5, 20);
        for i in 0..30 {
            let x = 10.0 + 2.0 * i as f64;
            if (12..15).contains(&i) {
                f.update(f64::NAN);
            } else {
                f.update(x);
            }
        }
        let fc = f.forecast(1).unwrap();
        let truth = 10.0 + 2.0 * 30.0;
        assert!((fc - truth).abs() < 0.5, "forecast {fc} vs {truth}");
        // The interpolated slots were fed to the inner model.
        assert_eq!(f.observations(), 30);
    }

    #[test]
    fn gap_tolerant_abstains_when_mostly_missing() {
        let mut f = GapTolerant::new(SimpleExp::new(0.5), 2, 10);
        for _ in 0..10 {
            f.update(5.0);
        }
        assert!(f.forecast(1).is_some());
        // 6 of the last 10 slots missing → abstain.
        for _ in 0..6 {
            f.update(f64::NAN);
        }
        assert!(f.missing_fraction() > 0.5);
        assert!(f.forecast(1).is_none(), "must abstain, not guess");
        // Data returns → forecasts resume.
        for _ in 0..7 {
            f.update(5.0);
        }
        assert!(f.forecast(1).is_some());
        assert!((f.forecast(1).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gap_tolerant_drops_long_gaps_instead_of_ramping() {
        // A long outage across a level shift: interpolation would teach the
        // model a slow ramp; dropping the gap resumes at the new level.
        let mut f = GapTolerant::new(SimpleExp::new(0.9), 3, 100);
        for _ in 0..20 {
            f.update(100.0);
        }
        for _ in 0..10 {
            f.update(f64::NAN); // longer than max_fill=3
        }
        for _ in 0..20 {
            f.update(0.0);
        }
        // Only real samples reached the inner model: 40, not 50.
        assert_eq!(f.observations(), 40);
        assert!(f.forecast(1).unwrap() < 0.1);
    }

    #[test]
    fn backtest_scores_better_model_lower() {
        let period = 12;
        let series: Vec<f64> = (0..period * 30)
            .map(|i| {
                50.0 + 20.0
                    * (2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64).cos()
            })
            .collect();
        let (mae_hw, _) = backtest(&mut HoltWinters::new(0.3, 0.05, 0.4, period), &series, 1);
        let (mae_se, _) = backtest(&mut SimpleExp::new(0.5), &series, 1);
        assert!(
            mae_hw < mae_se * 0.5,
            "seasonal model must beat flat: {mae_hw} vs {mae_se}"
        );
    }

    #[test]
    fn backtest_handles_short_series() {
        let (mae, mape) = backtest(&mut SimpleExp::new(0.5), &[1.0], 1);
        assert!(mae.is_nan());
        assert!(mape.is_none());
    }

    #[test]
    fn mape_is_none_on_zero_values() {
        // A zero appears as a forecast *target*, so relative error is
        // undefined for that step and MAPE must be withheld.
        let series = vec![1.0, 2.0, 0.0, 3.0, 4.0, 5.0];
        let (mae, mape) = backtest(&mut SimpleExp::new(0.9), &series, 1);
        assert!(mae.is_finite());
        assert!(mape.is_none());
    }
}
