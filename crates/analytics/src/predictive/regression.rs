//! Ridge and logistic regression on engineered features.
//!
//! Ridge is the framework's general-purpose tabular predictor (job power
//! models à la Sîrbu & Babaoglu, resource prediction à la Matsunaga &
//! Fortes); logistic regression is the probabilistic scorer behind failure
//! prediction. Both standardize features internally so callers can mix
//! units freely.

use crate::util::linalg::{solve, Matrix};

/// Per-column standardization fitted on the training design matrix.
#[derive(Debug, Clone)]
struct ColumnScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl ColumnScaler {
    fn fit(xs: &[Vec<f64>]) -> Self {
        let d = xs.first().map(|r| r.len()).unwrap_or(0);
        let n = xs.len().max(1) as f64;
        let mut mean = vec![0.0; d];
        for r in xs {
            for (m, &v) in mean.iter_mut().zip(r) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; d];
        for r in xs {
            for (s, (&v, &m)) in std.iter_mut().zip(r.iter().zip(&mean)) {
                *s += (v - m).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        ColumnScaler { mean, std }
    }

    fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }
}

/// Ridge regression `y ≈ w·x + b` with L2 penalty `lambda`.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    scaler: ColumnScaler,
    weights: Vec<f64>,
    bias: f64,
}

impl RidgeRegression {
    /// Fits on rows `xs` (equal-length feature vectors) and targets `ys`.
    ///
    /// Returns `None` on degenerate input (empty, mismatched lengths after
    /// debug assertions, or a singular regularised system — practically
    /// impossible for `lambda > 0`).
    ///
    /// # Panics
    /// Panics if `xs`/`ys` lengths differ or rows are ragged.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<Self> {
        assert_eq!(xs.len(), ys.len(), "feature/target count mismatch");
        if xs.is_empty() {
            return None;
        }
        let d = xs[0].len();
        assert!(xs.iter().all(|r| r.len() == d), "ragged feature rows");
        if d == 0 {
            return None;
        }
        let scaler = ColumnScaler::fit(xs);
        let scaled: Vec<Vec<f64>> = xs.iter().map(|r| scaler.apply(r)).collect();
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        // Normal equations on centred targets (bias handled via y_mean).
        let mut xtx = Matrix::zeros(d, d);
        let mut xty = vec![0.0; d];
        for (row, &y) in scaled.iter().zip(ys) {
            let yc = y - y_mean;
            for i in 0..d {
                xty[i] += row[i] * yc;
                for j in 0..d {
                    xtx[(i, j)] += row[i] * row[j];
                }
            }
        }
        xtx.add_diagonal(lambda.max(1e-12));
        let weights = solve(&xtx, &xty)?;
        Some(RidgeRegression {
            scaler,
            weights,
            bias: y_mean,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    /// Panics if the feature count differs from training.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature count mismatch");
        let scaled = self.scaler.apply(row);
        self.bias
            + self
                .weights
                .iter()
                .zip(&scaled)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    /// Learned weights in standardized space (for interpretability).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Coefficient of determination on a dataset.
    pub fn r2(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let mean = ys.iter().sum::<f64>() / ys.len().max(1) as f64;
        let ss_tot: f64 = ys.iter().map(|&y| (y - mean).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| (y - self.predict(x)).powi(2))
            .sum();
        if ss_tot <= 1e-300 {
            return 0.0;
        }
        1.0 - ss_res / ss_tot
    }
}

/// L2-regularised logistic regression trained by batch gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    scaler: ColumnScaler,
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Fits on rows `xs` with boolean labels `ys`.
    ///
    /// `epochs` full-batch gradient steps with learning rate `lr` and L2
    /// penalty `lambda`. Returns `None` for empty input.
    ///
    /// # Panics
    /// Panics on mismatched lengths or ragged rows.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], lr: f64, lambda: f64, epochs: usize) -> Option<Self> {
        assert_eq!(xs.len(), ys.len(), "feature/label count mismatch");
        if xs.is_empty() || xs[0].is_empty() {
            return None;
        }
        let d = xs[0].len();
        assert!(xs.iter().all(|r| r.len() == d), "ragged feature rows");
        let scaler = ColumnScaler::fit(xs);
        let scaled: Vec<Vec<f64>> = xs.iter().map(|r| scaler.apply(r)).collect();
        let n = xs.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &y) in scaled.iter().zip(ys) {
                let z: f64 = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
                let p = sigmoid(z);
                let err = p - if y { 1.0 } else { 0.0 };
                for (g, &x) in gw.iter_mut().zip(row) {
                    *g += err * x / n;
                }
                gb += err / n;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * (g + lambda * *wi);
            }
            b -= lr * gb;
        }
        Some(LogisticRegression {
            scaler,
            weights: w,
            bias: b,
        })
    }

    /// Probability that the label is true.
    ///
    /// # Panics
    /// Panics if the feature count differs from training.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature count mismatch");
        let scaled = self.scaler.apply(row);
        sigmoid(
            self.bias
                + self
                    .weights
                    .iter()
                    .zip(&scaled)
                    .map(|(w, x)| w * x)
                    .sum::<f64>(),
        )
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn ridge_recovers_linear_relationship() {
        let mut rnd = lcg(1);
        let xs: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rnd() * 10.0, rnd() * 5.0, rnd()])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| 3.0 * r[0] - 2.0 * r[1] + 0.5 + (rnd() - 0.5) * 0.1)
            .collect();
        let m = RidgeRegression::fit(&xs, &ys, 1e-6).unwrap();
        let r2 = m.r2(&xs, &ys);
        assert!(r2 > 0.999, "r² {r2}");
        let pred = m.predict(&[2.0, 1.0, 0.5]);
        assert!((pred - (6.0 - 2.0 + 0.5)).abs() < 0.1, "{pred}");
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let mut rnd = lcg(2);
        let xs: Vec<Vec<f64>> = (0..200).map(|_| vec![rnd()]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 10.0 * r[0]).collect();
        let loose = RidgeRegression::fit(&xs, &ys, 1e-9).unwrap();
        let tight = RidgeRegression::fit(&xs, &ys, 1e6).unwrap();
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs() * 0.01);
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // Duplicate feature columns: plain OLS is singular, ridge is not.
        let mut rnd = lcg(3);
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|_| {
                let v = rnd();
                vec![v, v]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 4.0 * r[0]).collect();
        let m = RidgeRegression::fit(&xs, &ys, 0.1).unwrap();
        assert!(m.r2(&xs, &ys) > 0.99);
    }

    #[test]
    fn ridge_empty_input_is_none() {
        assert!(RidgeRegression::fit(&[], &[], 1.0).is_none());
    }

    #[test]
    fn logistic_separates_classes() {
        let mut rnd = lcg(4);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            // Class true clusters at (2, 2); false at (-2, -2).
            let y = rnd() > 0.5;
            let c = if y { 2.0 } else { -2.0 };
            xs.push(vec![c + rnd() - 0.5, c + rnd() - 0.5]);
            ys.push(y);
        }
        let m = LogisticRegression::fit(&xs, &ys, 0.5, 1e-4, 500).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.98);
        assert!(m.predict_proba(&[3.0, 3.0]) > 0.9);
        assert!(m.predict_proba(&[-3.0, -3.0]) < 0.1);
    }

    #[test]
    fn logistic_probabilities_are_calibrated_ordering() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![false, false, true, true];
        let m = LogisticRegression::fit(&xs, &ys, 0.5, 0.0, 2_000).unwrap();
        let p: Vec<f64> = xs.iter().map(|x| m.predict_proba(x)).collect();
        assert!(p[0] < p[1] && p[1] < p[2] && p[2] < p[3]);
    }
}
