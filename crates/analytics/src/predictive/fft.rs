//! Radix-2 FFT and spectral power-spike forecasting — the LLNL use case of
//! §V-C.
//!
//! LLNL must notify its utility when site power moves by more than 750 kW
//! within 15 minutes; they used Fourier analysis of historical power data
//! to find periodic spike patterns and forecast the notifications (Abdulla
//! et al., 2018). This module provides:
//!
//! * an in-place iterative radix-2 complex FFT (and inverse),
//! * a power-spectrum helper with dominant-period extraction,
//! * [`SpectralForecaster`] — fits the top-k spectral components (plus mean
//!   and linear trend) to a window of history and extrapolates it forward,
//!   the textbook "Fourier extrapolation" used for periodic load patterns.

use std::f64::consts::PI;

/// One complex value `(re, im)`.
pub type Complex = (f64, f64);

/// In-place iterative radix-2 FFT.
///
/// # Panics
/// Panics if the length is not a power of two (callers pad or truncate —
/// see [`next_pow2_below`]).
pub fn fft(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (includes the 1/n normalisation).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        v.0 /= n;
        v.1 /= n;
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2];
                let t = (b.0 * cr - b.1 * ci, b.0 * ci + b.1 * cr);
                data[start + k] = (a.0 + t.0, a.1 + t.1);
                data[start + k + len / 2] = (a.0 - t.0, a.1 - t.1);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len <<= 1;
    }
}

/// Largest power of two `≤ n` (0 for `n == 0`).
pub fn next_pow2_below(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Power spectrum of a real series (length truncated to a power of two).
/// Returns `(frequency_bin, power)` for bins `1..n/2` (DC excluded).
pub fn power_spectrum(series: &[f64]) -> Vec<(usize, f64)> {
    let n = next_pow2_below(series.len());
    if n < 4 {
        return Vec::new();
    }
    let tail = &series[series.len() - n..];
    let mean = tail.iter().sum::<f64>() / n as f64;
    let mut buf: Vec<Complex> = tail.iter().map(|&x| (x - mean, 0.0)).collect();
    fft(&mut buf);
    (1..n / 2)
        .map(|k| (k, (buf[k].0.powi(2) + buf[k].1.powi(2)) / n as f64))
        .collect()
}

/// The `top_k` dominant periods (in samples) of a series, strongest first.
pub fn dominant_periods(series: &[f64], top_k: usize) -> Vec<(f64, f64)> {
    let n = next_pow2_below(series.len());
    let mut spec = power_spectrum(series);
    spec.sort_by(|a, b| b.1.total_cmp(&a.1));
    spec.into_iter()
        .take(top_k)
        .map(|(k, p)| (n as f64 / k as f64, p))
        .collect()
}

/// Fourier extrapolation: mean + linear trend + top-k spectral components.
#[derive(Debug, Clone)]
pub struct SpectralForecaster {
    n: usize,
    mean: f64,
    slope: f64,
    /// `(bin k, amplitude_re, amplitude_im)` of retained components.
    components: Vec<(usize, f64, f64)>,
}

impl SpectralForecaster {
    /// Fits on `series` keeping the `top_k` strongest frequency components.
    ///
    /// Returns `None` when fewer than 8 usable samples exist.
    pub fn fit(series: &[f64], top_k: usize) -> Option<Self> {
        let n = next_pow2_below(series.len());
        if n < 8 {
            return None;
        }
        let tail = &series[series.len() - n..];
        let idx: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Backfitting between trend and periodicity. A line fitted to a pure
        // sinusoid over integer periods has a *nonzero* slope
        // (Σ i·sin(2πik/N) = −(N/2)·cot(πk/N)), so a single detrend pass
        // contaminates both the trend and the retained bin amplitudes;
        // alternating "fit line to (x − periodic)" and "fit spectrum to
        // (x − line)" converges geometrically.
        let (mut intercept, mut slope) = crate::descriptive::stats::linear_fit(&idx, tail)
            .unwrap_or((tail.iter().sum::<f64>() / n as f64, 0.0));
        let mut components: Vec<(usize, f64, f64)> = Vec::new();
        for _ in 0..8 {
            let mut buf: Vec<Complex> = tail
                .iter()
                .enumerate()
                .map(|(i, &x)| (x - intercept - slope * i as f64, 0.0))
                .collect();
            fft(&mut buf);
            let mut bins: Vec<(usize, f64)> = (1..n / 2)
                .map(|k| (k, buf[k].0.powi(2) + buf[k].1.powi(2)))
                .collect();
            bins.sort_by(|a, b| b.1.total_cmp(&a.1));
            components = bins
                .into_iter()
                .take(top_k)
                .map(|(k, _)| (k, buf[k].0, buf[k].1))
                .collect();
            // Re-fit the line on the periodicity-free residual.
            let periodic_at = |t: f64| -> f64 {
                components
                    .iter()
                    .map(|&(k, re, im)| {
                        let ang = 2.0 * PI * k as f64 * t / n as f64;
                        2.0 / n as f64 * (re * ang.cos() - im * ang.sin())
                    })
                    .sum()
            };
            let residual: Vec<f64> = tail
                .iter()
                .enumerate()
                .map(|(i, &x)| x - periodic_at(i as f64))
                .collect();
            if let Some((m2, s2)) = crate::descriptive::stats::linear_fit(&idx, &residual) {
                intercept = m2;
                slope = s2;
            }
        }
        Some(SpectralForecaster {
            n,
            mean: intercept,
            slope,
            components,
        })
    }

    /// Value at sample offset `t` from the start of the fitted window
    /// (`t ≥ n` extrapolates into the future).
    pub fn value_at(&self, t: f64) -> f64 {
        let n = self.n as f64;
        let mut v = self.mean + self.slope * t;
        for &(k, re, im) in &self.components {
            let ang = 2.0 * PI * k as f64 * t / n;
            // Real series: each retained bin pairs with its conjugate, so
            // the real reconstruction doubles the contribution.
            v += 2.0 / n * (re * ang.cos() - im * ang.sin());
        }
        v
    }

    /// Forecast `horizon` samples beyond the fitted window.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        (0..horizon)
            .map(|h| self.value_at((self.n + h) as f64))
            .collect()
    }

    /// Window length actually used for the fit.
    pub fn window_len(&self) -> usize {
        self.n
    }
}

/// Detects predicted threshold-crossing swings: returns offsets `h` (in
/// samples, 0-based from the forecast start) where the forecast moves by
/// more than `delta` within `window` samples — the "notify the utility"
/// events of the LLNL case.
pub fn predicted_swings(forecast: &[f64], delta: f64, window: usize) -> Vec<usize> {
    let mut hits = Vec::new();
    for i in 0..forecast.len() {
        let end = (i + window).min(forecast.len());
        if end <= i + 1 {
            continue;
        }
        let w = &forecast[i..end];
        let lo = w.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi - lo > delta {
            hits.push(i);
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_round_trips() {
        let orig: Vec<Complex> = (0..64).map(|i| ((i as f64).sin(), 0.0)).collect();
        let mut buf = orig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in orig.iter().zip(&buf) {
            assert!((a.0 - b.0).abs() < 1e-9);
            assert!(b.1.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_pure_tone_is_a_single_bin() {
        let n = 128;
        let k = 5;
        let mut buf: Vec<Complex> = (0..n)
            .map(|i| ((2.0 * PI * k as f64 * i as f64 / n as f64).cos(), 0.0))
            .collect();
        fft(&mut buf);
        for (bin, v) in buf.iter().enumerate() {
            let mag = (v.0 * v.0 + v.1 * v.1).sqrt();
            if bin == k || bin == n - k {
                assert!((mag - n as f64 / 2.0).abs() < 1e-6, "bin {bin}: {mag}");
            } else {
                assert!(mag < 1e-6, "bin {bin}: {mag}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![(0.0, 0.0); 12];
        fft(&mut buf);
    }

    #[test]
    fn dominant_periods_finds_the_cycle() {
        let series: Vec<f64> = (0..512)
            .map(|i| 100.0 + 10.0 * (2.0 * PI * i as f64 / 32.0).sin())
            .collect();
        let periods = dominant_periods(&series, 1);
        assert!((periods[0].0 - 32.0).abs() < 1.0, "{periods:?}");
    }

    #[test]
    fn spectral_forecaster_extrapolates_periodic_signal() {
        let gen = |i: usize| {
            500.0
                + 200.0 * (2.0 * PI * i as f64 / 64.0).sin()
                + 50.0 * (2.0 * PI * i as f64 / 16.0).cos()
        };
        let history: Vec<f64> = (0..512).map(gen).collect();
        let f = SpectralForecaster::fit(&history, 4).unwrap();
        assert_eq!(f.window_len(), 512);
        let fc = f.forecast(64);
        for (h, &v) in fc.iter().enumerate() {
            let truth = gen(512 + h);
            assert!((v - truth).abs() < 15.0, "h={h}: {v} vs {truth}");
        }
    }

    #[test]
    fn spectral_forecaster_handles_trend() {
        let gen = |i: usize| 100.0 + 0.5 * i as f64 + 30.0 * (2.0 * PI * i as f64 / 32.0).sin();
        let history: Vec<f64> = (0..256).map(gen).collect();
        let f = SpectralForecaster::fit(&history, 2).unwrap();
        let fc = f.forecast(32);
        for (h, &v) in fc.iter().enumerate() {
            let truth = gen(256 + h);
            assert!((v - truth).abs() < 10.0, "h={h}: {v} vs {truth}");
        }
    }

    #[test]
    fn short_series_cannot_fit() {
        assert!(SpectralForecaster::fit(&[1.0; 5], 2).is_none());
    }

    #[test]
    fn predicted_swings_finds_big_moves() {
        // Flat, then a 1000-unit step at offset 10.
        let mut fc = vec![0.0; 10];
        fc.extend(vec![1_000.0; 10]);
        let hits = predicted_swings(&fc, 750.0, 3);
        // Offsets 8 and 9 see the step inside their 3-wide window.
        assert!(hits.contains(&8) && hits.contains(&9), "{hits:?}");
        assert!(!hits.contains(&0));
        assert!(!hits.contains(&15));
        // Small moves do not trigger.
        assert!(predicted_swings(&[0.0, 100.0, 200.0], 750.0, 3).is_empty());
    }
}
