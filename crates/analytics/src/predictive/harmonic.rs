//! Harmonic regression: least-squares Fourier fitting at a *known*
//! fundamental period.
//!
//! The pure-FFT extrapolator ([`crate::predictive::fft`]) needs a
//! power-of-two window, which almost never holds an integer number of the
//! physical period (a day of 15-minute samples is 96 buckets — not a power
//! of two), so spectral leakage smears narrow periodic features. When the
//! fundamental is known — and operational patterns are daily/weekly, which
//! operators know — the right Fourier tool is a least-squares fit of
//! sine/cosine pairs at exact harmonics of that fundamental:
//!
//! ```text
//! x(t) ≈ c + s·t + Σ_{k=1..H} aₖ·cos(2πkt/P) + bₖ·sin(2πkt/P)
//! ```
//!
//! Narrow pulses (a 45-minute backup window) need many harmonics; `H` up
//! to `P/2` is legal, and the ridge-regularised normal equations stay
//! small (`2H+2` unknowns).
//!
//! ```
//! use oda_analytics::predictive::harmonic::HarmonicModel;
//!
//! // A daily pattern sampled 96×/day, with trend.
//! let series: Vec<f64> = (0..480)
//!     .map(|t| 100.0 + 0.1 * t as f64
//!         + 20.0 * (2.0 * std::f64::consts::PI * t as f64 / 96.0).sin())
//!     .collect();
//! let model = HarmonicModel::fit(&series, 96.0, 4).unwrap();
//! let tomorrow = model.forecast(96);
//! assert_eq!(tomorrow.len(), 96);
//! assert!((model.slope - 0.1).abs() < 1e-6);
//! ```

use crate::util::linalg::{solve, Matrix};
use std::f64::consts::PI;

/// A fitted harmonic model.
#[derive(Debug, Clone)]
pub struct HarmonicModel {
    period: f64,
    /// Intercept.
    pub intercept: f64,
    /// Linear trend per sample.
    pub slope: f64,
    /// `(a_k, b_k)` for harmonics `k = 1..=H`.
    pub coefficients: Vec<(f64, f64)>,
    /// In-sample root-mean-square error.
    pub rmse: f64,
    /// Number of samples fitted (forecasts index from here).
    pub fitted_len: usize,
}

impl HarmonicModel {
    /// Fits `harmonics` harmonics of `period` (in samples) to `series`.
    ///
    /// Returns `None` when the series is shorter than one period, shorter
    /// than the parameter count, or the (ridge-regularised) system is
    /// singular.
    ///
    /// # Panics
    /// Panics if `period < 2.0` or `harmonics == 0`.
    pub fn fit(series: &[f64], period: f64, harmonics: usize) -> Option<Self> {
        assert!(period >= 2.0, "period must be at least 2 samples");
        assert!(harmonics >= 1, "need at least one harmonic");
        let h = harmonics.min((period / 2.0) as usize).max(1);
        let n = series.len();
        let cols = 2 + 2 * h;
        if (n as f64) < period || n < cols + 2 {
            return None;
        }
        // Design row for sample t.
        let row = |t: f64| {
            let mut r = Vec::with_capacity(cols);
            r.push(1.0);
            r.push(t);
            for k in 1..=h {
                let ang = 2.0 * PI * k as f64 * t / period;
                r.push(ang.cos());
                r.push(ang.sin());
            }
            r
        };
        // Normal equations with light ridge for stability.
        let mut xtx = Matrix::zeros(cols, cols);
        let mut xty = vec![0.0; cols];
        for (t, &y) in series.iter().enumerate() {
            let r = row(t as f64);
            for i in 0..cols {
                xty[i] += r[i] * y;
                for j in 0..cols {
                    xtx[(i, j)] += r[i] * r[j];
                }
            }
        }
        xtx.add_diagonal(1e-8 * n as f64);
        let beta = solve(&xtx, &xty)?;
        let coefficients = (0..h).map(|k| (beta[2 + 2 * k], beta[3 + 2 * k])).collect();
        let mut model = HarmonicModel {
            period,
            intercept: beta[0],
            slope: beta[1],
            coefficients,
            rmse: 0.0,
            fitted_len: n,
        };
        let ss: f64 = series
            .iter()
            .enumerate()
            .map(|(t, &y)| (y - model.value_at(t as f64)).powi(2))
            .sum();
        model.rmse = (ss / n as f64).sqrt();
        Some(model)
    }

    /// Number of harmonics retained.
    pub fn harmonics(&self) -> usize {
        self.coefficients.len()
    }

    /// Model value at (possibly fractional, possibly future) sample `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        let mut v = self.intercept + self.slope * t;
        for (k, &(a, b)) in self.coefficients.iter().enumerate() {
            let ang = 2.0 * PI * (k + 1) as f64 * t / self.period;
            v += a * ang.cos() + b * ang.sin();
        }
        v
    }

    /// Forecast `horizon` samples past the fitted series.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        (0..horizon)
            .map(|i| self.value_at((self.fitted_len + i) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Daily pattern with a narrow pulse, 96 samples per day.
    fn pulse_series(days: usize) -> Vec<f64> {
        (0..96 * days)
            .map(|i| {
                let in_day = i % 96;
                let base = 100.0 + 10.0 * (2.0 * PI * in_day as f64 / 96.0).sin();
                if (8..11).contains(&in_day) {
                    base + 50.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn reconstructs_narrow_pulse_with_enough_harmonics() {
        let series = pulse_series(6);
        let m = HarmonicModel::fit(&series, 96.0, 40).unwrap();
        let fc = m.forecast(96);
        // The pulse must survive extrapolation: bucket 8..11 of the next
        // day clearly above its neighbours.
        let pulse_mean = (fc[8] + fc[9] + fc[10]) / 3.0;
        let ambient = (fc[4] + fc[5] + fc[20] + fc[21]) / 4.0;
        assert!(
            pulse_mean > ambient + 25.0,
            "pulse {pulse_mean:.1} vs ambient {ambient:.1}"
        );
    }

    #[test]
    fn too_few_harmonics_blur_the_pulse() {
        let series = pulse_series(6);
        let coarse = HarmonicModel::fit(&series, 96.0, 2).unwrap();
        let fine = HarmonicModel::fit(&series, 96.0, 40).unwrap();
        assert!(
            fine.rmse < coarse.rmse * 0.5,
            "{} vs {}",
            fine.rmse,
            coarse.rmse
        );
    }

    #[test]
    fn recovers_trend_and_single_tone() {
        let series: Vec<f64> = (0..480)
            .map(|i| 5.0 + 0.02 * i as f64 + 3.0 * (2.0 * PI * i as f64 / 96.0).cos())
            .collect();
        let m = HarmonicModel::fit(&series, 96.0, 3).unwrap();
        assert!((m.slope - 0.02).abs() < 1e-6, "slope {}", m.slope);
        assert!((m.coefficients[0].0 - 3.0).abs() < 1e-6);
        assert!(m.coefficients[0].1.abs() < 1e-6);
        assert!(m.rmse < 1e-6);
        // Extrapolation continues the trend.
        let fc = m.forecast(96);
        let truth = 5.0 + 0.02 * 480.0 + 3.0;
        assert!((fc[0] - truth).abs() < 1e-4);
    }

    #[test]
    fn short_series_fails_gracefully() {
        assert!(HarmonicModel::fit(&[1.0; 50], 96.0, 4).is_none());
    }

    #[test]
    fn harmonics_capped_at_nyquist() {
        let series = pulse_series(4);
        let m = HarmonicModel::fit(&series, 96.0, 500).unwrap();
        assert!(m.harmonics() <= 48);
    }
}
