//! Minimal dense linear algebra: just enough to solve the small normal-
//! equation systems that ridge regression and AR fitting produce.
//!
//! Systems here are tiny (tens of unknowns), so Gaussian elimination with
//! partial pivoting is the right tool — no external linear-algebra crate is
//! justified for this.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input or an empty matrix.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty() && !rows[0].is_empty(), "empty matrix");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // odalint: allow(float-eq) -- exact-zero sparsity skip; any nonzero value must be multiplied
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "shape mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Adds `lambda` to every diagonal entry (ridge regularisation).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the square system `A·x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` for singular (or numerically singular) systems.
///
/// # Panics
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "system matrix must be square");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let pivot_row =
            (col..n).max_by(|&i, &j| m[(i, col)].abs().total_cmp(&m[(j, col)].abs()))?;
        if m[(pivot_row, col)].abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in col + 1..n {
            let f = m[(row, col)] / m[(col, col)];
            // odalint: allow(float-eq) -- exact-zero elimination skip; any nonzero factor must be applied
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                m[(row, j)] -= f * m[(col, j)];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in i + 1..n {
            s -= m[(i, j)] * x[j];
        }
        x[i] = s / m[(i, i)];
        if !x[i].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_system_is_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn identity_solves_trivially() {
        let x = solve(&Matrix::identity(3), &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
        let p = a.matmul(&at);
        assert_eq!(p[(0, 0)], 5.0);
        assert_eq!(p[(0, 1)], 11.0);
        assert_eq!(p[(1, 1)], 25.0);
    }

    #[test]
    fn matvec_and_ridge_diagonal() {
        let mut a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        assert_eq!(a.matvec(&[3.0, 4.0]), vec![3.0, 8.0]);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(1, 1)], 2.5);
    }

    #[test]
    fn larger_random_system_round_trips() {
        // Build a well-conditioned system A = M^T M + I and check A x = b.
        let n = 8;
        let mut m = Matrix::zeros(n, n);
        let mut seed = 42u64;
        for i in 0..n {
            for j in 0..n {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                m[(i, j)] = ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let mut a = m.transpose().matmul(&m);
        a.add_diagonal(1.0);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-9);
        }
    }
}
