//! Shared numeric utilities.

pub mod linalg;
