#![warn(missing_docs)]

//! # oda-analytics — the four types of data analytics, from scratch
//!
//! The paper's second axis (after the four HPC pillars) is the staged
//! "Four Types of Data Analytics" model. This crate implements a canonical
//! algorithm for every technique *family* the paper's survey cites, grouped
//! by type:
//!
//! * [`descriptive`] — *"what happened?"*: streaming statistics, quantiles,
//!   histograms, correlation, KPIs (PUE, ITUE, slowdown, System Information
//!   Entropy), the roofline model and text dashboards.
//! * [`diagnostic`] — *"why did it happen?"*: anomaly detectors (z-score,
//!   IQR, control charts, multivariate voting), correlation-wise-smoothing
//!   feature extraction, k-NN / nearest-centroid classifiers for
//!   application fingerprinting, root-cause ranking, network-contention
//!   diagnosis and periodic-interference (OS noise) detection.
//! * [`predictive`] — *"what will happen?"*: EWMA / Holt / Holt–Winters
//!   forecasters, AR(p) models, ridge and logistic regression, k-NN job
//!   duration prediction, and an FFT with spectral extrapolation for the
//!   LLNL power-fluctuation use case.
//! * [`prescriptive`] — *"what should we do?"*: PID control, golden-section
//!   setpoint optimization, reactive/proactive DVFS governors, a
//!   cooling-mode switcher, coordinate-descent/simulated-annealing
//!   auto-tuning and a rule-based recommendation engine.
//!
//! Everything is implemented with the standard library plus the workspace's
//! small approved dependency set — no external ML or linear-algebra crates —
//! so the algorithms double as readable reference implementations.
//!
//! The crate is deliberately independent of the simulator: every algorithm
//! operates on plain slices, readings, or feature vectors, so it can be
//! applied to any telemetry source that speaks `oda-telemetry` types.

#![forbid(unsafe_code)]

pub mod descriptive;
pub mod diagnostic;
pub mod predictive;
pub mod prescriptive;
pub mod util;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::descriptive::kpi::{self, SystemInformationEntropy};
    pub use crate::descriptive::quantile::P2Quantile;
    pub use crate::descriptive::stats::{correlation, Ewma, RollingStats, Welford};
    pub use crate::diagnostic::detector::{
        AnomalyDetector, EwmaControlChart, IqrDetector, MultivariateVote, ZScoreDetector,
    };
    pub use crate::diagnostic::fingerprint::{JobFeatures, NearestCentroid};
    pub use crate::predictive::forecast::{Forecaster, GapTolerant, HoltWinters};
    pub use crate::predictive::regression::RidgeRegression;
    pub use crate::prescriptive::dvfs::{DvfsGovernor, GovernorMode};
    pub use crate::prescriptive::pid::Pid;
}
