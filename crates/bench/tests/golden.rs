//! Golden-output tests for the table/figure regeneration harnesses.
//!
//! The survey grid behind `table1` and the complex-system footprints behind
//! `figure3` are serialized to JSON and compared byte-for-byte against
//! checked-in fixtures. Any edit to the encoded corpus or the grid layout
//! shows up as a reviewable fixture diff instead of a silent drift in the
//! regenerated tables. Run with `UPDATE_GOLDEN=1` to regenerate after an
//! intentional change.

use oda_core::analytics_type::AnalyticsType;
use oda_core::grid::GridCell;
use oda_core::pillar::Pillar;
use oda_core::{survey, systems};
use serde::Serialize;
use std::path::PathBuf;

#[derive(Serialize)]
struct CellGolden {
    analytics: &'static str,
    pillar: &'static str,
    count: usize,
    use_cases: Vec<&'static str>,
}

#[derive(Serialize)]
struct Table1Golden {
    cells: Vec<CellGolden>,
    citation_footprints: Vec<(u16, u16)>,
    total: usize,
    single_pillar: usize,
    multi_pillar: usize,
    multi_type: usize,
}

#[derive(Serialize)]
struct SystemGolden {
    name: &'static str,
    paper_section: &'static str,
    components: Vec<String>,
    footprint_mask: u16,
    cell_count: u32,
    multi_pillar: bool,
}

#[derive(Serialize)]
struct Figure3Golden {
    systems: Vec<SystemGolden>,
    pairwise_jaccard: Vec<(String, String, f64)>,
}

fn check(name: &str, got: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing fixture {name}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        got.trim(),
        want.trim(),
        "golden mismatch for {name}; rerun with UPDATE_GOLDEN=1 after an intentional change"
    );
}

#[test]
fn table1_grid_matches_golden_fixture() {
    let grid = survey::table1();
    let stats = survey::pillar_stats();
    // Row-major in the paper's presentation order: analytics type from
    // descriptive up, pillars left to right.
    let mut cells = Vec::new();
    for a in AnalyticsType::ALL {
        for p in Pillar::ALL {
            let entries = grid.get(GridCell::new(a, p));
            cells.push(CellGolden {
                analytics: a.name(),
                pillar: p.name(),
                count: entries.len(),
                use_cases: entries.iter().map(|e| e.use_case).collect(),
            });
        }
    }
    let golden = Table1Golden {
        cells,
        citation_footprints: survey::citation_footprints()
            .into_iter()
            .map(|(citation, fp)| (citation, fp.0))
            .collect(),
        total: stats.total,
        single_pillar: stats.single_pillar,
        multi_pillar: stats.multi_pillar,
        multi_type: stats.multi_type,
    };
    check(
        "table1.json",
        &serde_json::to_string_pretty(&golden).unwrap(),
    );
}

#[test]
fn figure3_systems_match_golden_fixture() {
    let systems = systems::figure3_systems();
    let mut pairwise = Vec::new();
    for i in 0..systems.len() {
        for j in i + 1..systems.len() {
            pairwise.push((
                systems[i].name.to_owned(),
                systems[j].name.to_owned(),
                systems[i].footprint().jaccard(systems[j].footprint()),
            ));
        }
    }
    let golden = Figure3Golden {
        systems: systems
            .iter()
            .map(|s| SystemGolden {
                name: s.name,
                paper_section: s.paper_section,
                components: s
                    .components
                    .iter()
                    .map(|c| format!("{} @ {:?}", c.description, c.cell))
                    .collect(),
                footprint_mask: s.footprint().0,
                cell_count: s.footprint().count(),
                multi_pillar: s.footprint().is_multi_pillar(),
            })
            .collect(),
        pairwise_jaccard: pairwise,
    };
    check(
        "figure3.json",
        &serde_json::to_string_pretty(&golden).unwrap(),
    );
}
