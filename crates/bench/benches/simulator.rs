//! B5/B6 — simulator and end-to-end framework benchmarks: simulation
//! throughput at three site sizes, and the cost of one full 16-cell ODA
//! evaluation pass over archived telemetry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oda_core::capability::CapabilityContext;
use oda_core::cells;
use oda_sim::prelude::*;
use oda_telemetry::query::TimeRange;
use oda_telemetry::reading::Timestamp;
use std::hint::black_box;
use std::sync::Arc;

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for (label, cfg) in [
        ("tiny_8n", DataCenterConfig::tiny()),
        ("small_32n", DataCenterConfig::small()),
        ("medium_128n", DataCenterConfig::medium()),
    ] {
        g.throughput(Throughput::Elements(3_600));
        g.bench_with_input(BenchmarkId::new("ticks_1h", label), &cfg, |b, cfg| {
            b.iter_with_setup(
                || DataCenter::builder(cfg.clone()).seed(1).build(),
                |mut dc| {
                    dc.run_for_hours(1.0);
                    black_box(dc.snapshot().it_power_kw)
                },
            );
        });
    }
    g.finish();
}

fn bench_framework_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("framework");
    g.sample_size(10);
    // One pre-built 2-hour small-site trace; measure a full ODA pass.
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(3)
        .build();
    dc.run_for_hours(2.0);
    let store = Arc::clone(dc.store());
    let registry = dc.registry().clone();
    let now = dc.now();
    g.bench_function("sixteen_cells_full_pass", |b| {
        b.iter(|| {
            let ctx = CapabilityContext::new(
                Arc::clone(&store),
                registry.clone(),
                TimeRange::new(Timestamp::ZERO, now + 1),
                now,
            );
            let mut total = 0usize;
            for mut cap in cells::all_sixteen() {
                total += cap.execute(&ctx).len();
            }
            black_box(total)
        });
    });
    g.bench_function("node_anomaly_detector_pass", |b| {
        b.iter(|| {
            let ctx = CapabilityContext::new(
                Arc::clone(&store),
                registry.clone(),
                TimeRange::new(Timestamp::ZERO, now + 1),
                now,
            );
            let mut cap = cells::diagnostic::NodeAnomalyDetector::new();
            use oda_core::capability::Capability;
            black_box(cap.execute(&ctx).len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sim_throughput, bench_framework_pass);
criterion_main!(benches);
