//! B1/B2 — telemetry substrate benchmarks and the store ablations from
//! DESIGN.md: ingest throughput (single vs batch, sharded vs single-lock)
//! and the analytical read path (range scan, downsample, parallel
//! multi-sensor aggregation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oda_telemetry::prelude::*;
use oda_telemetry::query::Aggregation;
use std::hint::black_box;
use std::sync::Arc;

fn prefilled_store(sensors: u32, samples: u64, shards: usize) -> TimeSeriesStore {
    let store = TimeSeriesStore::with_capacity_and_shards(samples as usize + 8, shards);
    for s in 0..sensors {
        for t in 0..samples {
            store.insert(
                SensorId(s),
                Reading::new(Timestamp::from_millis(t * 1_000), (t % 97) as f64),
            );
        }
    }
    store
}

/// Ablation baseline: the naive unbounded Vec-per-sensor store the ring
/// buffer replaces. Grows without bound and pays reallocation; kept here
/// only for the DESIGN.md store ablation.
struct NaiveVecStore {
    series: Vec<Vec<Reading>>,
}

impl NaiveVecStore {
    fn new(sensors: usize) -> Self {
        NaiveVecStore {
            series: (0..sensors).map(|_| Vec::new()).collect(),
        }
    }

    fn insert(&mut self, sensor: SensorId, r: Reading) {
        self.series[sensor.index()].push(r);
    }

    fn range(&self, sensor: SensorId, start: Timestamp, end: Timestamp) -> Vec<Reading> {
        self.series[sensor.index()]
            .iter()
            .copied()
            .filter(|r| r.ts >= start && r.ts < end)
            .collect()
    }
}

fn bench_store_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_ablation");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("ring_store_insert_10k", |b| {
        b.iter_with_setup(
            || TimeSeriesStore::with_capacity(16_384),
            |store| {
                for t in 0..10_000u64 {
                    store.insert(
                        SensorId(0),
                        Reading::new(Timestamp::from_millis(t), t as f64),
                    );
                }
                black_box(store.series_len(SensorId(0)))
            },
        );
    });
    g.bench_function("naive_vec_insert_10k", |b| {
        b.iter_with_setup(
            || NaiveVecStore::new(1),
            |mut store| {
                for t in 0..10_000u64 {
                    store.insert(
                        SensorId(0),
                        Reading::new(Timestamp::from_millis(t), t as f64),
                    );
                }
                black_box(store.series[0].len())
            },
        );
    });
    // Read path: ring buffer range uses binary search; the naive store
    // scans linearly.
    let ring = prefilled_store(1, 16_384, TimeSeriesStore::DEFAULT_SHARDS);
    let mut naive = NaiveVecStore::new(1);
    for t in 0..16_384u64 {
        naive.insert(
            SensorId(0),
            Reading::new(Timestamp::from_millis(t * 1_000), t as f64),
        );
    }
    let (s, e) = (Timestamp::from_secs(8_000), Timestamp::from_secs(8_064));
    g.bench_function("ring_store_narrow_range", |b| {
        b.iter(|| black_box(ring.range(SensorId(0), s, e).len()));
    });
    g.bench_function("naive_vec_narrow_range", |b| {
        b.iter(|| black_box(naive.range(SensorId(0), s, e).len()));
    });
    g.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(10_000));
    // Ablation: shard count (1 = global lock).
    for shards in [1usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("single_insert", shards),
            &shards,
            |b, &shards| {
                b.iter_with_setup(
                    || TimeSeriesStore::with_capacity_and_shards(16_384, shards),
                    |store| {
                        for t in 0..10_000u64 {
                            store.insert(
                                SensorId((t % 64) as u32),
                                Reading::new(Timestamp::from_millis(t), t as f64),
                            );
                        }
                        black_box(store.total_len())
                    },
                );
            },
        );
    }
    // Batch ingest amortises locking.
    g.bench_function("batch_insert_64", |b| {
        let batch: Vec<Reading> = (0..64u64)
            .map(|t| Reading::new(Timestamp::from_millis(t), t as f64))
            .collect();
        b.iter_with_setup(
            || TimeSeriesStore::with_capacity(16_384),
            |store| {
                let mut batch = batch.clone();
                for round in 0..156u64 {
                    for (i, r) in batch.iter_mut().enumerate() {
                        r.ts = Timestamp::from_millis(round * 64 + i as u64);
                    }
                    store.insert_batch(SensorId(0), &batch);
                }
                black_box(store.total_len())
            },
        );
    });
    // Concurrent writers on a sharded vs single-lock store.
    for shards in [1usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("concurrent_8_writers", shards),
            &shards,
            |b, &shards| {
                b.iter_with_setup(
                    || Arc::new(TimeSeriesStore::with_capacity_and_shards(4_096, shards)),
                    |store| {
                        std::thread::scope(|scope| {
                            for w in 0..8u32 {
                                let store = Arc::clone(&store);
                                scope.spawn(move || {
                                    for t in 0..1_250u64 {
                                        store.insert(
                                            SensorId(w * 8),
                                            Reading::new(Timestamp::from_millis(t), t as f64),
                                        );
                                    }
                                });
                            }
                        });
                        black_box(store.total_len())
                    },
                );
            },
        );
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("query");
    let store = prefilled_store(256, 4_096, TimeSeriesStore::DEFAULT_SHARDS);
    let engine = QueryEngine::new(&store);
    let all = TimeRange::all();

    g.bench_function("range_scan_4k", |b| {
        b.iter(|| {
            black_box(
                Query::sensors(SensorId(3))
                    .range(all)
                    .run(&engine)
                    .readings()
                    .len(),
            )
        });
    });
    g.bench_function("aggregate_mean_4k", |b| {
        b.iter(|| {
            black_box(
                Query::sensors(SensorId(3))
                    .range(all)
                    .aggregate(Aggregation::Mean)
                    .run(&engine)
                    .scalar(),
            )
        });
    });
    g.bench_function("aggregate_p99_4k", |b| {
        b.iter(|| {
            black_box(
                Query::sensors(SensorId(3))
                    .range(all)
                    .aggregate(Aggregation::Quantile(0.99))
                    .run(&engine)
                    .scalar(),
            )
        });
    });
    g.bench_function("downsample_1min_4k", |b| {
        b.iter(|| {
            black_box(
                Query::sensors(SensorId(3))
                    .range(all)
                    .downsample(60_000, Aggregation::Mean)
                    .run(&engine)
                    .buckets()
                    .len(),
            )
        });
    });

    // Ablation: rayon fan-out vs sequential loop over 256 sensors.
    let sensors: Vec<SensorId> = (0..256).map(SensorId).collect();
    g.bench_function("aggregate_many_256_parallel", |b| {
        b.iter(|| {
            black_box(
                Query::sensors(&sensors)
                    .range(all)
                    .aggregate(Aggregation::Mean)
                    .run(&engine)
                    .scalars(),
            )
        });
    });
    g.bench_function("aggregate_many_256_sequential", |b| {
        b.iter(|| {
            let out: Vec<Option<f64>> = sensors
                .iter()
                .map(|&s| {
                    Query::sensors(s)
                        .range(all)
                        .aggregate(Aggregation::Mean)
                        .run(&engine)
                        .scalar()
                })
                .collect();
            black_box(out)
        });
    });
    g.bench_function("align_16_sensors_1min", |b| {
        let few: Vec<SensorId> = (0..16).map(SensorId).collect();
        b.iter(|| {
            black_box(
                Query::sensors(&few)
                    .range(all)
                    .align(60_000)
                    .run(&engine)
                    .aligned()
                    .0
                    .len(),
            )
        });
    });
    g.finish();
}

fn bench_bus(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("publish_fanout_8_subscribers", |b| {
        let registry = SensorRegistry::new();
        let sensor = registry.register("/hw/node0/power_w", SensorKind::Power, Unit::Watts);
        let bus = TelemetryBus::new(registry);
        let _subs: Vec<Subscription> = (0..8)
            .map(|i| {
                bus.subscription("/hw/**")
                    .capacity(2_048)
                    .named(format!("bench-fanout-{i}"))
                    .subscribe()
            })
            .collect();
        b.iter(|| {
            for t in 0..1_000u64 {
                bus.publish(oda_telemetry::reading::ReadingBatch::single(
                    sensor,
                    Reading::new(Timestamp::from_millis(t), t as f64),
                ));
            }
            // Drain so buffers do not saturate.
            for s in &_subs {
                while s.rx.try_recv().is_ok() {}
            }
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_store_ablation,
    bench_ingest,
    bench_query,
    bench_bus
);
criterion_main!(benches);
