//! B3/B4 — analytics algorithm throughput: detectors, feature extraction
//! (including the CS-vs-raw ablation), forecasters, FFT/harmonic fits and
//! classifiers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oda_analytics::descriptive::quantile::P2Quantile;
use oda_analytics::descriptive::stats::{correlation, RollingStats, Welford};
use oda_analytics::diagnostic::detector::{
    AnomalyDetector, EwmaControlChart, IqrDetector, ZScoreDetector,
};
use oda_analytics::diagnostic::smoothing::CorrelationSmoothing;
use oda_analytics::predictive::ar::ArModel;
use oda_analytics::predictive::fft::{fft, SpectralForecaster};
use oda_analytics::predictive::forecast::{Forecaster, HoltWinters};
use oda_analytics::predictive::harmonic::HarmonicModel;
use oda_analytics::predictive::regression::RidgeRegression;
use rayon::prelude::*;
use std::hint::black_box;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            10.0 + 3.0 * (i as f64 / 24.0).sin()
                + ((i as u64).wrapping_mul(2654435761) % 100) as f64 * 0.01
        })
        .collect()
}

fn bench_streaming_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_stats");
    let xs = series(10_000);
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("welford_10k", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            black_box(w.variance())
        });
    });
    g.bench_function("rolling_256_10k", |b| {
        b.iter(|| {
            let mut r = RollingStats::new(256);
            for &x in &xs {
                r.push(x);
            }
            black_box(r.mean())
        });
    });
    g.bench_function("p2_quantile_10k", |b| {
        b.iter(|| {
            let mut p = P2Quantile::new(0.95);
            for &x in &xs {
                p.push(x);
            }
            black_box(p.value())
        });
    });
    g.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("detectors");
    let xs = series(10_000);
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("zscore_10k", |b| {
        b.iter(|| {
            let mut d = ZScoreDetector::new(128, 4.0);
            let mut hits = 0u32;
            for &x in &xs {
                if d.observe(x) >= 1.0 {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    g.bench_function("iqr_10k", |b| {
        b.iter(|| {
            let mut d = IqrDetector::new(128, 1.5);
            let mut hits = 0u32;
            for &x in &xs {
                if d.observe(x) >= 1.0 {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    g.bench_function("ewma_chart_10k", |b| {
        b.iter(|| {
            let mut d = EwmaControlChart::new(0.2, 3.0);
            let mut hits = 0u32;
            for &x in &xs {
                if d.observe(x) >= 1.0 {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    // Fleet-scan ablation: sequential vs rayon across 512 node series.
    let fleet: Vec<Vec<f64>> = (0..512).map(|_| series(512)).collect();
    g.bench_function("fleet_scan_512_sequential", |b| {
        b.iter(|| {
            let hits: u32 = fleet
                .iter()
                .map(|s| {
                    let mut d = ZScoreDetector::new(64, 4.0);
                    s.iter().filter(|&&x| d.observe(x) >= 1.0).count() as u32
                })
                .sum();
            black_box(hits)
        });
    });
    g.bench_function("fleet_scan_512_rayon", |b| {
        b.iter(|| {
            let hits: u32 = fleet
                .par_iter()
                .map(|s| {
                    let mut d = ZScoreDetector::new(64, 4.0);
                    s.iter().filter(|&&x| d.observe(x) >= 1.0).count() as u32
                })
                .sum();
            black_box(hits)
        });
    });
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let mut g = c.benchmark_group("features");
    // CS ablation: descriptor vs raw-vector distance work for a 64-sensor
    // node state.
    let training: Vec<Vec<f64>> = (0..64).map(|_| series(512)).collect();
    let cs = CorrelationSmoothing::fit(&training, 4);
    let snapshot: Vec<f64> = training.iter().map(|s| s[100]).collect();
    g.bench_function("cs_fit_64x512", |b| {
        b.iter(|| black_box(CorrelationSmoothing::fit(&training, 4).order().len()));
    });
    g.bench_function("cs_descriptor_64", |b| {
        b.iter(|| black_box(cs.descriptor(&snapshot).len()));
    });
    g.bench_function("correlation_512", |b| {
        b.iter(|| black_box(correlation(&training[0], &training[1])));
    });
    g.finish();
}

fn bench_forecasters(c: &mut Criterion) {
    let mut g = c.benchmark_group("forecasters");
    let xs = series(4_096);
    g.bench_function("holt_winters_update_4k", |b| {
        b.iter(|| {
            let mut hw = HoltWinters::new(0.3, 0.05, 0.3, 96);
            for &x in &xs {
                hw.update(x);
            }
            black_box(hw.forecast(96))
        });
    });
    g.bench_function("ar8_fit_4k", |b| {
        b.iter(|| black_box(ArModel::fit(&xs, 8).map(|m| m.residual_std)));
    });
    g.bench_function("ridge_fit_1000x8", |b| {
        let rows: Vec<Vec<f64>> = (0..1_000)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 7 + j * 13) % 100) as f64 * 0.01)
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.iter().sum()).collect();
        b.iter(|| black_box(RidgeRegression::fit(&rows, &ys, 0.1).map(|m| m.weights()[0])));
    });
    for n in [1_024usize, 8_192] {
        g.bench_with_input(BenchmarkId::new("fft", n), &n, |b, &n| {
            let data: Vec<(f64, f64)> = (0..n).map(|i| ((i as f64 * 0.1).sin(), 0.0)).collect();
            b.iter(|| {
                let mut buf = data.clone();
                fft(&mut buf);
                black_box(buf[1].0)
            });
        });
    }
    g.bench_function("spectral_fit_4k_top12", |b| {
        b.iter(|| black_box(SpectralForecaster::fit(&xs, 12).map(|m| m.value_at(0.0))));
    });
    g.bench_function("harmonic_fit_768_h40", |b| {
        let day = series(768);
        b.iter(|| black_box(HarmonicModel::fit(&day, 96.0, 40).map(|m| m.rmse)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_streaming_stats,
    bench_detectors,
    bench_features,
    bench_forecasters
);
criterion_main!(benches);
