//! E5 — §V-A: reactive vs proactive control.
//!
//! The paper's central multi-type claim: *"enhancing a prescriptive ODA
//! system with predictive capabilities allows it to optimize system knobs
//! in a proactive manner, thus anticipating state transitions and
//! preventing adverse effects, rather than in a reactive way. In almost
//! all cases, this has a positive effect on the KPIs."*
//!
//! The experiment runs the same site + workload (same seed) under three
//! DVFS regimes:
//!
//! * **static-max** — no ODA: every node at full clock (the baseline).
//! * **reactive** — prescriptive only: each node's governor decides from
//!   the utilization just observed. It trails phase transitions by one
//!   control interval: after an idle→busy transition the node grinds at
//!   low clock for a whole interval.
//! * **proactive** — predictive + prescriptive: the governor decides from
//!   a one-interval-ahead Holt forecast of utilization, anticipating
//!   transitions.
//!
//! Expected shape: both governed regimes use less energy per unit of work
//! than static-max; proactive recovers most of the reactive regime's
//! throughput loss while keeping (almost all of) its energy savings.

use crate::control::{metrics, run_with_controller, RunMetrics};
use oda_analytics::predictive::forecast::Holt;
use oda_analytics::prescriptive::dvfs::{DvfsGovernor, FreqPolicy, GovernorMode};
use oda_sim::prelude::*;
use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};

/// DVFS regime under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// No governor: max clock everywhere.
    StaticMax,
    /// Reactive governor.
    Reactive,
    /// Proactive governor (Holt one-step forecast).
    Proactive,
}

impl Regime {
    /// All regimes, report order.
    pub const ALL: [Regime; 3] = [Regime::StaticMax, Regime::Reactive, Regime::Proactive];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Regime::StaticMax => "static-max",
            Regime::Reactive => "reactive-dvfs",
            Regime::Proactive => "proactive-dvfs",
        }
    }
}

/// Runs one regime and returns its metrics.
pub fn run_regime(regime: Regime, hours: f64, seed: u64, control_every_s: u64) -> RunMetrics {
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(seed)
        .build();
    match regime {
        Regime::StaticMax => {
            dc.run_for_hours(hours);
        }
        Regime::Reactive | Regime::Proactive => {
            let mode = if regime == Regime::Reactive {
                GovernorMode::Reactive
            } else {
                GovernorMode::Proactive
            };
            let policy = FreqPolicy::default_for_range(
                dc.config().node.f_min_ghz,
                dc.config().node.f_max_ghz,
            );
            let mut governors: Vec<DvfsGovernor> = (0..dc.node_count())
                .map(|_| DvfsGovernor::new(policy, mode, Box::new(Holt::new(0.6, 0.4))))
                .collect();
            let util_sensors: Vec<_> = (0..dc.node_count())
                .map(|i| dc.registry().lookup(&format!("/hw/node{i}/util")).unwrap())
                .collect();
            run_with_controller(&mut dc, hours, control_every_s, |dc| {
                let store = std::sync::Arc::clone(dc.store());
                let q = QueryEngine::new(&store);
                let window = TimeRange::trailing(dc.now(), control_every_s * 1_000);
                for (i, governor) in governors.iter_mut().enumerate() {
                    let util = Query::sensors(util_sensors[i])
                        .range(window)
                        .aggregate(Aggregation::Mean)
                        .run(&q)
                        .scalar()
                        .unwrap_or(0.0);
                    let freq = governor.decide(util);
                    dc.set_node_freq(NodeId(i as u32), freq);
                }
            });
        }
    }
    metrics(&dc)
}

/// Runs the whole experiment: all three regimes on the same seed.
pub fn run_experiment(hours: f64, seed: u64) -> Vec<(Regime, RunMetrics)> {
    Regime::ALL
        .into_iter()
        .map(|r| (r, run_regime(r, hours, seed, 30)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governed_regimes_save_energy_per_work() {
        let results = run_experiment(6.0, 42);
        let m = |r: Regime| results.iter().find(|(x, _)| *x == r).unwrap().1;
        let base = m(Regime::StaticMax);
        let reactive = m(Regime::Reactive);
        let proactive = m(Regime::Proactive);
        // Both governed regimes burn less IT energy than static max clock.
        assert!(
            reactive.it_energy_kwh < base.it_energy_kwh,
            "reactive {} vs base {}",
            reactive.it_energy_kwh,
            base.it_energy_kwh
        );
        assert!(proactive.it_energy_kwh < base.it_energy_kwh);
        // And better energy-per-work (the KPI DVFS targets).
        assert!(reactive.energy_per_kilonode_s < base.energy_per_kilonode_s * 1.02);
        assert!(proactive.energy_per_kilonode_s < base.energy_per_kilonode_s * 1.02);
    }
}
