//! Ingest soak — the self-observability baseline benchmark.
//!
//! Drives the full telemetry data path — `TelemetryBus::publish` →
//! `TimeSeriesStore` archive → `Query` read-back — on a synthetic fleet and
//! measures:
//!
//! * **ingest throughput** (readings/s sustained through publish+archive),
//! * **query latency** p50/p99 over a fixed mixed query workload,
//! * **metrics overhead** — the same soak run against a live
//!   [`MetricsRegistry`] and against [`MetricsRegistry::disabled`]; the
//!   wall-clock delta is the price of the observability layer.
//!
//! `cargo run --release -p oda-bench --bin ingest` prints the paired result
//! as one JSON object; CI pins it as `BENCH_ingest.json` at the repo root.
//! The *shape* of the workload is fully deterministic (fixed sensor count,
//! batch sizes, synthetic values), so count-valued metrics reproduce
//! exactly; only wall-clock figures vary run to run.

use oda_telemetry::bus::TelemetryBus;
use oda_telemetry::metrics::{MetricsRegistry, MetricsSnapshot};
use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};
use oda_telemetry::reading::{Reading, ReadingBatch, Timestamp};
use oda_telemetry::sensor::{SensorKind, SensorRegistry, Unit};
use oda_telemetry::store::TimeSeriesStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Ingest soak parameters.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of synthetic sensors (`/hw/nodeN/power_w`).
    pub sensors: usize,
    /// Publish rounds; each round publishes one batch per sensor.
    pub rounds: usize,
    /// Readings per batch.
    pub readings_per_batch: usize,
    /// Per-sensor ring capacity.
    pub store_capacity: usize,
    /// Queries per flavour in the read-back phase.
    pub queries: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            sensors: 64,
            rounds: 400,
            readings_per_batch: 16,
            store_capacity: 8_192,
            queries: 200,
        }
    }
}

impl IngestConfig {
    /// A smaller workload for unit tests.
    pub fn smoke() -> Self {
        IngestConfig {
            sensors: 8,
            rounds: 20,
            readings_per_batch: 4,
            store_capacity: 256,
            queries: 10,
        }
    }
}

/// Result of one soak against one recorder.
#[derive(Debug, Clone, Serialize)]
pub struct IngestReport {
    /// Whether the soak recorded into a live registry.
    pub metrics_enabled: bool,
    /// Total readings pushed through publish+archive.
    pub readings_total: u64,
    /// Wall time of the publish phase, nanoseconds.
    pub publish_wall_ns: u64,
    /// Sustained ingest rate, readings per second.
    pub throughput_rps: f64,
    /// Queries executed in the read-back phase.
    pub queries_run: u64,
    /// Median query latency, nanoseconds (measured externally, so it is
    /// comparable between the enabled and disabled runs).
    pub query_p50_ns: u64,
    /// 99th-percentile query latency, nanoseconds.
    pub query_p99_ns: u64,
    /// Batches delivered to the soak's subscriber.
    pub delivered_total: u64,
    /// Batches shed on the subscriber's full buffer.
    pub shed_total: u64,
}

/// Runs the publish→archive→query soak against `metrics`, returning the
/// report and the final metrics snapshot (empty when disabled).
pub fn run_ingest(cfg: &IngestConfig, metrics: MetricsRegistry) -> (IngestReport, MetricsSnapshot) {
    let metrics_enabled = metrics.is_enabled();
    let registry = SensorRegistry::new();
    let sensors: Vec<_> = (0..cfg.sensors)
        .map(|i| registry.register(&format!("/hw/node{i}/power_w"), SensorKind::Power, Unit::Watts))
        .collect();
    let store = Arc::new(TimeSeriesStore::with_capacity_shards_metrics(
        cfg.store_capacity,
        TimeSeriesStore::DEFAULT_SHARDS,
        metrics.clone(),
    ));
    let bus = TelemetryBus::with_parts(registry, Some(Arc::clone(&store)), metrics.clone());
    // One live subscriber so the fan-out path is exercised; drained each
    // round so it never sheds.
    let sub = bus
        .subscription("/hw/**")
        .capacity(cfg.sensors * 2)
        .named("ingest-soak")
        .subscribe();

    // Publish phase: deterministic synthetic values, monotone timestamps.
    let publish_start = Instant::now();
    let mut readings_total = 0u64;
    for round in 0..cfg.rounds {
        for (i, &sensor) in sensors.iter().enumerate() {
            let readings: Vec<Reading> = (0..cfg.readings_per_batch)
                .map(|k| {
                    let ts = (round * cfg.readings_per_batch + k) as u64 * 1_000;
                    let value = 100.0 + (i as f64) + (k as f64) * 0.25;
                    Reading::new(Timestamp::from_millis(ts), value)
                })
                .collect();
            readings_total += readings.len() as u64;
            bus.publish(ReadingBatch { sensor, readings });
        }
        while sub.rx.try_recv().is_ok() {}
    }
    let publish_wall_ns = publish_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    // Query phase: a mixed read-back workload (scalar aggregate, downsample,
    // raw scan) cycled across sensors; latencies measured externally so the
    // enabled and disabled runs are directly comparable.
    let engine = QueryEngine::new(&store);
    let all = TimeRange::all();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(cfg.queries * 3);
    let mut timed = |query: Query| {
        let t = Instant::now();
        let result = query.run(&engine);
        latencies_ns.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        result
    };
    for qi in 0..cfg.queries {
        let s = sensors[qi % sensors.len()];
        let mean = timed(Query::sensors(s).range(all).aggregate(Aggregation::Mean)).scalar();
        assert!(mean.is_some(), "soak store must have data for every sensor");
        let buckets =
            timed(Query::sensors(s).range(all).downsample(10_000, Aggregation::Max)).buckets();
        assert!(!buckets.is_empty());
        let readings = timed(Query::sensors(s).range(all)).readings();
        assert!(!readings.is_empty());
    }
    latencies_ns.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_ns.is_empty() {
            return 0;
        }
        let idx = ((latencies_ns.len() as f64 - 1.0) * p).round() as usize;
        latencies_ns[idx]
    };

    let elapsed_s = (publish_wall_ns as f64 / 1e9).max(1e-9);
    let report = IngestReport {
        metrics_enabled,
        readings_total,
        publish_wall_ns,
        throughput_rps: readings_total as f64 / elapsed_s,
        queries_run: latencies_ns.len() as u64,
        query_p50_ns: pct(0.50),
        query_p99_ns: pct(0.99),
        delivered_total: bus.delivered_total(),
        shed_total: bus.dropped_total(),
    };
    (report, metrics.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_pushes_every_reading_through_the_path() {
        let cfg = IngestConfig::smoke();
        let (report, snap) = run_ingest(&cfg, MetricsRegistry::new());
        let expected = (cfg.sensors * cfg.rounds * cfg.readings_per_batch) as u64;
        assert_eq!(report.readings_total, expected);
        assert!(report.throughput_rps > 0.0);
        assert_eq!(report.queries_run, (cfg.queries * 3) as u64);
        assert!(report.query_p50_ns <= report.query_p99_ns);
        // The drained subscriber saw every batch, shed nothing.
        assert_eq!(report.delivered_total, (cfg.sensors * cfg.rounds) as u64);
        assert_eq!(report.shed_total, 0);
        // The instrumented path recorded the same totals into the registry.
        assert_eq!(snap.counter("bus_readings_total"), Some(expected));
        let appends: u64 = snap
            .counters
            .iter()
            .filter(|c| c.id.starts_with("store_append_total"))
            .map(|c| c.value)
            .sum();
        assert_eq!(appends, expected);
    }

    #[test]
    fn disabled_recorder_runs_the_same_workload_with_no_instruments() {
        let cfg = IngestConfig::smoke();
        let (report, snap) = run_ingest(&cfg, MetricsRegistry::disabled());
        assert!(!report.metrics_enabled);
        assert!(report.throughput_rps > 0.0);
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn same_config_reproduces_count_valued_metrics() {
        let cfg = IngestConfig::smoke();
        let (_, a) = run_ingest(&cfg, MetricsRegistry::new());
        let (_, b) = run_ingest(&cfg, MetricsRegistry::new());
        assert_eq!(a.count_values(), b.count_values());
    }
}
