//! Ingest soak — the self-observability baseline benchmark.
//!
//! Drives the full telemetry data path — `TelemetryBus::publish` →
//! `TimeSeriesStore` archive → `Query` read-back — on a synthetic fleet and
//! measures:
//!
//! * **ingest throughput** (readings/s sustained through publish+archive),
//! * **query latency** p50/p99 over a fixed mixed query workload,
//! * **metrics overhead** — the same soak run against a live
//!   [`MetricsRegistry`] and against [`MetricsRegistry::disabled`]; the
//!   wall-clock delta is the price of the observability layer,
//! * **rollup-tier savings** — a long-window fleet aggregate answered
//!   through the planner's rollup tiers and again with [`Query::raw_scan`];
//!   the paired latencies and readings-scanned deltas quantify what the
//!   multi-resolution archive buys (the answers themselves are asserted
//!   bit-identical, since the soak's synthetic values are dyadic).
//!
//! `cargo run --release -p oda-bench --bin ingest` prints the paired result
//! as one JSON object; CI pins it as `BENCH_ingest.json` at the repo root.
//! The *shape* of the workload is fully deterministic (fixed sensor count,
//! batch sizes, synthetic values), so count-valued metrics reproduce
//! exactly; only wall-clock figures vary run to run.

use oda_telemetry::bus::TelemetryBus;
use oda_telemetry::metrics::{MetricsRegistry, MetricsSnapshot};
use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};
use oda_telemetry::reading::{Reading, ReadingBatch, Timestamp};
use oda_telemetry::sensor::{SensorKind, SensorRegistry, Unit};
use oda_telemetry::store::TimeSeriesStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Ingest soak parameters.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of synthetic sensors (`/hw/nodeN/power_w`).
    pub sensors: usize,
    /// Publish rounds; each round publishes one batch per sensor.
    pub rounds: usize,
    /// Readings per batch.
    pub readings_per_batch: usize,
    /// Per-sensor ring capacity.
    pub store_capacity: usize,
    /// Queries per flavour in the read-back phase.
    pub queries: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            sensors: 64,
            rounds: 400,
            readings_per_batch: 16,
            store_capacity: 8_192,
            queries: 200,
        }
    }
}

impl IngestConfig {
    /// A smaller workload for unit tests.
    pub fn smoke() -> Self {
        IngestConfig {
            sensors: 8,
            rounds: 20,
            readings_per_batch: 4,
            store_capacity: 256,
            queries: 10,
        }
    }
}

/// Result of one soak against one recorder.
#[derive(Debug, Clone, Serialize)]
pub struct IngestReport {
    /// Whether the soak recorded into a live registry.
    pub metrics_enabled: bool,
    /// Total readings pushed through publish+archive.
    pub readings_total: u64,
    /// Wall time of the publish phase, nanoseconds.
    pub publish_wall_ns: u64,
    /// Sustained ingest rate, readings per second.
    pub throughput_rps: f64,
    /// Queries executed in the read-back phase.
    pub queries_run: u64,
    /// Median query latency, nanoseconds (measured externally, so it is
    /// comparable between the enabled and disabled runs).
    pub query_p50_ns: u64,
    /// 99th-percentile query latency, nanoseconds.
    pub query_p99_ns: u64,
    /// Batches delivered to the soak's subscriber.
    pub delivered_total: u64,
    /// Batches shed on the subscriber's full buffer.
    pub shed_total: u64,
    /// Long-window fleet-query phase (rollup planner vs forced raw scan).
    pub longwin: LongWindowReport,
}

/// Result of the long-window fleet-aggregate phase: the same whole-window
/// fleet query answered through the rollup planner and again with
/// [`Query::raw_scan`], so the tier savings are measured on identical work.
/// Counter-valued fields are zero when the soak ran with metrics disabled.
#[derive(Debug, Clone, Serialize)]
pub struct LongWindowReport {
    /// Fleet queries per path (tiered and raw each ran this many).
    pub queries_run: u64,
    /// Median planner-served fleet-query latency, nanoseconds.
    pub tiered_p50_ns: u64,
    /// 99th-percentile planner-served fleet-query latency, nanoseconds.
    pub tiered_p99_ns: u64,
    /// Median forced-raw fleet-query latency, nanoseconds.
    pub raw_p50_ns: u64,
    /// 99th-percentile forced-raw fleet-query latency, nanoseconds.
    pub raw_p99_ns: u64,
    /// Raw readings materialised by the tiered phase (head/tail edges only).
    pub tiered_readings_scanned: u64,
    /// Readings the planner avoided rescanning by serving rollup buckets.
    pub readings_avoided: u64,
    /// Per-sensor tier hits recorded during the tiered phase.
    pub tier_hits: u64,
    /// Raw readings materialised by the forced-raw phase.
    pub raw_readings_scanned: u64,
    /// `raw_readings_scanned / max(tiered_readings_scanned, 1)` — how many
    /// times fewer readings the planner touched for the same answers.
    pub scan_reduction_x: f64,
}

/// Exact percentile over an already-sorted latency list.
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx]
}

/// Runs the publish→archive→query soak against `metrics`, returning the
/// report and the final metrics snapshot (empty when disabled).
pub fn run_ingest(cfg: &IngestConfig, metrics: MetricsRegistry) -> (IngestReport, MetricsSnapshot) {
    let metrics_enabled = metrics.is_enabled();
    let registry = SensorRegistry::new();
    let sensors: Vec<_> = (0..cfg.sensors)
        .map(|i| {
            registry.register(
                &format!("/hw/node{i}/power_w"),
                SensorKind::Power,
                Unit::Watts,
            )
        })
        .collect();
    let store = Arc::new(TimeSeriesStore::with_capacity_shards_metrics(
        cfg.store_capacity,
        TimeSeriesStore::DEFAULT_SHARDS,
        metrics.clone(),
    ));
    let bus = TelemetryBus::with_parts(registry, Some(Arc::clone(&store)), metrics.clone());
    // One live subscriber so the fan-out path is exercised; drained each
    // round so it never sheds.
    let sub = bus
        .subscription("/hw/**")
        .capacity(cfg.sensors * 2)
        .named("ingest-soak")
        .subscribe();

    // Publish phase: deterministic synthetic values, monotone timestamps.
    let publish_start = Instant::now();
    let mut readings_total = 0u64;
    for round in 0..cfg.rounds {
        for (i, &sensor) in sensors.iter().enumerate() {
            let readings: Vec<Reading> = (0..cfg.readings_per_batch)
                .map(|k| {
                    let ts = (round * cfg.readings_per_batch + k) as u64 * 1_000;
                    let value = 100.0 + (i as f64) + (k as f64) * 0.25;
                    Reading::new(Timestamp::from_millis(ts), value)
                })
                .collect();
            readings_total += readings.len() as u64;
            bus.publish(ReadingBatch { sensor, readings });
        }
        while sub.rx.try_recv().is_ok() {}
    }
    let publish_wall_ns = publish_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    // Query phase: a mixed read-back workload (scalar aggregate, downsample,
    // raw scan) cycled across sensors; latencies measured externally so the
    // enabled and disabled runs are directly comparable.
    let engine = QueryEngine::new(&store);
    let all = TimeRange::all();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(cfg.queries * 3);
    let mut timed = |query: Query| {
        let t = Instant::now();
        let result = query.run(&engine);
        latencies_ns.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        result
    };
    for qi in 0..cfg.queries {
        let s = sensors[qi % sensors.len()];
        let mean = timed(Query::sensors(s).range(all).aggregate(Aggregation::Mean)).scalar();
        assert!(mean.is_some(), "soak store must have data for every sensor");
        let buckets = timed(
            Query::sensors(s)
                .range(all)
                .downsample(10_000, Aggregation::Max),
        )
        .buckets();
        assert!(!buckets.is_empty());
        let readings = timed(Query::sensors(s).range(all)).readings();
        assert!(!readings.is_empty());
    }
    latencies_ns.sort_unstable();

    // Long-window fleet phase: one whole-window aggregate spanning every
    // sensor, answered through the rollup planner and then again with the
    // planner bypassed. The soak's values (100 + i + k/4) are dyadic, so
    // tier partial sums are bit-exact and both paths must agree exactly.
    let longwin_queries = cfg.queries.max(1);
    let scanned_of = |snap: &MetricsSnapshot, id: &str| snap.counter(id).unwrap_or(0);
    let fleet_mean = |raw: bool| -> Vec<Option<f64>> {
        let mut q = Query::sensors(sensors.as_slice())
            .range(all)
            .aggregate(Aggregation::Mean);
        if raw {
            q = q.raw_scan();
        }
        q.run(&engine).scalars()
    };
    let before = metrics.snapshot();
    let mut tiered_ns: Vec<u64> = Vec::with_capacity(longwin_queries);
    let mut tiered_answer = Vec::new();
    for _ in 0..longwin_queries {
        let t = Instant::now();
        tiered_answer = fleet_mean(false);
        tiered_ns.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    let mid = metrics.snapshot();
    let mut raw_ns: Vec<u64> = Vec::with_capacity(longwin_queries);
    let mut raw_answer = Vec::new();
    for _ in 0..longwin_queries {
        let t = Instant::now();
        raw_answer = fleet_mean(true);
        raw_ns.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    let after = metrics.snapshot();
    assert_eq!(
        tiered_answer, raw_answer,
        "rollup-served fleet means must equal the raw rescan bit-for-bit"
    );
    tiered_ns.sort_unstable();
    raw_ns.sort_unstable();
    let delta = |a: &MetricsSnapshot, b: &MetricsSnapshot, id: &str| {
        scanned_of(b, id).saturating_sub(scanned_of(a, id))
    };
    let tiered_scanned = delta(&before, &mid, "query_readings_scanned_total");
    let raw_scanned = delta(&mid, &after, "query_readings_scanned_total");
    let longwin = LongWindowReport {
        queries_run: longwin_queries as u64,
        tiered_p50_ns: percentile(&tiered_ns, 0.50),
        tiered_p99_ns: percentile(&tiered_ns, 0.99),
        raw_p50_ns: percentile(&raw_ns, 0.50),
        raw_p99_ns: percentile(&raw_ns, 0.99),
        tiered_readings_scanned: tiered_scanned,
        readings_avoided: delta(&before, &mid, "query_readings_avoided_total"),
        tier_hits: delta(&before, &mid, "query_tier_hit_total"),
        raw_readings_scanned: raw_scanned,
        scan_reduction_x: raw_scanned as f64 / tiered_scanned.max(1) as f64,
    };

    let pct = |p: f64| -> u64 { percentile(&latencies_ns, p) };
    let elapsed_s = (publish_wall_ns as f64 / 1e9).max(1e-9);
    let report = IngestReport {
        metrics_enabled,
        readings_total,
        publish_wall_ns,
        throughput_rps: readings_total as f64 / elapsed_s,
        queries_run: latencies_ns.len() as u64,
        query_p50_ns: pct(0.50),
        query_p99_ns: pct(0.99),
        delivered_total: bus.delivered_total(),
        shed_total: bus.dropped_total(),
        longwin,
    };
    (report, metrics.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_pushes_every_reading_through_the_path() {
        let cfg = IngestConfig::smoke();
        let (report, snap) = run_ingest(&cfg, MetricsRegistry::new());
        let expected = (cfg.sensors * cfg.rounds * cfg.readings_per_batch) as u64;
        assert_eq!(report.readings_total, expected);
        assert!(report.throughput_rps > 0.0);
        assert_eq!(report.queries_run, (cfg.queries * 3) as u64);
        assert!(report.query_p50_ns <= report.query_p99_ns);
        // The drained subscriber saw every batch, shed nothing.
        assert_eq!(report.delivered_total, (cfg.sensors * cfg.rounds) as u64);
        assert_eq!(report.shed_total, 0);
        // The instrumented path recorded the same totals into the registry.
        assert_eq!(snap.counter("bus_readings_total"), Some(expected));
        let appends: u64 = snap
            .counters
            .iter()
            .filter(|c| c.id.starts_with("store_append_total"))
            .map(|c| c.value)
            .sum();
        assert_eq!(appends, expected);
    }

    #[test]
    fn long_window_phase_tier_hits_and_counts_savings() {
        let cfg = IngestConfig::smoke();
        let (report, _) = run_ingest(&cfg, MetricsRegistry::new());
        let lw = &report.longwin;
        assert_eq!(lw.queries_run, cfg.queries as u64);
        // Every sensor tier-hits on every tiered fleet query...
        assert_eq!(lw.tier_hits, (cfg.queries * cfg.sensors) as u64);
        // ...so the raw path scans at least 5x more readings for the same
        // (exactly equal — asserted inside run_ingest) answers.
        assert!(lw.readings_avoided > 0);
        assert!(
            lw.scan_reduction_x >= 5.0,
            "tiers should avoid >=5x rescans, got {}x",
            lw.scan_reduction_x
        );
        assert!(lw.raw_readings_scanned > lw.tiered_readings_scanned);
        assert!(lw.tiered_p50_ns <= lw.tiered_p99_ns);
        assert!(lw.raw_p50_ns <= lw.raw_p99_ns);
    }

    #[test]
    fn disabled_recorder_runs_the_same_workload_with_no_instruments() {
        let cfg = IngestConfig::smoke();
        let (report, snap) = run_ingest(&cfg, MetricsRegistry::disabled());
        assert!(!report.metrics_enabled);
        assert!(report.throughput_rps > 0.0);
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn same_config_reproduces_count_valued_metrics() {
        let cfg = IngestConfig::smoke();
        let (_, a) = run_ingest(&cfg, MetricsRegistry::new());
        let (_, b) = run_ingest(&cfg, MetricsRegistry::new());
        assert_eq!(a.count_values(), b.count_values());
    }
}
