//! Chaos soak — the full ODA runtime under deterministic fault injection.
//!
//! Runs four soaks on the same simulated site: a clean baseline, two
//! identical faulted runs (same seed, same schedule) to verify replay, and
//! the same faulted run again with the analytics runtime fanned out across
//! a worker pool to verify the parallel scheduler is bit-identical to
//! serial execution. Prints the degradation metrics side by side.
//!
//! Usage: `chaos [ticks] [seed] [workers]` — defaults to 12 000 ticks,
//! seed 21, 4 workers. Exits non-zero if any determinism check fails.

use oda_bench::chaos::{demo_schedule, run_soak, SoakConfig, SoakReport};
use oda_sim::prelude::FaultSchedule;

fn main() {
    let mut args = std::env::args().skip(1);
    let ticks: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(21);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // Hand-built overlap (all seven kinds concurrently active mid-run) plus
    // randomized background faults for variety.
    let mut schedule = demo_schedule(seed, ticks, 1_000);
    let extra = FaultSchedule::randomized(
        seed,
        oda_telemetry::reading::Timestamp::from_millis(ticks * 1_000),
        8,
        5,
    );
    for fault in extra.faults {
        schedule.push(fault);
    }

    println!(
        "chaos soak — {ticks} ticks, seed {seed}, {} scheduled faults, runtime workers 1 vs {workers}\n",
        schedule.len()
    );

    let clean = run_soak(&SoakConfig::clean(seed, ticks));
    let faulty = run_soak(&SoakConfig::faulty(seed, ticks, schedule.clone()));
    let replay = run_soak(&SoakConfig::faulty(seed, ticks, schedule.clone()));
    let parallel = run_soak(&SoakConfig::faulty(seed, ticks, schedule).with_workers(workers));

    print_comparison(&clean, &faulty);

    println!(
        "\ndeterminism: run A digest           {:#018x} (workers=1)",
        faulty.digest
    );
    println!(
        "             run B digest           {:#018x} (workers=1, replay)",
        replay.digest
    );
    println!(
        "             run C digest           {:#018x} (workers={workers})",
        parallel.digest
    );
    let deterministic = faulty.digest == replay.digest
        && faulty.suppressed == replay.suppressed
        && faulty.corrupted == replay.corrupted
        && faulty.alerts_raised == replay.alerts_raised;
    let worker_invariant = faulty.digest == parallel.digest
        && faulty.prescriptions_applied == parallel.prescriptions_applied
        && faulty.prescriptions_deferred == parallel.prescriptions_deferred;
    println!(
        "             replay:  {}",
        if deterministic {
            "IDENTICAL — replay reproduces the degraded run"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "             workers: {}",
        if worker_invariant {
            "IDENTICAL — parallel scheduling is bit-identical to serial"
        } else {
            "MISMATCH"
        }
    );

    let healthy = deterministic
        && worker_invariant
        && faulty.nan_alert_events == 0
        && faulty.max_concurrent_faults >= 3
        && faulty.windows > 0
        && faulty.runtime_passes == faulty.windows;
    if !healthy {
        eprintln!("\nchaos soak FAILED (determinism or degradation invariant violated)");
        std::process::exit(1);
    }
    println!("\nchaos soak OK — zero panics, NaN-free alerting, deterministic replay at any worker count");
}

fn print_comparison(clean: &SoakReport, faulty: &SoakReport) {
    println!("{:<28} {:>14} {:>14}", "metric", "clean", "faulted");
    println!("{}", "-".repeat(58));
    let row = |name: &str, c: String, f: String| println!("{name:<28} {c:>14} {f:>14}");
    row(
        "usable windows",
        format!("{}/{}", clean.usable_windows, clean.windows),
        format!("{}/{}", faulty.usable_windows, faulty.windows),
    );
    row(
        "usable fraction",
        format!("{:.3}", clean.usable_fraction()),
        format!("{:.3}", faulty.usable_fraction()),
    );
    row(
        "alerts raised",
        clean.alerts_raised.to_string(),
        format!(
            "{} (+{} false)",
            faulty.alerts_raised,
            faulty.alerts_raised.saturating_sub(clean.alerts_raised)
        ),
    );
    row(
        "alert events w/ NaN",
        clean.nan_alert_events.to_string(),
        faulty.nan_alert_events.to_string(),
    );
    row(
        "forecasts made/abstained",
        format!("{}/{}", clean.forecasts_made, clean.forecasts_abstained),
        format!("{}/{}", faulty.forecasts_made, faulty.forecasts_abstained),
    );
    row(
        "readings suppressed",
        clean.suppressed.to_string(),
        faulty.suppressed.to_string(),
    );
    row(
        "readings corrupted",
        clean.corrupted.to_string(),
        faulty.corrupted.to_string(),
    );
    row(
        "store rejections",
        clean.store_rejected.to_string(),
        faulty.store_rejected.to_string(),
    );
    row(
        "max archive gap (s)",
        (clean.max_gap_ms / 1_000).to_string(),
        (faulty.max_gap_ms / 1_000).to_string(),
    );
    row(
        "bus delivered/dropped",
        format!("{}/{}", clean.bus_delivered, clean.bus_dropped),
        format!("{}/{}", faulty.bus_delivered, faulty.bus_dropped),
    );
    row(
        "max concurrent faults",
        clean.max_concurrent_faults.to_string(),
        faulty.max_concurrent_faults.to_string(),
    );
    row(
        "jobs completed",
        clean.jobs_completed.to_string(),
        faulty.jobs_completed.to_string(),
    );
    row(
        "runtime passes",
        clean.runtime_passes.to_string(),
        faulty.runtime_passes.to_string(),
    );
    row(
        "prescriptions applied/def.",
        format!(
            "{}/{}",
            clean.prescriptions_applied, clean.prescriptions_deferred
        ),
        format!(
            "{}/{}",
            faulty.prescriptions_applied, faulty.prescriptions_deferred
        ),
    );
}
