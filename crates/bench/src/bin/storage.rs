//! Storage-backend benchmark — ingest / long-window query / recovery sweep.
//!
//! Runs the identical deterministic workload through the in-memory,
//! persistent and hybrid archive backends over a `SimFs`, prints ONE JSON
//! object to stdout (the `BENCH_storage.json` baseline shape) and exits
//! non-zero if any recovery or content-equality invariant fails.
//!
//! Usage: `storage [rounds] [sensors]` — defaults 200 rounds × 32 sensors.

use oda_bench::storage::{run_storage, StorageBenchConfig};
use serde_json::{json, Value};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = StorageBenchConfig::default();
    if let Some(rounds) = args.next().and_then(|s| s.parse().ok()) {
        cfg.rounds = rounds;
    }
    if let Some(sensors) = args.next().and_then(|s| s.parse().ok()) {
        cfg.sensors = sensors;
    }

    // Warm caches/allocator so the three sweeps see comparable conditions.
    let _ = run_storage(&StorageBenchConfig::smoke());

    let reports = run_storage(&cfg);

    let mut entries: Vec<(String, Value)> = vec![
        ("bench".to_string(), json!("storage")),
        ("sensors".to_string(), json!(cfg.sensors as u64)),
        ("rounds".to_string(), json!(cfg.rounds as u64)),
        (
            "readings_per_batch".to_string(),
            json!(cfg.readings_per_batch as u64),
        ),
        ("readings_total".to_string(), json!(cfg.total())),
        (
            "backends".to_string(),
            Value::Array(reports.iter().map(|r| json!(r.backend)).collect()),
        ),
    ];
    for r in &reports {
        let k = &r.backend;
        entries.push((format!("{k}_ingest_rps"), json!(r.ingest_rps)));
        entries.push((format!("{k}_longwin_p50_ns"), json!(r.longwin_p50_ns)));
        entries.push((format!("{k}_longwin_p99_ns"), json!(r.longwin_p99_ns)));
        entries.push((format!("{k}_durable_len"), json!(r.durable_len)));
        entries.push((
            format!("{k}_recovered_readings"),
            json!(r.recovered_readings),
        ));
        entries.push((format!("{k}_recovered_ok"), json!(r.recovered_ok)));
        if r.durable_len > 0 {
            entries.push((format!("{k}_recovery_ns"), json!(r.recovery_ns)));
        }
    }
    let out = Value::Object(entries);
    println!(
        "{}",
        serde_json::to_string_pretty(&out).expect("report serialises")
    );

    // Structural gate: every backend honoured its recovery contract, the
    // durable backends persisted and recovered the whole workload, and the
    // in-memory backend (by design) recovered nothing.
    let by_name = |n: &str| reports.iter().find(|r| r.backend == n);
    let durable_full = ["persistent", "hybrid"].iter().all(|n| {
        by_name(n)
            .is_some_and(|r| r.durable_len == cfg.total() && r.recovered_readings == cfg.total())
    });
    let healthy = reports.len() == 3
        && reports
            .iter()
            .all(|r| r.recovered_ok && r.accepted_total == cfg.total())
        && durable_full
        && by_name("inmemory").is_some_and(|r| r.recovered_readings == 0);
    if !healthy {
        eprintln!("storage bench FAILED (recovery or content-equality invariant violated)");
        std::process::exit(1);
    }
}
