//! E8 — runs all sixteen reference capabilities on a common simulated
//! trace with labelled faults, and prints what each produced.

use oda_bench::e8_cells;

fn main() {
    println!("E8 — the sixteen cells, executable (4 h small site, 3 injected faults)\n");
    let dc = e8_cells::build_site(4.0, 99);
    println!(
        "site after run: PUE {:.3}, {} jobs completed, {} faults scheduled\n",
        dc.snapshot().pue,
        dc.snapshot().completed,
        dc.fault_schedule().len()
    );
    for result in e8_cells::run_all(&dc) {
        let cells: Vec<String> = result.cells.iter().map(|c| c.to_string()).collect();
        println!("■ {}  [{}]", result.name, cells.join(", "));
        for (label, description) in &result.artifacts {
            println!("    {label:<12} {description}");
        }
        println!();
    }
}
