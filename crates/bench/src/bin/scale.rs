//! Scale bench — worker-pool and collector-shard scaling.
//!
//! Sweeps (a) the capability scheduler's worker count over a wide
//! synthetic registry of collector-bound capabilities and (b) the
//! collector-shard count of the distributed ingest hierarchy over a
//! synthetic sensor space, printing ONE JSON object to stdout (the
//! `BENCH_scale.json` baseline shape). Exits non-zero if any worker
//! count's output diverges from the serial baseline or any shard count's
//! query digest diverges from the single-shard baseline — the speedup
//! floors themselves are gated downstream by `ci/check_bench.py`.
//!
//! Usage: `scale [caps] [passes] [wait_us]` — defaults 48 caps, 7 timed
//! passes, 500 µs simulated collector wait, sweeping workers 1/2/4/8 and
//! shards 1/2/4/8.

use oda_bench::scale::{run_scale, run_shard_sweep, ScaleConfig, ShardSweepConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = ScaleConfig::default();
    if let Some(caps) = args.next().and_then(|s| s.parse().ok()) {
        cfg.caps = caps;
    }
    if let Some(passes) = args.next().and_then(|s| s.parse().ok()) {
        cfg.passes = passes;
    }
    if let Some(wait_us) = args.next().and_then(|s| s.parse().ok()) {
        cfg.collector_wait_us = wait_us;
    }

    let report = run_scale(&cfg);
    let shard_report = run_shard_sweep(&ShardSweepConfig::default());

    let mut out = serde_json::json!({
        "bench": "scale",
        "caps": report.caps,
        "passes": report.passes,
        "collector_wait_us": report.collector_wait_us,
        "host_parallelism": report.host_parallelism,
        "outputs_equal": report.outputs_equal,
        "points": report.points,
        "shard_sensors": shard_report.sensors,
        "shard_ticks": shard_report.ticks,
        "shard_io_wait_us": shard_report.io_wait_us,
        "shard_producers": shard_report.producers,
        "shard_points": shard_report.points,
        "shard_digests_equal": shard_report.digests_equal,
    });
    // Flatten per-count keys for the regression gate's flat lookup.
    if let serde_json::Value::Object(entries) = &mut out {
        for p in &report.points {
            entries.push((
                format!("pass_p50_ns_{}", p.workers),
                serde_json::json!(p.pass_p50_ns),
            ));
            entries.push((
                format!("pass_p99_ns_{}", p.workers),
                serde_json::json!(p.pass_p99_ns),
            ));
            entries.push((
                format!("speedup_x_{}", p.workers),
                serde_json::json!(p.speedup_x),
            ));
        }
        for p in &shard_report.points {
            entries.push((
                format!("shard_rps_{}", p.shards),
                serde_json::json!(p.ingest_rps),
            ));
            entries.push((
                format!("shard_speedup_x_{}", p.shards),
                serde_json::json!(p.speedup_x),
            ));
        }
        entries.push((
            "shard_scaling_x".to_string(),
            serde_json::json!(shard_report.speedup_at(4).unwrap_or(0.0)),
        ));
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&out).expect("report serialises")
    );

    if !report.outputs_equal {
        eprintln!("scale bench FAILED (parallel output diverged from serial baseline)");
        std::process::exit(1);
    }
    if !shard_report.digests_equal {
        eprintln!("scale bench FAILED (sharded query digest diverged from single-shard baseline)");
        std::process::exit(1);
    }
}
