//! Regenerates the paper's Fig. 2: the four types of data analytics as a
//! value/difficulty staircase from hindsight to foresight.

use oda_core::analytics_type::AnalyticsType;

fn main() {
    println!("FIGURE 2 — the four types of data analytics\n");
    // The staircase: each type one step higher in value and difficulty.
    let steps = AnalyticsType::ALL;
    for (i, t) in steps.iter().enumerate().rev() {
        let indent = "        ".repeat(i);
        println!("{indent}┌────────────────────────┐");
        println!("{indent}│ {:<22} │", t.name());
        println!("{indent}│ {:<22} │", t.question());
        println!(
            "{indent}│ {:<22} │",
            if t.is_foresight() {
                "(foresight)"
            } else {
                "(hindsight)"
            }
        );
        println!("{indent}└────────────────────────┘");
    }
    println!("\n   value and difficulty increase → ; no type is 'better' — they answer");
    println!("   different operational questions and are usually implemented in stages.");
    println!("\nStage semantics in this reproduction (executable):");
    println!("  - `StagedPipeline` runs capabilities in exactly this order;");
    println!("  - each stage receives every earlier stage's artifacts;");
    println!("  - a prescriptive stage that finds Forecast artifacts upstream becomes");
    println!("    *proactive* (experiment E5), otherwise it acts *reactively*.");
}
