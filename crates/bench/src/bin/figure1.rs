//! Regenerates the paper's Fig. 1: the four pillars of energy-efficient
//! HPC, with their telemetry domains in this reproduction.

use oda_core::pillar::Pillar;

fn main() {
    println!("FIGURE 1 — the 4 Pillar Framework for energy-efficient HPC data centers\n");
    println!("                 ┌────────────────────────────────────────────┐");
    println!("                 │              HPC data center               │");
    println!("                 ├──────────┬──────────┬──────────┬──────────┤");
    let names: Vec<&str> = vec!["Pillar 1", "Pillar 2", "Pillar 3", "Pillar 4"];
    print!("                 │");
    for n in &names {
        print!(" {n:<8} │");
    }
    println!();
    println!("                 ├──────────┼──────────┼──────────┼──────────┤");
    for p in Pillar::ALL {
        // (column headers printed row-wise below for terminal width)
        let _ = p;
    }
    println!();
    for p in Pillar::ALL {
        println!("■ {}", p.name());
        println!("    {}", p.definition());
        println!(
            "    telemetry domain: /{}/**    control: {}",
            p.telemetry_domain(),
            if p.admin_controlled() {
                "data-center operators"
            } else {
                "partly in users' hands (§IV-D)"
            }
        );
        println!();
    }
    println!(
        "The pillars are the columns of the ODA framework: any data-center-wide\n\
         solution touches them all, and ODA use cases are classified by which\n\
         pillar(s) their data and control parameters live in."
    );
}
