//! Regenerates the paper's Fig. 3: complex ODA systems mapped on the grid.

use oda_core::systems;

fn main() {
    println!("FIGURE 3 — examples of complex ODA systems categorized with the framework\n");
    for system in systems::figure3_systems() {
        println!("{}", system.render());
        let f = system.footprint();
        println!(
            "  → {} cells; pillars: {:?}; types: {:?}; multi-pillar: {}\n",
            f.count(),
            f.pillars().iter().map(|p| p.name()).collect::<Vec<_>>(),
            f.types().iter().map(|t| t.name()).collect::<Vec<_>>(),
            f.is_multi_pillar()
        );
    }
    // Pairwise similarity — the comparison operation §I motivates.
    let systems = systems::figure3_systems();
    println!("Pairwise footprint similarity (Jaccard):");
    for i in 0..systems.len() {
        for j in i + 1..systems.len() {
            println!(
                "  {} vs {}: {:.2}",
                systems[i].name,
                systems[j].name,
                systems[i].footprint().jaccard(systems[j].footprint())
            );
        }
    }
}
