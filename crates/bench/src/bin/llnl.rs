//! E7 — §V-C: Fourier forecasting of utility-notification power swings.

use oda_bench::control::write_json_report;
use oda_bench::e7_llnl::run_experiment;

fn main() {
    println!("E7 — LLNL power-fluctuation forecasting (§V-C)\n");
    let r = run_experiment(8.0, 6);
    let mean = r.trace_kw.iter().sum::<f64>() / r.trace_kw.len() as f64;
    println!(
        "trace: {} × 15-min samples ({} days), mean {:.1} kW",
        r.trace_kw.len(),
        r.trace_kw.len() / 96,
        mean
    );
    println!(
        "rule: notify on swings > {:.2} kW within 30 min (scaled analogue of 750 kW / 15 min)",
        r.threshold_kw
    );
    println!(
        "fit on first {} samples; evaluated on the remaining {}",
        r.split,
        r.trace_kw.len() - r.split
    );
    println!(
        "\nactual notification events in evaluation region: {}",
        r.actual_events.len()
    );
    println!(
        "predicted events:                              {}",
        r.predicted_events.len()
    );
    println!("recall    (events anticipated): {:.2}", r.recall);
    println!("precision (predictions correct): {:.2}", r.precision);
    println!("\nEvent offsets (15-min buckets into the evaluation region):");
    println!(
        "  actual:    {:?}",
        &r.actual_events[..r.actual_events.len().min(24)]
    );
    println!(
        "  predicted: {:?}",
        &r.predicted_events[..r.predicted_events.len().min(24)]
    );
    println!("\nExpected shape (paper §V-C): the periodic spike patterns Fourier");
    println!("analysis finds make the majority of notification events forecastable.");
    let summary = serde_json::json!({
        "threshold_kw": r.threshold_kw,
        "recall": r.recall,
        "precision": r.precision,
        "actual_events": r.actual_events,
        "predicted_events": r.predicted_events,
    });
    if let Some(path) = write_json_report("e7_llnl", &summary) {
        println!("(report written to {})", path.display());
    }
}
