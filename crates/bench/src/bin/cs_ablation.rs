//! E9 — prints the correlation-wise-smoothing vs raw-features ablation
//! table across training-set sizes.

use oda_bench::e9_cs_ablation::run_ablation;

fn main() {
    println!("E9 — CS descriptors vs raw sensor vectors (node-state classification)\n");
    println!("64 sensors (24 informative in 3 correlated families, 40 noise channels);");
    println!("nearest-centroid classifier; accuracy over 8 seeds × 120 held-out states\n");
    println!(
        "{:<18} {:>12} {:>12} {:>16}",
        "labels per class", "CS accuracy", "raw accuracy", "feature lengths"
    );
    println!("{}", "-".repeat(62));
    for train in [2usize, 3, 4, 6, 10, 16] {
        let mut cs_t = 0.0;
        let mut raw_t = 0.0;
        let mut lens = (0, 0);
        let seeds = 8u64;
        for seed in 1..=seeds {
            let (cs, raw) = run_ablation(train, 40, seed);
            cs_t += cs.accuracy;
            raw_t += raw.accuracy;
            lens = (cs.feature_len, raw.feature_len);
        }
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>10} vs {:>3}",
            train,
            cs_t / seeds as f64,
            raw_t / seeds as f64,
            lens.0,
            lens.1
        );
    }
    println!("\nReading: with scarce labels the 15-value CS descriptor matches the");
    println!("64-value raw vector (the CS paper's lightweight-extraction claim);");
    println!("with ample labels, raw overtakes — compression discards information.");
}
