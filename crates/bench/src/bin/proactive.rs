//! E5 — §V-A: reactive vs proactive DVFS control on identical workloads.

use oda_bench::control::{metrics_header, metrics_row, write_json_report};
use oda_bench::e5_proactive::{run_experiment, Regime};

fn main() {
    let hours = 12.0;
    let seeds = [42u64, 43, 44];
    println!("E5 — reactive vs proactive control (§V-A), {hours} h per run\n");
    println!("{}", metrics_header());
    println!("{}", "-".repeat(100));
    let mut totals: Vec<(Regime, f64, f64)> = Regime::ALL.iter().map(|&r| (r, 0.0, 0.0)).collect();
    let mut report = Vec::new();
    for seed in seeds {
        for (regime, m) in run_experiment(hours, seed) {
            println!(
                "{}",
                metrics_row(&format!("{} (s{seed})", regime.label()), &m)
            );
            let t = totals.iter_mut().find(|(r, _, _)| *r == regime).unwrap();
            t.1 += m.it_energy_kwh;
            t.2 += m.work_done_node_s;
            report.push((regime.label(), seed, m));
        }
        println!();
    }
    if let Some(path) = write_json_report("e5_proactive", &report) {
        println!("(report written to {})\n", path.display());
    }
    println!("Aggregate over {} seeds:", seeds.len());
    let base = totals[0];
    for (regime, e, w) in &totals {
        println!(
            "  {:<16} IT energy {:>8.2} kWh ({:+.1}% vs static), work {:>12.0} node·s ({:+.1}%)",
            regime.label(),
            e,
            (e / base.1 - 1.0) * 100.0,
            w,
            (w / base.2 - 1.0) * 100.0
        );
    }
    println!("\nExpected shape (paper §V-A): governed < static on energy; proactive");
    println!("recovers throughput the reactive governor loses at phase transitions.");
}
