//! Ingest soak — telemetry-path throughput and observability overhead.
//!
//! Runs the publish→archive→query soak twice on identical workloads: once
//! recording into a live `MetricsRegistry`, once against the disabled
//! recorder. Prints ONE JSON object to stdout (the `BENCH_ingest.json`
//! baseline shape) and exits non-zero if any sanity invariant fails.
//!
//! Usage: `ingest [rounds] [sensors]` — defaults 400 rounds × 64 sensors.

use oda_bench::ingest::{run_ingest, IngestConfig};
use oda_telemetry::metrics::MetricsRegistry;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = IngestConfig::default();
    if let Some(rounds) = args.next().and_then(|s| s.parse().ok()) {
        cfg.rounds = rounds;
    }
    if let Some(sensors) = args.next().and_then(|s| s.parse().ok()) {
        cfg.sensors = sensors;
    }

    // Warm caches/allocator so the paired runs see comparable conditions.
    let _ = run_ingest(&IngestConfig::smoke(), MetricsRegistry::disabled());

    let (noop, _) = run_ingest(&cfg, MetricsRegistry::disabled());
    let (instr, snapshot) = run_ingest(&cfg, MetricsRegistry::new());

    // Overhead of live instruments, % of the no-op publish wall time.
    let overhead_pct = (instr.publish_wall_ns as f64 - noop.publish_wall_ns as f64)
        / noop.publish_wall_ns.max(1) as f64
        * 100.0;
    let publish_ns = snapshot.histogram("bus_publish_ns");

    let out = serde_json::json!({
        "bench": "ingest",
        "sensors": cfg.sensors,
        "rounds": cfg.rounds,
        "readings_per_batch": cfg.readings_per_batch,
        "readings_total": instr.readings_total,
        "throughput_rps": instr.throughput_rps,
        "throughput_rps_noop": noop.throughput_rps,
        "metrics_overhead_pct": overhead_pct,
        "query_p50_ns": instr.query_p50_ns,
        "query_p99_ns": instr.query_p99_ns,
        "publish_p50_ns": publish_ns.map(|h| h.p50).unwrap_or(0),
        "publish_p99_ns": publish_ns.map(|h| h.p99).unwrap_or(0),
        "delivered_total": instr.delivered_total,
        "shed_total": instr.shed_total,
        "instruments": snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len(),
        "longwin_queries_run": instr.longwin.queries_run,
        "longwin_tiered_p50_ns": instr.longwin.tiered_p50_ns,
        "longwin_tiered_p99_ns": instr.longwin.tiered_p99_ns,
        "longwin_raw_p50_ns": instr.longwin.raw_p50_ns,
        "longwin_raw_p99_ns": instr.longwin.raw_p99_ns,
        "longwin_tier_hits": instr.longwin.tier_hits,
        "longwin_readings_avoided": instr.longwin.readings_avoided,
        "longwin_tiered_readings_scanned": instr.longwin.tiered_readings_scanned,
        "longwin_raw_readings_scanned": instr.longwin.raw_readings_scanned,
        "longwin_scan_reduction_x": instr.longwin.scan_reduction_x,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&out).expect("report serialises")
    );

    let healthy = instr.throughput_rps > 0.0
        && noop.throughput_rps > 0.0
        && instr.readings_total == noop.readings_total
        && instr.shed_total == 0
        && snapshot.counter("bus_readings_total") == Some(instr.readings_total)
        // Tier savings: the planner must serve the long-window fleet
        // aggregate from rollups, touching >=5x fewer raw readings than the
        // forced raw rescan (result equality is asserted inside the soak).
        && instr.longwin.tier_hits > 0
        && instr.longwin.scan_reduction_x >= 5.0;
    if !healthy {
        eprintln!("ingest soak FAILED (throughput, accounting or tier-savings invariant violated)");
        std::process::exit(1);
    }
}
