//! E6 — §V-B: single-pillar vs multi-pillar ODA on identical workloads.

use oda_bench::control::{metrics_header, metrics_row, write_json_report};
use oda_bench::e6_multipillar::{run_experiment, Config};

fn main() {
    let hours = 16.0;
    let seeds = [11u64, 12, 13];
    println!("E6 — single-pillar vs multi-pillar ODA (§V-B), {hours} h per run\n");
    println!("{}", metrics_header());
    println!("{}", "-".repeat(100));
    let mut totals: Vec<(Config, f64)> = Config::ALL.iter().map(|&c| (c, 0.0)).collect();
    let mut report = Vec::new();
    for seed in seeds {
        for (config, m) in run_experiment(hours, seed) {
            println!(
                "{}",
                metrics_row(&format!("{} (s{seed})", config.label()), &m)
            );
            totals.iter_mut().find(|(c, _)| *c == config).unwrap().1 += m.utility_energy_kwh;
            report.push((config.label(), seed, m));
        }
        println!();
    }
    if let Some(path) = write_json_report("e6_multipillar", &report) {
        println!("(report written to {})\n", path.display());
    }
    let base = totals[0].1;
    println!("Aggregate utility energy over {} seeds:", seeds.len());
    for (config, e) in &totals {
        println!(
            "  {:<16} {:>10.2} kWh  ({:+.2}% vs siloed)",
            config.label(),
            e,
            (e / base - 1.0) * 100.0
        );
    }
    println!("\nExpected shape (paper §V-B): crossing the infrastructure pillar's");
    println!("boundary (cooling-aware placement) adds savings a siloed system cannot reach.");
}
