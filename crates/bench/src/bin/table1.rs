//! Regenerates the paper's Table I from the encoded survey corpus, plus
//! the corpus statistics discussed in §V.

use oda_core::analytics_type::AnalyticsType;
use oda_core::pillar::Pillar;
use oda_core::survey;

fn main() {
    println!("TABLE I — ODA examples categorized using the framework\n");
    println!("{}", survey::render_table1());

    println!("Per-cell entry counts (density):\n");
    let counts = survey::cell_counts();
    print!("{:<14}", "");
    for p in Pillar::ALL {
        print!("{:<26}", p.name());
    }
    println!();
    for a in AnalyticsType::ALL.into_iter().rev() {
        print!("{:<14}", a.name());
        for p in Pillar::ALL {
            print!("{:<26}", counts.get(oda_core::grid::GridCell::new(a, p)));
        }
        println!();
    }

    let stats = survey::pillar_stats();
    println!(
        "\nCorpus: {} distinct cited works — {} single-pillar, {} multi-pillar, {} multi-type",
        stats.total, stats.single_pillar, stats.multi_pillar, stats.multi_type
    );
    println!(
        "(§V-B: \"most use cases are single-pillar ones\" — {}/{} here)",
        stats.single_pillar, stats.total
    );

    println!("\nExample similarity queries (Jaccard over grid footprints):");
    for (a, b, note) in [
        (21u16, 22u16, "both power-aware scheduling"),
        (21, 23, "[23] also predicts workloads"),
        (12, 18, "cooling control works"),
        (4, 63, "PUE vs roofline (different pillars)"),
    ] {
        if let Some(s) = survey::citation_similarity(a, b) {
            println!("  [{a}] vs [{b}]: {s:.2}  ({note})");
        }
    }
}
