//! Serving-layer benchmark — multi-tenant query traffic + subscription
//! fan-out over the full HTTP stack on a simulated network.
//!
//! Prints ONE JSON object to stdout (the `BENCH_serving.json` baseline
//! shape) and exits non-zero if the cache bit-equality or admission
//! reconciliation invariants fail.
//!
//! Usage: `serving [requests] [subscribers]` — defaults 1500 × 2000.

use oda_bench::serving::{run_serving, ServingBenchConfig};
use serde_json::{json, Value};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = ServingBenchConfig::default();
    if let Some(requests) = args.next().and_then(|s| s.parse().ok()) {
        cfg.requests = requests;
    }
    if let Some(subscribers) = args.next().and_then(|s| s.parse().ok()) {
        cfg.subscribers = subscribers;
    }

    // Warm caches/allocator so the measured run sees steady conditions.
    let _ = run_serving(&ServingBenchConfig::smoke());

    let r = run_serving(&cfg);

    let out = Value::Object(vec![
        ("bench".to_string(), json!("serving")),
        ("requests_total".to_string(), json!(r.requests_total)),
        ("responses_200".to_string(), json!(r.responses_200)),
        ("responses_shed".to_string(), json!(r.responses_shed)),
        ("throughput_rps".to_string(), json!(r.throughput_rps)),
        ("query_p50_ns".to_string(), json!(r.query_p50_ns)),
        ("query_p99_ns".to_string(), json!(r.query_p99_ns)),
        ("cache_hit_rate".to_string(), json!(r.cache_hit_rate)),
        ("cache_invalidated".to_string(), json!(r.cache_invalidated)),
        ("shed_rate".to_string(), json!(r.shed_rate)),
        ("sheds_reconcile".to_string(), json!(r.sheds_reconcile)),
        ("cache_equal".to_string(), json!(r.cache_equal)),
        ("verified_hits".to_string(), json!(r.verified_hits)),
        ("subscribers".to_string(), json!(r.subscribers)),
        ("frames_delivered".to_string(), json!(r.frames_delivered)),
        ("frames_shed".to_string(), json!(r.frames_shed)),
        ("fanout_wall_ns".to_string(), json!(r.fanout_wall_ns)),
    ]);
    println!(
        "{}",
        serde_json::to_string_pretty(&out).expect("report serialises")
    );

    if !r.cache_equal {
        eprintln!("FAIL: a cached result differed from uncached re-execution");
        std::process::exit(1);
    }
    if !r.sheds_reconcile {
        eprintln!("FAIL: admission counters do not reconcile");
        std::process::exit(1);
    }
}
