//! E7 — §V-C: the LLNL power-fluctuation forecasting case.
//!
//! LLNL must notify its utility whenever site power moves by more than
//! 750 kW within a 15-minute window; Fourier analysis of historical power
//! data revealed periodic spike patterns that make those events
//! forecastable (Abdulla et al., 2018).
//!
//! The reproduction builds a site power trace with the same structure —
//! diurnal base load from the simulated site plus periodic operational
//! spikes (scheduled maintenance/backup loads) — fits the spectral
//! forecaster on the first part, extrapolates over the rest, and scores
//! predicted notification events against the events in the actual trace.
//! Thresholds are scaled to the simulated site: the paper's 750 kW on a
//! ~45 MW site is ~1.7% of load; we use a swing threshold at a comparable
//! fraction of the simulated site's mean power.

use oda_analytics::predictive::fft::predicted_swings;
use oda_analytics::predictive::harmonic::HarmonicModel;
use oda_sim::prelude::*;

/// Result of the forecasting experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LlnlResult {
    /// 15-minute mean power samples of the whole trace, kW.
    pub trace_kw: Vec<f64>,
    /// Index where the evaluation (forecast) region starts.
    pub split: usize,
    /// Swing threshold used, kW.
    pub threshold_kw: f64,
    /// Actual notification events in the evaluation region (bucket
    /// offsets).
    pub actual_events: Vec<usize>,
    /// Predicted events (bucket offsets into the evaluation region).
    pub predicted_events: Vec<usize>,
    /// Fraction of actual events with a prediction within ±2 buckets.
    pub recall: f64,
    /// Fraction of predictions matching an actual event within ±2 buckets.
    pub precision: f64,
}

/// Builds a site power trace: `days` of 15-minute samples from a simulated
/// site plus deterministic periodic spike loads.
pub fn build_trace(days: f64, seed: u64) -> Vec<f64> {
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(seed)
        .build();
    let bucket_s = 900u64;
    let buckets = (days * 24.0 * 3_600.0 / bucket_s as f64) as usize;
    let mut raw = Vec::with_capacity(buckets);
    let ticks_per_bucket = bucket_s * 1_000 / dc.config().tick_ms;
    for _ in 0..buckets {
        let mut acc = 0.0;
        for _ in 0..ticks_per_bucket {
            dc.step();
            acc += dc.snapshot().total_power_kw;
        }
        raw.push(acc / ticks_per_bucket as f64);
    }
    // The simulated site is tiny (32 nodes), so individual job starts swing
    // its power by tens of percent — noise a 45 MW site like LLNL's never
    // sees at that relative scale. Model the large-site aggregate with a
    // centred moving average (the diurnal shape survives; single-job
    // transients vanish), then superimpose the deterministic periodic
    // operational loads whose patterns the LLNL analysis discovered:
    // a nightly backup window (02:00–02:45) and a 6-hourly scrub pulse.
    let half = 4usize;
    (0..buckets)
        .map(|b| {
            let lo = b.saturating_sub(half);
            let hi = (b + half + 1).min(buckets);
            let base = raw[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            let hour_of_day = (b as f64 * 0.25) % 24.0;
            let mut spike = 0.0;
            if (2.0..2.75).contains(&hour_of_day) {
                spike += base * 0.5;
            }
            if (b % 24) < 2 {
                spike += base * 0.2;
            }
            base + spike
        })
        .collect()
}

/// Actual notification events: buckets where power moves by more than
/// `threshold` within `window` buckets.
pub fn actual_swings(trace: &[f64], threshold: f64, window: usize) -> Vec<usize> {
    predicted_swings(trace, threshold, window)
}

/// Runs the experiment: fit on `1 - eval_fraction` of the trace, forecast
/// and score on the rest.
pub fn run_experiment(days: f64, seed: u64) -> LlnlResult {
    let trace = build_trace(days, seed);
    let split = (trace.len() as f64 * 0.7) as usize;
    let (history, future) = trace.split_at(split);
    // Threshold: 12% of mean power within two 15-min buckets — the scaled
    // analogue of LLNL's 750 kW / 15 min rule (~1.7% of a 45 MW site; our
    // spikes are proportionally larger, so the threshold sits between the
    // diurnal drift and the spike amplitudes).
    let mean_kw = trace.iter().sum::<f64>() / trace.len() as f64;
    let threshold_kw = mean_kw * 0.12;
    let swing_window = 2;

    // Fourier fit at the known daily fundamental (96 × 15-min samples):
    // enough harmonics to resolve the 45-minute backup pulse. A pure
    // power-of-two FFT window cannot hold an integer number of days, so
    // harmonic least squares is the correct Fourier tool here.
    let forecaster = HarmonicModel::fit(history, 96.0, 40).expect("enough history");
    let forecast = forecaster.forecast(future.len());
    let predicted = predicted_swings(&forecast, threshold_kw, swing_window);
    let actual = actual_swings(future, threshold_kw, swing_window);

    let tolerance = 2usize;
    let matched_actual = actual
        .iter()
        .filter(|&&a| predicted.iter().any(|&p| p.abs_diff(a) <= tolerance))
        .count();
    let matched_pred = predicted
        .iter()
        .filter(|&&p| actual.iter().any(|&a| p.abs_diff(a) <= tolerance))
        .count();
    LlnlResult {
        recall: if actual.is_empty() {
            1.0
        } else {
            matched_actual as f64 / actual.len() as f64
        },
        precision: if predicted.is_empty() {
            0.0
        } else {
            matched_pred as f64 / predicted.len() as f64
        },
        trace_kw: trace,
        split,
        threshold_kw,
        actual_events: actual,
        predicted_events: predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_periodic_spikes() {
        let trace = build_trace(3.0, 5);
        assert_eq!(trace.len(), 288);
        // The 02:00 backup bucket is visibly above its neighbours.
        let backup = trace[8]; // 02:00 on day 1
        let before = trace[6];
        assert!(backup > before * 1.2, "backup {backup} vs {before}");
    }

    #[test]
    fn forecaster_predicts_most_notification_events() {
        let r = run_experiment(8.0, 6);
        assert!(
            !r.actual_events.is_empty(),
            "the trace must contain notification events"
        );
        assert!(
            r.recall >= 0.6,
            "recall {:.2} with {} actual / {} predicted events",
            r.recall,
            r.actual_events.len(),
            r.predicted_events.len()
        );
        assert!(
            r.precision >= 0.5,
            "precision {:.2} ({} predictions)",
            r.precision,
            r.predicted_events.len()
        );
    }
}
