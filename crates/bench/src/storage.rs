//! Storage-backend benchmark — ingest, long-window query, cold-start recovery.
//!
//! Drives the identical deterministic workload through each of the three
//! archive backends ([`BackendKind::InMemory`], [`BackendKind::Persistent`],
//! [`BackendKind::Hybrid`]) over a [`SimFs`] and measures, per backend:
//!
//! * **ingest throughput** — readings/s sustained through
//!   [`StorageBackend::insert_batch`] (hot-store append plus, for the
//!   durable backends, WAL logging and segment sealing),
//! * **long-window query latency** p50/p99 — whole-history range queries
//!   through the trait's [`StorageBackend::range`], so each backend answers
//!   via its own routing policy (ring scan, durable-file decode, or hybrid),
//! * **cold-start recovery** — the backend is dropped and reopened over the
//!   same filesystem; the reopen wall time is the recovery cost, and the
//!   recovered archive's content digest must equal the pre-restart digest
//!   bit-for-bit (the in-memory backend instead proves it recovered
//!   *nothing*, which is its documented contract).
//!
//! The workload shape is fully deterministic, so digests and counts
//! reproduce exactly; only wall-clock figures vary run to run. CI pins the
//! binary's JSON as `BENCH_storage.json` and gates it with
//! `ci/check_bench.py`.

use oda_telemetry::reading::{Reading, Timestamp};
use oda_telemetry::sensor::SensorId;
use oda_telemetry::storage::codec::fnv1a64;
use oda_telemetry::storage::{
    open_backend, BackendKind, SimFs, StorageBackend, StorageConfig, StorageFs,
};
use oda_telemetry::store::TimeSeriesStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Storage benchmark parameters. The per-sensor ring capacity is always
/// sized to hold the whole workload so all three backends retain identical
/// content and their digests are directly comparable.
#[derive(Debug, Clone)]
pub struct StorageBenchConfig {
    /// Number of synthetic sensors.
    pub sensors: usize,
    /// Ingest rounds; each round appends one batch per sensor.
    pub rounds: usize,
    /// Readings per batch.
    pub readings_per_batch: usize,
    /// Whole-history queries in the read-back phase.
    pub queries: usize,
}

impl Default for StorageBenchConfig {
    fn default() -> Self {
        StorageBenchConfig {
            sensors: 32,
            rounds: 200,
            readings_per_batch: 8,
            queries: 64,
        }
    }
}

impl StorageBenchConfig {
    /// A smaller workload for unit tests.
    pub fn smoke() -> Self {
        StorageBenchConfig {
            sensors: 4,
            rounds: 12,
            readings_per_batch: 4,
            queries: 8,
        }
    }

    /// Readings each sensor receives (also the ring capacity used).
    pub fn per_sensor(&self) -> usize {
        self.rounds * self.readings_per_batch
    }

    /// Total readings pushed through one backend.
    pub fn total(&self) -> u64 {
        (self.sensors * self.per_sensor()) as u64
    }
}

/// One backend's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct BackendReport {
    /// Stable backend name (`inmemory` / `persistent` / `hybrid`).
    pub backend: String,
    /// Readings offered to the backend.
    pub readings_total: u64,
    /// Readings the hot store accepted (equals offered for this workload).
    pub accepted_total: u64,
    /// Wall time of the ingest phase, nanoseconds.
    pub ingest_wall_ns: u64,
    /// Sustained ingest rate, readings per second.
    pub ingest_rps: f64,
    /// Whole-history queries executed.
    pub longwin_queries: u64,
    /// Median whole-history query latency, nanoseconds.
    pub longwin_p50_ns: u64,
    /// 99th-percentile whole-history query latency, nanoseconds.
    pub longwin_p99_ns: u64,
    /// Readings durably stored after the final flush (0 for in-memory).
    pub durable_len: u64,
    /// FNV-1a digest of the full archive content before the restart.
    pub digest: u64,
    /// Wall time to reopen the backend over the same filesystem, ns.
    pub recovery_ns: u64,
    /// Readings the reopen recovered from WAL + segments.
    pub recovered_readings: u64,
    /// Durable backends: post-restart digest equals pre-restart digest.
    /// In-memory: the reopen recovered nothing, as documented.
    pub recovered_ok: bool,
}

/// Exact percentile over an already-sorted latency list.
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx]
}

fn wall_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// FNV-1a digest over every reading the backend serves for the full window,
/// sensor-major in id order, so two archives digest equal iff their visible
/// content is bit-identical.
fn archive_digest(backend: &dyn StorageBackend, sensors: usize) -> u64 {
    let mut bytes = Vec::new();
    for s in 0..sensors {
        let id = SensorId(s as u32);
        bytes.extend_from_slice(&id.0.to_le_bytes());
        for r in backend.range(id, Timestamp::ZERO, Timestamp::MAX) {
            bytes.extend_from_slice(&r.ts.0.to_le_bytes());
            bytes.extend_from_slice(&r.value.to_bits().to_le_bytes());
        }
    }
    fnv1a64(&bytes)
}

fn open_kind(kind: BackendKind, fs: &Arc<SimFs>, capacity: usize) -> Arc<dyn StorageBackend> {
    let cfg = StorageConfig {
        backend: kind,
        ..StorageConfig::default()
    };
    let store = Arc::new(TimeSeriesStore::with_capacity(capacity));
    open_backend(&cfg, Arc::clone(fs) as Arc<dyn StorageFs>, store)
        .expect("bench backend must open over a fresh SimFs")
}

/// Runs the full ingest → query → restart cycle for one backend kind.
pub fn run_backend(kind: BackendKind, cfg: &StorageBenchConfig) -> BackendReport {
    let fs = Arc::new(SimFs::new());
    let capacity = cfg.per_sensor();
    let backend = open_kind(kind, &fs, capacity);

    // Ingest: deterministic monotone timestamps, dyadic values.
    let mut accepted_total = 0u64;
    let ingest_start = Instant::now();
    for round in 0..cfg.rounds {
        for s in 0..cfg.sensors {
            let readings: Vec<Reading> = (0..cfg.readings_per_batch)
                .map(|k| {
                    let seq = (round * cfg.readings_per_batch + k) as u64;
                    let value = (s as u64 * 100_000 + seq) as f64 * 0.5;
                    Reading::new(Timestamp::from_millis(seq * 1_000), value)
                })
                .collect();
            accepted_total += backend.insert_batch(SensorId(s as u32), &readings) as u64;
        }
    }
    backend.flush().expect("SimFs flush cannot fail");
    let ingest_wall_ns = wall_ns(ingest_start);

    // Long-window read-back through the trait, so every backend answers via
    // its own routing policy.
    let per_sensor = cfg.per_sensor();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(cfg.queries);
    for qi in 0..cfg.queries {
        let id = SensorId((qi % cfg.sensors) as u32);
        let t = Instant::now();
        let got = backend.range(id, Timestamp::ZERO, Timestamp::MAX);
        latencies_ns.push(wall_ns(t));
        assert_eq!(
            got.len(),
            per_sensor,
            "every backend serves the full history"
        );
    }
    latencies_ns.sort_unstable();

    let digest = archive_digest(backend.as_ref(), cfg.sensors);
    let durable_len = backend.durable_len();
    drop(backend);

    // Cold start: reopen over the same filesystem with a fresh hot store and
    // check what came back.
    let recovery_start = Instant::now();
    let reopened = open_kind(kind, &fs, capacity);
    let recovery_ns = wall_ns(recovery_start);
    let recovered_readings = reopened.recovery().map_or(0, |r| r.readings_recovered);
    let recovered_ok = match kind {
        BackendKind::InMemory => {
            recovered_readings == 0 && archive_digest(reopened.as_ref(), cfg.sensors) != digest
        }
        _ => archive_digest(reopened.as_ref(), cfg.sensors) == digest,
    };

    let elapsed_s = (ingest_wall_ns as f64 / 1e9).max(1e-9);
    BackendReport {
        backend: kind.as_str().to_string(),
        readings_total: cfg.total(),
        accepted_total,
        ingest_wall_ns,
        ingest_rps: accepted_total as f64 / elapsed_s,
        longwin_queries: latencies_ns.len() as u64,
        longwin_p50_ns: percentile(&latencies_ns, 0.50),
        longwin_p99_ns: percentile(&latencies_ns, 0.99),
        durable_len,
        digest,
        recovery_ns,
        recovered_readings,
        recovered_ok,
    }
}

/// Runs every backend on the identical workload and asserts the pre-restart
/// archive digests agree bit-for-bit across all three.
pub fn run_storage(cfg: &StorageBenchConfig) -> Vec<BackendReport> {
    let reports: Vec<BackendReport> = [
        BackendKind::InMemory,
        BackendKind::Persistent,
        BackendKind::Hybrid,
    ]
    .into_iter()
    .map(|kind| run_backend(kind, cfg))
    .collect();
    for r in &reports[1..] {
        assert_eq!(
            r.digest, reports[0].digest,
            "backend {} must serve the identical archive content",
            r.backend
        );
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_serve_identical_content_and_recover() {
        let cfg = StorageBenchConfig::smoke();
        let reports = run_storage(&cfg);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.accepted_total, cfg.total());
            assert!(r.ingest_rps > 0.0);
            assert_eq!(r.longwin_queries, cfg.queries as u64);
            assert!(r.longwin_p50_ns <= r.longwin_p99_ns);
            assert!(r.recovered_ok, "{} failed its recovery contract", r.backend);
        }
        let by_name = |n: &str| reports.iter().find(|r| r.backend == n).unwrap();
        assert_eq!(by_name("inmemory").durable_len, 0);
        assert_eq!(by_name("inmemory").recovered_readings, 0);
        for n in ["persistent", "hybrid"] {
            assert_eq!(by_name(n).durable_len, cfg.total());
            assert_eq!(by_name(n).recovered_readings, cfg.total());
        }
    }

    #[test]
    fn same_config_reproduces_digests_and_counts() {
        let cfg = StorageBenchConfig::smoke();
        let a = run_storage(&cfg);
        let b = run_storage(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest, y.digest);
            assert_eq!(x.durable_len, y.durable_len);
            assert_eq!(x.recovered_readings, y.recovered_readings);
        }
    }
}
