//! Control-loop plumbing shared by the experiments.
//!
//! Experiments drive the simulated site with a periodic controller — the
//! software equivalent of a management daemon that wakes every N seconds,
//! reads telemetry, and turns knobs. Keeping this loop in one place keeps
//! each experiment to its policy logic.

use oda_sim::prelude::*;

/// Runs `dc` for `hours`, invoking `controller` every `control_every_s`
/// simulated seconds (after the plant has stepped).
pub fn run_with_controller(
    dc: &mut DataCenter,
    hours: f64,
    control_every_s: u64,
    mut controller: impl FnMut(&mut DataCenter),
) {
    let tick_ms = dc.config().tick_ms;
    let total_ticks = (hours * 3_600_000.0 / tick_ms as f64).ceil() as u64;
    let control_every_ticks = (control_every_s * 1_000 / tick_ms).max(1);
    for t in 0..total_ticks {
        dc.step();
        if (t + 1) % control_every_ticks == 0 {
            controller(dc);
        }
    }
}

/// End-of-run metrics every experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct RunMetrics {
    /// IT energy over the run, kWh.
    pub it_energy_kwh: f64,
    /// Utility (total facility) energy, kWh.
    pub utility_energy_kwh: f64,
    /// Energy-weighted PUE over the run.
    pub pue: f64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs killed at walltime.
    pub killed: u64,
    /// Mean bounded slowdown of finished jobs.
    pub mean_slowdown: f64,
    /// Total node-seconds of work finished (throughput measure robust to
    /// job-size mix).
    pub work_done_node_s: f64,
    /// Utility energy per unit of completed work, kWh per 1000 node-s.
    pub energy_per_kilonode_s: f64,
}

/// Extracts metrics from a finished run.
pub fn metrics(dc: &DataCenter) -> RunMetrics {
    let snap = dc.snapshot();
    let stats = dc.scheduler().stats();
    let finished = stats.completed + stats.killed;
    let mean_slowdown = if finished > 0 {
        stats.total_bounded_slowdown / finished as f64
    } else {
        0.0
    };
    let work_done: f64 = dc
        .finished_jobs()
        .iter()
        .map(|r| {
            // Completed jobs did all their work; killed jobs are credited
            // nothing (their partial work is wasted — the realistic
            // accounting).
            if r.state == JobState::Completed {
                r.work_node_seconds
            } else {
                0.0
            }
        })
        .sum();
    RunMetrics {
        it_energy_kwh: snap.it_energy_kwh,
        utility_energy_kwh: snap.utility_energy_kwh,
        pue: if snap.it_energy_kwh > 1e-9 {
            snap.utility_energy_kwh / snap.it_energy_kwh
        } else {
            1.0
        },
        completed: stats.completed,
        killed: stats.killed,
        mean_slowdown,
        work_done_node_s: work_done,
        energy_per_kilonode_s: if work_done > 1.0 {
            snap.utility_energy_kwh / (work_done / 1_000.0)
        } else {
            f64::INFINITY
        },
    }
}

/// Formats a metrics row for the experiment tables.
pub fn metrics_row(label: &str, m: &RunMetrics) -> String {
    format!(
        "{label:<22} {:>10.2} {:>12.2} {:>6.3} {:>7} {:>6} {:>9.2} {:>12.0} {:>10.3}",
        m.it_energy_kwh,
        m.utility_energy_kwh,
        m.pue,
        m.completed,
        m.killed,
        m.mean_slowdown,
        m.work_done_node_s,
        m.energy_per_kilonode_s
    )
}

/// Writes a machine-readable experiment report to
/// `experiments_out/<name>.json` (creating the directory), so experiment
/// results can be consumed by plotting/regression tooling without parsing
/// stdout. Returns the path written, or `None` if the filesystem refused
/// (experiments still print their human-readable tables either way).
pub fn write_json_report<T: serde::Serialize>(
    name: &str,
    payload: &T,
) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("experiments_out");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(payload).ok()?;
    std::fs::write(&path, json).ok()?;
    Some(path)
}

/// Header matching [`metrics_row`].
pub fn metrics_header() -> String {
    format!(
        "{:<22} {:>10} {:>12} {:>6} {:>7} {:>6} {:>9} {:>12} {:>10}",
        "configuration",
        "IT kWh",
        "utility kWh",
        "PUE",
        "done",
        "killed",
        "slowdown",
        "work n·s",
        "kWh/kn·s"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_fires_at_the_requested_cadence() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(1)
            .build();
        let mut fires = 0u32;
        run_with_controller(&mut dc, 0.5, 60, |_| fires += 1);
        // 30 minutes at one fire per minute.
        assert_eq!(fires, 30);
    }

    #[test]
    fn metrics_are_consistent() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(2)
            .build();
        dc.run_for_hours(4.0);
        let m = metrics(&dc);
        assert!(m.utility_energy_kwh > m.it_energy_kwh);
        assert!(m.pue > 1.0);
        assert!(m.completed > 0);
        assert!(m.work_done_node_s > 0.0);
        assert!(m.energy_per_kilonode_s.is_finite());
        assert!(m.mean_slowdown >= 1.0);
    }

    #[test]
    fn rows_render_all_metrics() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(3)
            .build();
        dc.run_for_hours(0.2);
        let m = metrics(&dc);
        let r = metrics_row("cfg-x", &m);
        assert!(r.starts_with("cfg-x"));
        // Label + 8 numeric fields.
        assert_eq!(r.split_whitespace().count(), 9);
        assert!(!metrics_header().is_empty());
    }
}
