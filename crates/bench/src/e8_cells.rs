//! E8 — the sixteen-cell demonstration: every reference capability runs on
//! one common trace, with labelled faults injected so the diagnostic cells
//! have something real to find.

use oda_core::capability::{Artifact, Capability, CapabilityContext};
use oda_core::cells;
use oda_core::grid::GridCell;
use oda_sim::prelude::*;
use oda_telemetry::query::TimeRange;
use oda_telemetry::reading::Timestamp;
use std::sync::Arc;

/// Result of one cell's run.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Capability name.
    pub name: String,
    /// Cells it covers.
    pub cells: Vec<GridCell>,
    /// Artifacts produced, as `(label, short description)`.
    pub artifacts: Vec<(String, String)>,
}

fn short(a: &Artifact) -> String {
    match a {
        Artifact::Report { title, body } => {
            format!("{title} ({} lines)", body.lines().count())
        }
        Artifact::Kpi { name, value } => format!("{name} = {value:.3}"),
        Artifact::Diagnosis {
            kind,
            subject,
            severity,
            ..
        } => {
            format!("{kind} on {subject} (sev {severity:.2})")
        }
        Artifact::Forecast {
            quantity,
            horizon_s,
            value,
        } => {
            format!("{quantity} @ +{horizon_s:.0}s → {value:.2}")
        }
        Artifact::Prescription {
            action, setting, ..
        } => format!("{action} := {setting}"),
    }
}

/// Builds the common trace: a small site run for `hours` with one fault in
/// each pillar's territory.
pub fn build_site(hours: f64, seed: u64) -> DataCenter {
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(seed)
        .build();
    let h = |x: f64| Timestamp::from_millis((x * 3_600_000.0) as u64);
    dc.inject_fault(Fault::new(
        FaultKind::FanFailure { node: NodeId(3) },
        h(hours * 0.3),
        h(hours * 2.0),
    ));
    dc.inject_fault(Fault::new(
        FaultKind::MemoryLeak {
            node: NodeId(10),
            gib_per_min: 0.4,
        },
        h(hours * 0.2),
        h(hours * 2.0),
    ));
    dc.inject_fault(Fault::new(
        FaultKind::CoolingDegradation { factor: 2.0 },
        h(hours * 0.6),
        h(hours * 2.0),
    ));
    dc.run_for_hours(hours);
    dc
}

/// Runs all sixteen reference capabilities against the site's telemetry.
pub fn run_all(dc: &DataCenter) -> Vec<CellResult> {
    let ctx = CapabilityContext::new(
        Arc::clone(dc.store()),
        dc.registry().clone(),
        TimeRange::new(Timestamp::ZERO, dc.now() + 1),
        dc.now(),
    );
    let records = dc.finished_jobs().to_vec();
    let capabilities = cells::all_sixteen();
    let mut results = Vec::new();
    for mut c in capabilities {
        // The accounting-fed capabilities are rebuilt with their feeds: the
        // fingerprinter trains on the first half of history (labelled by
        // operators) and classifies the second half.
        let fed: Option<Box<dyn Capability>> = match c.name() {
            "scheduler-dashboard" => {
                let mut x = cells::descriptive::SchedulerDashboard::new();
                x.set_records(records.clone());
                Some(Box::new(x))
            }
            "job-dashboard" => {
                let mut x = cells::descriptive::JobDashboard::new();
                x.set_records(records.clone());
                Some(Box::new(x))
            }
            "app-fingerprinter" => {
                let mut x = cells::diagnostic::AppFingerprinter::new();
                let half = records.len() / 2;
                x.set_training(records[..half].to_vec());
                x.set_records(records[half..].to_vec());
                Some(Box::new(x))
            }
            "job-duration-predictor" => {
                let mut x = cells::predictive::JobDurationPredictor::new();
                x.set_records(records.clone());
                Some(Box::new(x))
            }
            _ => None,
        };
        if let Some(f) = fed {
            c = f;
        }
        let artifacts = c.execute(&ctx);
        results.push(CellResult {
            name: c.name().to_owned(),
            cells: c.footprint().cells(),
            artifacts: artifacts
                .iter()
                .map(|a| (a.label().to_owned(), short(a)))
                .collect(),
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_capability_produces_artifacts_on_the_common_trace() {
        let dc = build_site(4.0, 99);
        let results = run_all(&dc);
        assert_eq!(results.len(), 16);
        for r in &results {
            assert!(
                !r.artifacts.is_empty(),
                "{} produced nothing on the common trace",
                r.name
            );
        }
    }

    #[test]
    fn injected_faults_are_found_by_the_diagnostic_row() {
        let dc = build_site(4.0, 99);
        let results = run_all(&dc);
        let all_diags: Vec<&String> = results
            .iter()
            .flat_map(|r| r.artifacts.iter())
            .filter(|(label, _)| label == "diagnosis")
            .map(|(_, d)| d)
            .collect();
        assert!(
            all_diags
                .iter()
                .any(|d| d.contains("fan-failure") && d.contains("node3")),
            "fan failure missed: {all_diags:?}"
        );
        assert!(
            all_diags
                .iter()
                .any(|d| d.contains("memory-leak") && d.contains("node10")),
            "memory leak missed: {all_diags:?}"
        );
        assert!(
            all_diags.iter().any(|d| d.contains("cooling-degradation")),
            "cooling degradation missed: {all_diags:?}"
        );
    }
}
